//! Waypoint autopilot.
//!
//! Sequencing logic over [`crate::kinematics`]: fly the active flight
//! plan, declare arrival inside each waypoint's acceptance radius, hold
//! position where commanded. Quadrocopters hold by hovering; airplanes
//! hold by loitering on a circle of the platform's minimum turn radius
//! around the waypoint — exactly the paper's "airplanes normally cannot
//! hover and have to circle around a waypoint … with a radius of at least
//! 20 m".

use skyferry_geo::vector::Vec3;
use skyferry_geo::waypoint::FlightPlan;

use crate::kinematics::{UavKinematics, VelocityCommand};
use crate::platform::PlatformKind;

/// What the autopilot is currently doing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AutopilotMode {
    /// No plan; hold the current position (hover or loiter in place).
    Hold,
    /// En route to waypoint `index` of the plan.
    Enroute {
        /// Index into the flight plan.
        index: usize,
    },
    /// Holding at waypoint `index` until `remaining_s` elapses.
    Holding {
        /// Index into the flight plan.
        index: usize,
        /// Seconds of hold left.
        remaining_s: f64,
    },
    /// Plan complete; holding at the final waypoint.
    Done,
}

/// The waypoint-following controller of one UAV.
#[derive(Debug, Clone)]
pub struct Autopilot {
    plan: FlightPlan,
    mode: AutopilotMode,
    /// Accumulated loiter phase for fixed-wing holds, radians.
    loiter_phase: f64,
}

impl Autopilot {
    /// An idle autopilot (holds position).
    pub fn idle() -> Self {
        Autopilot {
            plan: FlightPlan::new(),
            mode: AutopilotMode::Hold,
            loiter_phase: 0.0,
        }
    }

    /// Start flying `plan` from its first waypoint.
    pub fn with_plan(plan: FlightPlan) -> Self {
        let mode = if plan.is_empty() {
            AutopilotMode::Hold
        } else {
            AutopilotMode::Enroute { index: 0 }
        };
        Autopilot {
            plan,
            mode,
            loiter_phase: 0.0,
        }
    }

    /// Replace the plan mid-flight (a new command from the planner).
    pub fn set_plan(&mut self, plan: FlightPlan) {
        self.plan = plan;
        self.mode = if self.plan.is_empty() {
            AutopilotMode::Hold
        } else {
            AutopilotMode::Enroute { index: 0 }
        };
    }

    /// Current mode.
    pub fn mode(&self) -> AutopilotMode {
        self.mode
    }

    /// `true` once the plan has been fully flown.
    pub fn is_done(&self) -> bool {
        matches!(self.mode, AutopilotMode::Done)
    }

    /// The waypoint currently being flown to / held at, if any.
    pub fn active_target(&self) -> Option<Vec3> {
        match self.mode {
            AutopilotMode::Enroute { index } | AutopilotMode::Holding { index, .. } => {
                Some(self.plan.waypoints()[index].position)
            }
            _ => None,
        }
    }

    /// Compute the next velocity command and advance sequencing state.
    /// `dt` is the control period in seconds.
    pub fn update(&mut self, kin: &UavKinematics, dt: f64) -> VelocityCommand {
        match self.mode {
            AutopilotMode::Hold | AutopilotMode::Done => self.hold_command(kin, kin.position, dt),
            AutopilotMode::Enroute { index } => {
                let wp = self.plan.waypoints()[index];
                let arrival_radius = match kin.spec.kind {
                    PlatformKind::Quadrocopter => wp.acceptance_radius_m,
                    // A fixed-wing "arrives" once inside its loiter circle.
                    PlatformKind::Airplane => {
                        wp.acceptance_radius_m.max(kin.spec.min_turn_radius_m)
                    }
                };
                if kin.position.distance(wp.position) <= arrival_radius {
                    self.mode = if wp.hold_s > 0.0 {
                        AutopilotMode::Holding {
                            index,
                            remaining_s: wp.hold_s,
                        }
                    } else {
                        self.advance(index)
                    };
                    return self.update(kin, dt);
                }
                let to_target = wp.position - kin.position;
                let speed = wp.speed_mps.unwrap_or(kin.spec.cruise_speed_mps);
                let dir = to_target.normalized().expect("outside arrival radius");
                VelocityCommand {
                    velocity: dir * speed,
                }
            }
            AutopilotMode::Holding { index, remaining_s } => {
                let wp = self.plan.waypoints()[index];
                let left = remaining_s - dt;
                self.mode = if left <= 0.0 {
                    self.advance(index)
                } else {
                    AutopilotMode::Holding {
                        index,
                        remaining_s: left,
                    }
                };
                self.hold_command(kin, wp.position, dt)
            }
        }
    }

    fn advance(&mut self, index: usize) -> AutopilotMode {
        match self.plan.next_index(index) {
            Some(next) => AutopilotMode::Enroute { index: next },
            None => AutopilotMode::Done,
        }
    }

    /// Hold near `center`: hover (rotorcraft) or loiter (fixed-wing).
    fn hold_command(&mut self, kin: &UavKinematics, center: Vec3, dt: f64) -> VelocityCommand {
        match kin.spec.kind {
            PlatformKind::Quadrocopter => {
                // Proportional position hold.
                let error = center - kin.position;
                VelocityCommand {
                    velocity: error * 0.8,
                }
            }
            PlatformKind::Airplane => {
                // Fly a circle of min turn radius around the center: aim
                // at a point ahead on the circle.
                let r = kin.spec.min_turn_radius_m;
                let omega = kin.spec.cruise_speed_mps / r;
                self.loiter_phase += omega * dt;
                let phase = self.loiter_phase;
                let target = center + Vec3::new(r * phase.cos(), r * phase.sin(), 0.0);
                let to_target = (target - kin.position).with_altitude(0.0);
                let dir = to_target.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0));
                let vz = (center.z - kin.position.z).clamp(-1.0, 1.0);
                VelocityCommand {
                    velocity: Vec3::new(
                        dir.x * kin.spec.cruise_speed_mps,
                        dir.y * kin.spec.cruise_speed_mps,
                        vz,
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;
    use skyferry_geo::waypoint::Waypoint;

    const DT: f64 = 0.1;

    fn fly(kin: &mut UavKinematics, ap: &mut Autopilot, seconds: f64) {
        let steps = (seconds / DT).round() as usize;
        for _ in 0..steps {
            let cmd = ap.update(kin, DT);
            kin.step(cmd, DT);
        }
    }

    #[test]
    fn quad_reaches_single_waypoint() {
        let mut kin = UavKinematics::at(PlatformSpec::quadrocopter(), Vec3::new(0.0, 0.0, 10.0));
        let target = Vec3::new(60.0, 0.0, 10.0);
        let mut ap = Autopilot::with_plan(FlightPlan::once(vec![Waypoint::new(target)]));
        fly(&mut kin, &mut ap, 30.0);
        assert!(ap.is_done());
        assert!(kin.position.distance(target) < 6.0);
    }

    #[test]
    fn quad_travel_time_matches_cruise_speed() {
        let mut kin = UavKinematics::at(PlatformSpec::quadrocopter(), Vec3::new(0.0, 0.0, 10.0));
        let target = Vec3::new(45.0, 0.0, 10.0);
        let mut ap = Autopilot::with_plan(FlightPlan::once(vec![Waypoint::new(target)]));
        let mut t = 0.0;
        while !ap.is_done() && t < 60.0 {
            let cmd = ap.update(&kin, DT);
            kin.step(cmd, DT);
            t += DT;
        }
        // 45 m at 4.5 m/s = 10 s (+ acceleration and acceptance radius).
        assert!((8.0..14.0).contains(&t), "t={t}");
    }

    #[test]
    fn quad_holds_then_continues() {
        let mut kin = UavKinematics::at(PlatformSpec::quadrocopter(), Vec3::new(0.0, 0.0, 10.0));
        let wp1 = Waypoint::new(Vec3::new(20.0, 0.0, 10.0)).with_hold(5.0);
        let wp2 = Waypoint::new(Vec3::new(40.0, 0.0, 10.0));
        let mut ap = Autopilot::with_plan(FlightPlan::once(vec![wp1, wp2]));
        fly(&mut kin, &mut ap, 6.0);
        assert!(
            matches!(ap.mode(), AutopilotMode::Holding { index: 0, .. }),
            "mode={:?}",
            ap.mode()
        );
        fly(&mut kin, &mut ap, 30.0);
        assert!(ap.is_done());
    }

    #[test]
    fn cyclic_plan_never_finishes() {
        let mut kin = UavKinematics::at(PlatformSpec::airplane(), Vec3::new(0.0, 0.0, 80.0));
        let a = Waypoint::new(Vec3::new(0.0, 0.0, 80.0)).with_acceptance_radius(25.0);
        let b = Waypoint::new(Vec3::new(300.0, 0.0, 80.0)).with_acceptance_radius(25.0);
        let mut ap = Autopilot::with_plan(FlightPlan::cycle(vec![a, b]));
        fly(&mut kin, &mut ap, 300.0);
        assert!(!ap.is_done());
    }

    #[test]
    fn airplane_loiters_near_waypoint() {
        let mut kin = UavKinematics::at(PlatformSpec::airplane(), Vec3::new(100.0, 0.0, 80.0));
        let center = Vec3::new(0.0, 0.0, 80.0);
        let mut ap = Autopilot::with_plan(FlightPlan::once(vec![Waypoint::new(center)]));
        fly(&mut kin, &mut ap, 120.0);
        assert!(ap.is_done());
        // Must keep moving (no hover) but stay near the loiter circle.
        assert!(kin.ground_speed().get() > 9.0);
        let dist = kin.position.horizontal_distance(center);
        assert!(dist < 60.0, "dist={dist}");
    }

    #[test]
    fn hold_mode_keeps_quad_in_place() {
        let start = Vec3::new(5.0, 5.0, 10.0);
        let mut kin = UavKinematics::at(PlatformSpec::quadrocopter(), start);
        let mut ap = Autopilot::idle();
        fly(&mut kin, &mut ap, 20.0);
        assert!(kin.position.distance(start) < 1.0);
    }

    #[test]
    fn set_plan_preempts() {
        let mut kin = UavKinematics::at(PlatformSpec::quadrocopter(), Vec3::new(0.0, 0.0, 10.0));
        let mut ap = Autopilot::with_plan(FlightPlan::once(vec![Waypoint::new(Vec3::new(
            100.0, 0.0, 10.0,
        ))]));
        fly(&mut kin, &mut ap, 5.0);
        ap.set_plan(FlightPlan::once(vec![Waypoint::new(Vec3::new(
            0.0, 50.0, 10.0,
        ))]));
        fly(&mut kin, &mut ap, 40.0);
        assert!(ap.is_done());
        assert!(kin.position.distance(Vec3::new(0.0, 50.0, 10.0)) < 6.0);
    }
}
