//! Least-squares fits.
//!
//! The paper fits a logarithmic function to the empirical median throughput
//! (Section 4): `s(d) = 1e6 · (a·log2(d) + b)` with reported
//! `a = −5.56, b = 49` (airplanes, R² = 0.90) and `a = −10.5, b = 73`
//! (quadrocopters, R² = 0.96). [`Log2Fit`] reproduces exactly that fit; it
//! is ordinary least squares on the transformed abscissa `x = log2(d)`.

/// An ordinary least-squares straight-line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (1 = perfect fit). Defined as 1 when
    /// the dependent variable is constant and the fit is exact.
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Fit `y = slope·x + intercept` through `(x, y)` pairs.
    ///
    /// Returns `None` when fewer than two points are given or when all `x`
    /// coincide (vertical line — slope undefined).
    ///
    /// # Panics
    /// Panics on NaN or infinite inputs.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        if points.len() < 2 {
            return None;
        }
        assert!(
            points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "non-finite input to LinearFit"
        );
        let n = points.len() as f64;
        let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = points
            .iter()
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;

        let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
            .sum();
        let r_squared = if ss_tot == 0.0 {
            // Constant y: the fit is exact (slope 0), define R² = 1.
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(LinearFit {
            slope,
            intercept,
            r_squared,
            n: points.len(),
        })
    }

    /// Evaluate the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A logarithmic fit `y = a·log2(x) + b`, the model family the paper uses
/// for median throughput vs distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Log2Fit {
    /// Coefficient of `log2(x)` (the paper's `−5.56` / `−10.5`).
    pub a: f64,
    /// Constant term (the paper's `49` / `73`).
    pub b: f64,
    /// Coefficient of determination on the transformed problem.
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl Log2Fit {
    /// Fit `y = a·log2(x) + b` through `(x, y)` pairs with `x > 0`.
    ///
    /// Returns `None` with fewer than two distinct abscissae.
    ///
    /// # Panics
    /// Panics if any `x ≤ 0` (log undefined) or any input is non-finite.
    pub fn fit(points: &[(f64, f64)]) -> Option<Log2Fit> {
        assert!(
            points.iter().all(|&(x, _)| x > 0.0),
            "Log2Fit requires positive x"
        );
        let transformed: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.log2(), y)).collect();
        LinearFit::fit(&transformed).map(|lin| Log2Fit {
            a: lin.slope,
            b: lin.intercept,
            r_squared: lin.r_squared,
            n: lin.n,
        })
    }

    /// Evaluate the fit at distance `x` (> 0).
    pub fn predict(&self, x: f64) -> f64 {
        assert!(x > 0.0, "Log2Fit::predict requires positive x");
        self.a * x.log2() + self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = LinearFit::fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 1.0)]).is_none());
    }

    #[test]
    fn vertical_line_is_none() {
        assert!(LinearFit::fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn constant_y_has_unit_r2() {
        let fit = LinearFit::fit(&[(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let pts = [(0.0, 0.1), (1.0, 0.9), (2.0, 2.2), (3.0, 2.8)];
        let fit = LinearFit::fit(&pts).unwrap();
        assert!(fit.r_squared > 0.9 && fit.r_squared < 1.0);
    }

    #[test]
    fn log2_fit_recovers_paper_style_model() {
        // Generate exact data from the paper's airplane fit:
        // s(d) = -5.56 log2(d) + 49 (in Mb/s).
        let pts: Vec<(f64, f64)> = (1..=16)
            .map(|i| {
                let d = 20.0 * i as f64;
                (d, -5.56 * d.log2() + 49.0)
            })
            .collect();
        let fit = Log2Fit::fit(&pts).unwrap();
        assert!((fit.a + 5.56).abs() < 1e-10, "a={}", fit.a);
        assert!((fit.b - 49.0).abs() < 1e-9, "b={}", fit.b);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(80.0) - (-5.56 * 80f64.log2() + 49.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn log2_rejects_nonpositive_x() {
        let _ = Log2Fit::fit(&[(0.0, 1.0), (2.0, 2.0)]);
    }

    #[test]
    fn predict_linear() {
        let fit = LinearFit {
            slope: 2.0,
            intercept: 1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert_eq!(fit.predict(3.0), 7.0);
    }
}
