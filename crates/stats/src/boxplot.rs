//! Boxplot summaries (Tukey style), matching the presentation of the
//! paper's Figures 5 and 7: box = quartiles, whiskers = furthest samples
//! within 1.5·IQR of the box, everything beyond = outliers.

use crate::quantile::{quantile_sorted, Quartiles};

/// The five-number summary plus outliers for one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// Number of samples.
    pub n: usize,
    /// Smallest sample (including outliers).
    pub min: f64,
    /// Lower whisker end: smallest sample ≥ `q1 - 1.5·IQR`.
    pub whisker_low: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Upper whisker end: largest sample ≤ `q3 + 1.5·IQR`.
    pub whisker_high: f64,
    /// Largest sample (including outliers).
    pub max: f64,
    /// Samples outside the whiskers, ascending.
    pub outliers: Vec<f64>,
}

impl BoxplotSummary {
    /// Summarise a sample; `None` if it is empty.
    ///
    /// # Panics
    /// Panics if the sample contains NaN.
    pub fn of(samples: &[f64]) -> Option<BoxplotSummary> {
        if samples.is_empty() {
            return None;
        }
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN in boxplot input");
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));

        let q = Quartiles {
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
        };
        let fence_low = q.q1 - 1.5 * q.iqr();
        let fence_high = q.q3 + 1.5 * q.iqr();

        let whisker_low = sorted
            .iter()
            .copied()
            .find(|&x| x >= fence_low)
            .expect("q1 itself is within the fence");
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= fence_high)
            .expect("q3 itself is within the fence");
        let outliers: Vec<f64> = sorted
            .iter()
            .copied()
            .filter(|&x| x < fence_low || x > fence_high)
            .collect();

        Some(BoxplotSummary {
            n: sorted.len(),
            min: sorted[0],
            whisker_low,
            q1: q.q1,
            median: q.median,
            q3: q.q3,
            whisker_high,
            max: *sorted.last().expect("non-empty"),
            outliers,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Total whisker-to-whisker spread — the "variability" the paper
    /// compares between airplane and quadrocopter campaigns.
    pub fn spread(&self) -> f64 {
        self.whisker_high - self.whisker_low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(BoxplotSummary::of(&[]).is_none());
    }

    #[test]
    fn no_outliers_whiskers_are_extremes() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = BoxplotSummary::of(&xs).unwrap();
        assert_eq!(b.whisker_low, 1.0);
        assert_eq!(b.whisker_high, 9.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.median, 5.0);
        assert_eq!(b.n, 9);
    }

    #[test]
    fn detects_outliers() {
        let mut xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        xs.push(100.0);
        xs.push(-50.0);
        let b = BoxplotSummary::of(&xs).unwrap();
        assert_eq!(b.outliers, vec![-50.0, 100.0]);
        assert_eq!(b.min, -50.0);
        assert_eq!(b.max, 100.0);
        // Whiskers exclude the outliers.
        assert_eq!(b.whisker_low, 1.0);
        assert_eq!(b.whisker_high, 9.0);
    }

    #[test]
    fn invariant_ordering() {
        let xs = [4.2, 1.0, 8.5, 2.2, 9.9, 0.5, 7.7, 3.1];
        let b = BoxplotSummary::of(&xs).unwrap();
        assert!(b.min <= b.whisker_low);
        assert!(b.whisker_low <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_high);
        assert!(b.whisker_high <= b.max);
    }

    #[test]
    fn constant_sample() {
        let xs = [3.0; 10];
        let b = BoxplotSummary::of(&xs).unwrap();
        assert_eq!(b.median, 3.0);
        assert_eq!(b.iqr(), 0.0);
        assert_eq!(b.spread(), 0.0);
        assert!(b.outliers.is_empty());
    }
}
