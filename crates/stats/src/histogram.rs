//! Fixed-width histograms, used by campaign reports and ablation studies.

/// A histogram over `[lo, hi)` with equally wide bins.
///
/// Samples below `lo` or at/above `hi` are counted in saturating under/
/// overflow buckets rather than dropped, so totals always reconcile.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `lo >= hi`, bounds are not finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad bounds");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record a sample.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN recorded in Histogram");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against floating rounding at the top edge.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[start, end)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at/above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Index of the fullest bin (first one on ties); `None` if all empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.bins.iter().max()?;
        if max == 0 {
            return None;
        }
        self.bins.iter().position(|&c| c == max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..10 {
            h.record(i as f64);
        }
        for b in 0..5 {
            assert_eq!(h.bin_count(b), 2, "bin {b}");
        }
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn under_and_overflow_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0); // hi is exclusive
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_range_is_consistent() {
        let h = Histogram::new(10.0, 20.0, 4);
        assert_eq!(h.bin_range(0), (10.0, 12.5));
        assert_eq!(h.bin_range(3), (17.5, 20.0));
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
        assert_eq!(Histogram::new(0.0, 1.0, 2).mode_bin(), None);
    }

    #[test]
    fn top_edge_rounding_guard() {
        let mut h = Histogram::new(0.0, 0.3, 3);
        // 0.3 - epsilon should land in the last bin, not panic.
        h.record(0.3 - 1e-16);
        assert_eq!(h.bin_count(2) + h.overflow(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
