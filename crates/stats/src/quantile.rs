//! Quantiles and medians.
//!
//! Uses the "type 7" linear-interpolation estimator (the default of R,
//! NumPy and Matlab's `quantile`), which is what the paper's Matlab boxplot
//! pipeline would have used for its medians and quartiles.

/// Compute the `q`-quantile (`0 ≤ q ≤ 1`) of a sample.
///
/// Returns `None` for an empty sample. NaN values are rejected with a panic
/// because they would poison the sort order silently otherwise.
///
/// ```
/// use skyferry_stats::quantile::quantile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
    if samples.is_empty() {
        return None;
    }
    assert!(samples.iter().all(|x| !x.is_nan()), "NaN in quantile input");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    Some(quantile_sorted(&sorted, q))
}

/// Same as [`quantile`] but assumes `sorted` is already ascending.
///
/// # Panics
/// Panics (debug builds) if the input is not sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    // Type-7: h = (n-1)q, interpolate between floor(h) and ceil(h).
    let h = (n - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median of a sample (`None` if empty).
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// First, second (median) and third quartiles of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
}

impl Quartiles {
    /// Compute quartiles; `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Quartiles> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        assert!(sorted.iter().all(|x| !x.is_nan()), "NaN in quartile input");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Some(Quartiles {
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
        })
    }

    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert!(Quartiles::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.37), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn odd_length_median_is_middle() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
    }

    #[test]
    fn even_length_median_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 10.0]), Some(2.5));
    }

    #[test]
    fn matches_numpy_type7() {
        // numpy.percentile([15, 20, 35, 40, 50], 40) == 29.0
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        let got = quantile(&xs, 0.40).unwrap();
        assert!((got - 29.0).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn quartiles_of_known_sample() {
        // numpy.percentile(1..=8, [25, 50, 75]) = [2.75, 4.5, 6.25]
        let xs: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let q = Quartiles::of(&xs).unwrap();
        assert!((q.q1 - 2.75).abs() < 1e-12);
        assert!((q.median - 4.5).abs() < 1e-12);
        assert!((q.q3 - 6.25).abs() < 1e-12);
        assert!((q.iqr() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_ok() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs), Some(5.0));
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = quantile(&[1.0, f64::NAN], 0.5);
    }

    #[test]
    #[should_panic]
    fn q_out_of_range_rejected() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = quantile(&xs, q).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }
}
