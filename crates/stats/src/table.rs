//! Structured tables for the reproduction harness.
//!
//! Every `repro` experiment emits its figure/table through this model: a
//! [`Table`] owns typed [`Column`]s (each with a formatting [`ColumnKind`])
//! and rows of typed [`Value`]s. Formatting lives in the column spec, so the
//! text renderer, the CSV writer and the JSON writer all derive from the
//! same cells — there is exactly one place where a number becomes a string,
//! which is what the golden-result verification in the bench crate relies
//! on.

use std::fmt::Write as _;

use crate::json::Json;

/// Column alignment in the text rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// How numeric cells in a column are formatted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Free-form text; numbers render with their shortest representation.
    Text,
    /// Integers; floats render with zero decimal places.
    Int,
    /// Fixed-point with the given number of decimal places.
    Float(usize),
    /// Scientific notation with the given number of decimal places.
    Sci(usize),
}

/// One typed column: header, number format, alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Header text.
    pub header: String,
    /// Numeric cell format.
    pub kind: ColumnKind,
    /// Text-rendering alignment.
    pub align: Align,
}

impl Column {
    fn new(header: impl Into<String>, kind: ColumnKind, align: Align) -> Self {
        Column {
            header: header.into(),
            kind,
            align,
        }
    }

    /// A left-aligned text column (labels).
    pub fn text(header: impl Into<String>) -> Self {
        Column::new(header, ColumnKind::Text, Align::Left)
    }

    /// A right-aligned integer column.
    pub fn int(header: impl Into<String>) -> Self {
        Column::new(header, ColumnKind::Int, Align::Right)
    }

    /// A right-aligned fixed-point column with `decimals` places.
    pub fn float(header: impl Into<String>, decimals: usize) -> Self {
        Column::new(header, ColumnKind::Float(decimals), Align::Right)
    }

    /// A right-aligned scientific-notation column with `decimals` places.
    pub fn sci(header: impl Into<String>, decimals: usize) -> Self {
        Column::new(header, ColumnKind::Sci(decimals), Align::Right)
    }

    /// Override to left alignment.
    pub fn left(mut self) -> Self {
        self.align = Align::Left;
        self
    }

    /// Override to right alignment.
    pub fn right(mut self) -> Self {
        self.align = Align::Right;
        self
    }
}

/// One typed cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Pre-formatted text; rendered verbatim whatever the column kind
    /// (the escape hatch for cells like `dnf`, `MCS3` or `inf`).
    Str(String),
    /// An integer.
    Int(i64),
    /// A float, formatted per the column's [`ColumnKind`].
    Num(f64),
}

impl Value {
    /// Render the cell under a column's formatting rule.
    pub fn render(&self, kind: ColumnKind) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Num(v) => match kind {
                ColumnKind::Text => format!("{v}"),
                ColumnKind::Int => format!("{v:.0}"),
                ColumnKind::Float(d) => format!("{v:.d$}"),
                ColumnKind::Sci(d) => format!("{v:.d$e}"),
            },
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

/// A typed table: columns with formats, rows of typed cells.
///
/// ```
/// use skyferry_stats::table::{Column, Table};
/// let mut t = Table::new(vec![Column::int("d (m)").left(), Column::float("median (Mb/s)", 1)]);
/// t.push(vec![20.0.into(), 28.42.into()]);
/// assert!(t.render_text().contains("28.4"));
/// assert_eq!(t.render_csv(), "d (m),median (Mb/s)\n20,28.4\n");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    columns: Vec<Column>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create a table from its column specs.
    ///
    /// # Panics
    /// Panics if `columns` is empty.
    pub fn new(columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "table needs at least one column");
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// The column specs.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Append a row of typed cells.
    ///
    /// # Panics
    /// Panics if the number of cells differs from the number of columns.
    pub fn push(&mut self, cells: Vec<Value>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
        self
    }

    /// Append a label cell followed by `f64` cells (formatted per column).
    pub fn row_f64(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells: Vec<Value> = Vec::with_capacity(values.len() + 1);
        cells.push(label.into());
        cells.extend(values.iter().map(|&v| Value::Num(v)));
        self.push(cells)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The typed rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Render every cell of row `r` to text under its column's format.
    fn rendered_row(&self, r: usize) -> Vec<String> {
        self.rows[r]
            .iter()
            .zip(&self.columns)
            .map(|(v, c)| v.render(c.kind))
            .collect()
    }

    /// Render the table with a header underline, columns two spaces apart.
    pub fn render_text(&self) -> String {
        let cols = self.columns.len();
        let rendered: Vec<Vec<String>> =
            (0..self.rows.len()).map(|r| self.rendered_row(r)).collect();
        let mut widths: Vec<usize> = self
            .columns
            .iter()
            .map(|c| c.header.chars().count())
            .collect();
        for row in &rendered {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for c in 0..cols {
                if c > 0 {
                    out.push_str("  ");
                }
                let w = widths[c];
                match self.columns[c].align {
                    Align::Left => {
                        let _ = write!(out, "{:<w$}", cells[c]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>w$}", cells[c]);
                    }
                }
            }
            // Trim trailing spaces from left-aligned last columns.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        let headers: Vec<String> = self.columns.iter().map(|c| c.header.clone()).collect();
        render_row(&mut out, &headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &rendered {
            render_row(&mut out, row);
        }
        out
    }

    /// Render as CSV. Cells containing commas, quotes or newlines are
    /// quoted per RFC 4180 (embedded quotes doubled).
    pub fn render_csv(&self) -> String {
        fn push_cell(out: &mut String, c: &str) {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                out.push('"');
                out.push_str(&c.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(c);
            }
        }
        let mut out = String::new();
        let csv_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_cell(out, c);
            }
            out.push('\n');
        };
        let headers: Vec<String> = self.columns.iter().map(|c| c.header.clone()).collect();
        csv_row(&mut out, &headers);
        for r in 0..self.rows.len() {
            csv_row(&mut out, &self.rendered_row(r));
        }
        out
    }

    /// The table as a JSON object: `columns` (headers) and `rows` (typed
    /// cells; floats carry full precision, not the column's display format).
    pub fn to_json(&self) -> Json {
        let columns = Json::Arr(self.columns.iter().map(|c| Json::str(&c.header)).collect());
        let rows = Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    Json::Arr(
                        row.iter()
                            .map(|v| match v {
                                Value::Str(s) => Json::str(s),
                                Value::Int(i) => Json::Int(*i),
                                Value::Num(x) => Json::Num(*x),
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        Json::obj([("columns", columns), ("rows", rows)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec![Column::text("name"), Column::int("value")]);
        t.push(vec!["a".into(), 1u64.into()]);
        t.push(vec!["long-name".into(), 12345u64.into()]);
        let s = t.render_text();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers share their last column.
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn column_kinds_format_numbers() {
        let mut t = Table::new(vec![
            Column::text("s"),
            Column::int("i"),
            Column::float("f", 2),
            Column::sci("e", 1),
        ]);
        t.push(vec![
            "x".into(),
            Value::Num(19.7),
            Value::Num(28.456),
            Value::Num(0.00042),
        ]);
        assert_eq!(t.render_csv(), "s,i,f,e\nx,20,28.46,4.2e-4\n");
    }

    #[test]
    fn str_cells_bypass_column_format() {
        let mut t = Table::new(vec![Column::text("d"), Column::float("s", 1)]);
        t.push(vec![Value::Str("40".into()), Value::Str("dnf".into())]);
        assert_eq!(t.render_csv(), "d,s\n40,dnf\n");
    }

    #[test]
    fn row_f64_formats_per_column() {
        let mut t = Table::new(vec![Column::text("d"), Column::float("s", 2)]);
        t.row_f64("20", &[28.456]);
        assert!(t.render_text().contains("28.46"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(vec![Column::text("a"), Column::text("b")]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(vec![Column::text("a"), Column::text("b")]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec![Column::text("a"), Column::text("b")]);
        t.push(vec!["x,y".into(), "say \"hi\"".into()]);
        assert_eq!(t.render_csv(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn alignment_override() {
        let mut t = Table::new(vec![Column::text("a"), Column::text("b").left()]);
        t.push(vec!["x".into(), "y".into()]);
        assert_eq!(t.num_rows(), 1);
        let s = t.render_text();
        assert!(s.lines().nth(2).unwrap().starts_with("x  y"));
    }

    #[test]
    fn to_json_keeps_full_precision() {
        let mut t = Table::new(vec![Column::text("d"), Column::float("s", 1)]);
        t.push(vec!["20".into(), Value::Num(28.4567)]);
        assert_eq!(
            t.to_json().render(),
            "{\"columns\":[\"d\",\"s\"],\"rows\":[[\"20\",28.4567]]}"
        );
    }
}
