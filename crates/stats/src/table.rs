//! Plain-text table rendering for the reproduction harness.
//!
//! Every `repro` subcommand prints its figure/table as an aligned text
//! table (the "same rows/series the paper reports"); this module is the one
//! place that knows how to lay those out.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table builder.
///
/// ```
/// use skyferry_stats::table::TextTable;
/// let mut t = TextTable::new(&["d (m)", "median (Mb/s)"]);
/// t.row(&["20", "28.4"]);
/// t.row(&["40", "23.1"]);
/// let s = t.render();
/// assert!(s.contains("d (m)"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Create a table with the given column headers. All columns default to
    /// right alignment except the first, which is left-aligned.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        let mut aligns = vec![Align::Right; headers.len()];
        aligns[0] = Align::Left;
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns,
        }
    }

    /// Override the alignment of a column.
    pub fn align(&mut self, column: usize, align: Align) -> &mut Self {
        self.aligns[column] = align;
        self
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the number of cells differs from the number of headers.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Append a row of `f64` values formatted with `decimals` places, with
    /// a string label in the first column.
    pub fn row_f64(&mut self, label: &str, values: &[f64], decimals: usize) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.decimals$}")));
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with a header underline, columns two spaces apart.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for c in 0..cols {
                if c > 0 {
                    out.push_str("  ");
                }
                let w = widths[c];
                match self.aligns[c] {
                    Align::Left => {
                        let _ = write!(out, "{:<w$}", cells[c]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>w$}", cells[c]);
                    }
                }
            }
            // Trim trailing spaces from left-aligned last columns.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Render as CSV. Cells containing commas, quotes or newlines are
    /// quoted per RFC 4180 (embedded quotes doubled).
    pub fn render_csv(&self) -> String {
        fn push_cell(out: &mut String, c: &str) {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                out.push('"');
                out.push_str(&c.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(c);
            }
        }
        let mut out = String::new();
        let csv_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_cell(out, c);
            }
            out.push('\n');
        };
        csv_row(&mut out, &self.headers);
        for row in &self.rows {
            csv_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers share their last column.
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn row_f64_formats_decimals() {
        let mut t = TextTable::new(&["d", "s"]);
        t.row_f64("20", &[28.456], 2);
        assert!(t.render().contains("28.46"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1", "2"]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["x,y", "say \"hi\""]);
        assert_eq!(t.render_csv(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn alignment_override() {
        let mut t = TextTable::new(&["a", "b"]);
        t.align(1, Align::Left);
        t.row(&["x", "y"]);
        assert_eq!(t.num_rows(), 1);
        let s = t.render();
        assert!(s.lines().nth(2).unwrap().starts_with("x  y"));
    }
}
