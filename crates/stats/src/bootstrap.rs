//! Bootstrap confidence intervals.
//!
//! Campaign medians come from modest sample counts (the paper pools a
//! few flights per distance); a percentile bootstrap quantifies how firm
//! those medians are, and the reproduction harness reports it so
//! paper-vs-measured comparisons carry error bars.

use crate::quantile::quantile;

/// A deterministic xorshift64* generator — self-contained so the stats
/// crate stays dependency-free.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A percentile-bootstrap confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// `true` if `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// Percentile bootstrap CI for the median.
///
/// Returns `None` on an empty sample.
///
/// # Panics
/// Panics if `level` is outside `(0, 1)` or `resamples == 0`.
pub fn median_ci(
    samples: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    bootstrap_ci(samples, level, resamples, seed, |xs| {
        quantile(xs, 0.5).expect("non-empty resample")
    })
}

/// Percentile bootstrap CI for an arbitrary statistic.
pub fn bootstrap_ci(
    samples: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
    statistic: impl Fn(&[f64]) -> f64,
) -> Option<ConfidenceInterval> {
    assert!((0.0..1.0).contains(&level) && level > 0.0, "bad level");
    assert!(resamples > 0, "need at least one resample");
    if samples.is_empty() {
        return None;
    }
    let point = statistic(samples);
    let mut rng = XorShift64::new(seed);
    let mut stats: Vec<f64> = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; samples.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = samples[rng.index(samples.len())];
        }
        stats.push(statistic(&buf));
    }
    let alpha = (1.0 - level) / 2.0;
    let lo = quantile(&stats, alpha).expect("non-empty");
    let hi = quantile(&stats, 1.0 - alpha).expect("non-empty");
    Some(ConfidenceInterval {
        point,
        lo,
        hi,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_sample(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-noise around 10.0.
        let mut rng = XorShift64::new(seed);
        (0..n)
            .map(|_| 10.0 + (rng.next_u64() % 1000) as f64 / 250.0 - 2.0)
            .collect()
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(median_ci(&[], 0.95, 100, 1).is_none());
    }

    #[test]
    fn interval_brackets_the_point() {
        let xs = noisy_sample(60, 2);
        let ci = median_ci(&xs, 0.95, 500, 3).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.contains(ci.point));
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn more_samples_tighter_interval() {
        let small = median_ci(&noisy_sample(15, 4), 0.95, 800, 5).unwrap();
        let large = median_ci(&noisy_sample(600, 4), 0.95, 800, 5).unwrap();
        assert!(
            large.half_width() < small.half_width(),
            "{} vs {}",
            large.half_width(),
            small.half_width()
        );
    }

    #[test]
    fn constant_sample_degenerate_interval() {
        let xs = [7.0; 30];
        let ci = median_ci(&xs, 0.95, 200, 6).unwrap();
        assert_eq!(ci.point, 7.0);
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let xs = noisy_sample(40, 7);
        let a = median_ci(&xs, 0.9, 300, 42).unwrap();
        let b = median_ci(&xs, 0.9, 300, 42).unwrap();
        assert_eq!(a, b);
        let c = median_ci(&xs, 0.9, 300, 43).unwrap();
        assert!(a.lo != c.lo || a.hi != c.hi);
    }

    #[test]
    fn custom_statistic_mean() {
        let xs = noisy_sample(200, 8);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let ci = bootstrap_ci(&xs, 0.95, 400, 9, |s| {
            s.iter().sum::<f64>() / s.len() as f64
        })
        .unwrap();
        assert!((ci.point - mean).abs() < 1e-12);
        assert!(ci.contains(mean));
    }

    #[test]
    fn wider_level_wider_interval() {
        let xs = noisy_sample(50, 10);
        let ci90 = median_ci(&xs, 0.90, 600, 11).unwrap();
        let ci99 = median_ci(&xs, 0.99, 600, 11).unwrap();
        assert!(ci99.half_width() >= ci90.half_width());
    }
}
