//! A minimal JSON value model, writer and parser.
//!
//! The reproduction harness emits machine-readable artifacts (table dumps,
//! `--bench-parallel` timings) and the serving layer exchanges
//! newline-delimited JSON over TCP, all without external crates, so this
//! module provides the one JSON codec the workspace shares. Object
//! members keep insertion order, which keeps every emitted artifact
//! deterministic and diff-friendly; [`parse`] is the strict inverse used
//! by `skyferryd`'s wire protocol and by tools reading the artifacts
//! back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a fractional part.
    Int(i64),
    /// A float rendered with the shortest round-trip representation.
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A float rendered with a fixed number of decimal places (for stable,
    /// diffable artifacts). Non-finite values render as `null`.
    Fixed(f64, u8),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`, `Num` and `Fixed` all read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(v) | Json::Fixed(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Integer view (exact integers only; floats are rejected).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation and a trailing newline, the style
    /// used for checked-in artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Fixed(v, d) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.prec$}", prec = *d as usize);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.iter(), |out, item| {
                    item.write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    members.iter(),
                    |out, (k, v)| {
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    },
                );
            }
        }
    }
}

/// Shared layout for arrays and objects: compact when `indent` is `None`,
/// one item per line otherwise.
fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item);
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

/// Write a JSON-escaped, double-quoted string.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A rejected JSON document: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input at which the problem was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document. Exactly one value is allowed: trailing
/// non-whitespace is an error, as are trailing commas, comments, NaN and
/// infinity literals (strict RFC 8259 subset). Numbers without a
/// fraction or exponent that fit an `i64` parse as [`Json::Int`]; all
/// others as [`Json::Num`].
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Nesting ceiling: malformed deeply-nested input must not overflow the
/// parser's stack (requests arrive from untrusted sockets).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid codepoint"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via char_indices).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty input"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or nonzero-led digit run (leading zeros are
        // invalid JSON).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII digits/sign/dot/exponent only, so
        // this slice is valid UTF-8 by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let v: f64 = text.parse().map_err(|_| self.err("unparsable number"))?;
        if !v.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Fixed(1.0 / 3.0, 4).render(), "0.3333");
        assert_eq!(Json::Fixed(f64::INFINITY, 2).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compact_nesting() {
        let v = Json::obj([
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("s", Json::str("hi")),
        ]);
        assert_eq!(v.render(), "{\"xs\":[1,2],\"s\":\"hi\"}");
    }

    #[test]
    fn pretty_layout() {
        let v = Json::obj([("a", Json::Int(1)), ("b", Json::Arr(vec![]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": 1,\n  \"b\": []\n}\n");
    }

    #[test]
    fn pretty_nested_indent() {
        let v = Json::obj([("rows", Json::Arr(vec![Json::Arr(vec![Json::Int(1)])]))]);
        assert_eq!(
            v.render_pretty(),
            "{\n  \"rows\": [\n    [\n      1\n    ]\n  ]\n}\n"
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("0").unwrap(), Json::Int(0));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("1.11e-4").unwrap(), Json::Num(1.11e-4));
        assert_eq!(parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_structures_and_accessors() {
        let v = parse(r#"{"op":"decide","d0":300,"xs":[1,2.5,null],"ok":true}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("decide"));
        assert_eq!(v.get("d0").and_then(Json::as_f64), Some(300.0));
        assert_eq!(v.get("d0").and_then(Json::as_i64), Some(300));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let xs = v.get("xs").and_then(Json::as_arr).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(1).get("x"), None);
    }

    #[test]
    fn parse_render_round_trips() {
        for src in [
            "{\"a\":1,\"b\":[true,null,\"s\"],\"c\":{\"d\":-2.5}}",
            "[]",
            "{}",
            "[[1],[2,3]]",
            "\"a\\\"b\\\\c\\nd\\u0001\"",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "round trip of {src}");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::str("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        // Raw (non-escaped) multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Json::str("héllo"));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "nul",
            "truefalse",
            "\"unterminated",
            "\"bad\\escape\"",
            "1 2",
            "NaN",
            "Infinity",
            "1e999",
            "--1",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        assert_eq!(
            parse("9223372036854775807").unwrap(),
            Json::Int(i64::MAX),
            "i64::MAX stays exact"
        );
        assert!(matches!(
            parse("92233720368547758080").unwrap(),
            Json::Num(_)
        ));
    }
}
