//! A minimal JSON value model and writer.
//!
//! The reproduction harness emits machine-readable artifacts (table dumps,
//! `--bench-parallel` timings) and must do so without external crates, so
//! this module provides the one JSON writer the workspace shares. Object
//! members keep insertion order, which keeps every emitted artifact
//! deterministic and diff-friendly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a fractional part.
    Int(i64),
    /// A float rendered with the shortest round-trip representation.
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A float rendered with a fixed number of decimal places (for stable,
    /// diffable artifacts). Non-finite values render as `null`.
    Fixed(f64, u8),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation and a trailing newline, the style
    /// used for checked-in artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Fixed(v, d) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.prec$}", prec = *d as usize);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.iter(), |out, item| {
                    item.write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    members.iter(),
                    |out, (k, v)| {
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    },
                );
            }
        }
    }
}

/// Shared layout for arrays and objects: compact when `indent` is `None`,
/// one item per line otherwise.
fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item);
    }
    if n > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

/// Write a JSON-escaped, double-quoted string.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Fixed(1.0 / 3.0, 4).render(), "0.3333");
        assert_eq!(Json::Fixed(f64::INFINITY, 2).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compact_nesting() {
        let v = Json::obj([
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("s", Json::str("hi")),
        ]);
        assert_eq!(v.render(), "{\"xs\":[1,2],\"s\":\"hi\"}");
    }

    #[test]
    fn pretty_layout() {
        let v = Json::obj([("a", Json::Int(1)), ("b", Json::Arr(vec![]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": 1,\n  \"b\": []\n}\n");
    }

    #[test]
    fn pretty_nested_indent() {
        let v = Json::obj([("rows", Json::Arr(vec![Json::Arr(vec![Json::Int(1)])]))]);
        assert_eq!(
            v.render_pretty(),
            "{\n  \"rows\": [\n    [\n      1\n    ]\n  ]\n}\n"
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
    }
}
