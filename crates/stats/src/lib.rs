//! # skyferry-stats
//!
//! Descriptive statistics for the measurement campaigns in the skyferry
//! reproduction of Asadpour et al. (CoNEXT 2013).
//!
//! The paper reports its empirical results as
//!
//! * **boxplots** of throughput vs distance (Figures 5 and 7): median,
//!   quartiles, Tukey whiskers, outliers — see [`boxplot`];
//! * **medians** compared across configurations (Figure 6) — see
//!   [`mod@quantile`];
//! * **logarithmic least-squares fits** of the median throughput,
//!   `s(d) = a·log2(d) + b`, with the coefficient of determination R²
//!   (Section 4: R² = 0.90 for airplanes, 0.96 for quadrocopters) — see
//!   [`regression`];
//! * plain summary statistics, typed tables and a JSON writer for the
//!   reproduction harness — see [`summary`], [`table`] and [`json`];
//! * **bootstrap confidence intervals** for the campaign medians — see
//!   [`bootstrap`].
//!
//! Everything operates on `&[f64]` slices, is allocation-light and has no
//! dependencies, so every other crate in the workspace can use it freely.

#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod boxplot;
pub mod histogram;
pub mod json;
pub mod quantile;
pub mod regression;
pub mod summary;
pub mod table;

pub use bootstrap::{median_ci, ConfidenceInterval};
pub use boxplot::BoxplotSummary;
pub use histogram::Histogram;
pub use json::Json;
pub use quantile::{median, quantile, Quartiles};
pub use regression::{LinearFit, Log2Fit};
pub use summary::Summary;
pub use table::{Align, Column, ColumnKind, Table, Value};
