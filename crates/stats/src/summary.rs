//! Streaming summary statistics (Welford's online algorithm).
//!
//! Used by throughput meters and campaign runners that process samples one
//! at a time and should not buffer entire runs just to compute a mean.

/// Running mean/variance/min/max accumulator.
///
/// ```
/// use skyferry_stats::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev().unwrap() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one sample.
    ///
    /// # Panics
    /// Panics on NaN (which would silently poison every statistic).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN pushed into Summary");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
    }

    /// Fold an iterator of samples into a summary.
    // allow: `FromIterator` would force `Summary: Default` semantics on
    // collect(); a named constructor keeps the fold explicit.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Smallest sample; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Population variance (divide by n); `None` if empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample variance (divide by n−1); `None` with fewer than two samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Population standard deviation; `None` if empty.
    pub fn population_std_dev(&self) -> Option<f64> {
        self.population_variance().map(f64::sqrt)
    }

    /// Sample standard deviation; `None` with fewer than two samples.
    pub fn sample_std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_none() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.population_variance().is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_iter([5.0]);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.population_variance(), Some(0.0));
        assert!(s.sample_variance().is_none());
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn variance_matches_direct_formula() {
        let xs = [1.5, -2.0, 3.25, 0.0, 8.0, -1.0];
        let s = Summary::from_iter(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean().unwrap() - mean).abs() < 1e-12);
        assert!((s.population_variance().unwrap() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut left = Summary::from_iter(a.iter().copied());
        let right = Summary::from_iter(b.iter().copied());
        left.merge(&right);
        let all = Summary::from_iter(xs.iter().copied());
        assert_eq!(left.count(), all.count());
        assert!((left.mean().unwrap() - all.mean().unwrap()).abs() < 1e-10);
        assert!(
            (left.population_variance().unwrap() - all.population_variance().unwrap()).abs()
                < 1e-10
        );
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_iter([1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), s.mean());
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }
}
