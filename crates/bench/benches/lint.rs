//! Lint engine microbench, and the full-workspace latency gate.
//!
//! The v2 engine replaced the v1 per-line substring scan with a full
//! lexer → items → taint pipeline; this bench quantifies what that
//! bought and cost on the real workspace corpus:
//!
//! * **lex** — tokenising every source file (the shared front end);
//! * **v1-line-rules** — only the `Check::Lines` rules, the part of
//!   the registry the v1 engine could express;
//! * **v2-full-pass** — the whole registry, including the per-file
//!   item model and the workspace taint rules.
//!
//! Then the gate: one timed cold full pass over the workspace must
//! finish under `SKYFERRY_LINT_GATE_MS` milliseconds (default 2000) —
//! the lint runs on every CI push, so it must stay interactive.
//! Results land in `BENCH_lint.json`.

use std::hint::black_box;

use skyferry_bench::microbench::Harness;
use skyferry_lint::lexer::lex;
use skyferry_lint::rules::{lint_files_with, registry, Check, Rule};
use skyferry_lint::walk::{rust_files, workspace_root};
use skyferry_stats::json::Json;
use skyferry_trace::clock::monotonic_ns;

/// Load the workspace corpus exactly as the lint binary does:
/// `(repo-relative path, source)`, sorted by the deterministic walk.
fn corpus() -> Vec<(String, String)> {
    let root = workspace_root();
    rust_files(&root)
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel)).expect("readable source file");
            (rel.to_string_lossy().replace('\\', "/"), src)
        })
        .collect()
}

fn median_ns(h: &Harness, name: &str) -> f64 {
    h.results()
        .iter()
        .find(|m| m.name == name)
        .map(|m| m.median.as_nanos() as f64)
        .unwrap_or(f64::NAN)
}

fn main() {
    let files = corpus();
    let total_bytes: usize = files.iter().map(|(_, s)| s.len()).sum();
    println!(
        "corpus: {} files, {:.1} kB\n",
        files.len(),
        total_bytes as f64 / 1e3
    );

    let line_rules: Vec<Rule> = registry()
        .into_iter()
        .filter(|r| matches!(r.check, Check::Lines(_)))
        .collect();
    let full_rules: Vec<Rule> = registry();

    let mut h = Harness::from_env();
    h.bench("lint/lex-workspace", || {
        let tokens: usize = files.iter().map(|(_, s)| lex(s).len()).sum();
        black_box(tokens)
    });
    h.bench("lint/v1-line-rules", || {
        black_box(lint_files_with(&files, &line_rules).findings.len())
    });
    h.bench("lint/v2-full-pass", || {
        black_box(lint_files_with(&files, &full_rules).findings.len())
    });

    // The gate: one timed full pass (median over the bench batches is
    // the steady-state number; the gate uses a fresh single pass so a
    // pathological first-run cost cannot hide in the warm-up).
    let gate_ms: f64 = std::env::var("SKYFERRY_LINT_GATE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000.0);
    let t0 = monotonic_ns();
    let findings = lint_files_with(&files, &full_rules).findings.len();
    let full_pass_s = (monotonic_ns() - t0) as f64 / 1e9;
    println!(
        "\nfull-workspace pass: {:.3} s, {} finding(s) (gate {:.1} s)",
        full_pass_s,
        findings,
        gate_ms / 1e3
    );

    let v1_ns = median_ns(&h, "lint/v1-line-rules");
    let v2_ns = median_ns(&h, "lint/v2-full-pass");
    let json = Json::obj([
        ("bench", Json::str("lint-engine")),
        (
            "corpus",
            Json::obj([
                ("files", Json::Int(files.len() as i64)),
                ("bytes", Json::Int(total_bytes as i64)),
                ("rules_total", Json::Int(full_rules.len() as i64)),
                ("rules_line_only", Json::Int(line_rules.len() as i64)),
            ]),
        ),
        (
            "workspace_pass_ns",
            Json::obj([
                ("lex", Json::Fixed(median_ns(&h, "lint/lex-workspace"), 1)),
                ("v1_line_rules", Json::Fixed(v1_ns, 1)),
                ("v2_full_pass", Json::Fixed(v2_ns, 1)),
            ]),
        ),
        ("v2_over_v1", Json::Fixed(v2_ns / v1_ns, 2)),
        (
            "gate",
            Json::obj([
                ("full_pass_s", Json::Fixed(full_pass_s, 4)),
                ("budget_s", Json::Fixed(gate_ms / 1e3, 4)),
            ]),
        ),
    ]);
    // Cargo runs benches with cwd = the package dir; anchor the report
    // at the workspace root next to the other BENCH_*.json files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    std::fs::write(out, json.render_pretty()).expect("write BENCH_lint.json");
    println!("wrote BENCH_lint.json");
    h.finish();

    if full_pass_s * 1e3 >= gate_ms {
        eprintln!(
            "GATE FAILED: full-workspace lint pass {full_pass_s:.3} s >= {:.1} s budget",
            gate_ms / 1e3
        );
        std::process::exit(1);
    }
}
