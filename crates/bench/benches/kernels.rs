//! Benchmarks of the computational kernels underneath the reproduction:
//! the Eq. (2) optimizer, the PHY error chain, one MAC TXOP, and a
//! second of simulated saturated traffic.

use std::hint::black_box;

use skyferry_bench::microbench::Harness;
use skyferry_control::mission::{run_mission, MissionConfig};
use skyferry_core::mixed::{optimize_mixed, MixedConfig};
use skyferry_core::optimizer::optimize;
use skyferry_core::scenario::Scenario;
use skyferry_core::sweep::{gratification_sweep, paper_grid};
use skyferry_geo::vector::Vec3;
use skyferry_mac::link::{LinkConfig, LinkState};
use skyferry_mac::queue::TxQueue;
use skyferry_mac::rate::{Arf, FixedMcs, RateController, TxFeedback};
use skyferry_net::campaign::{measure_throughput, CampaignConfig, ControllerKind};
use skyferry_net::profile::MotionProfile;
use skyferry_phy::channel::db_to_linear;
use skyferry_phy::error::{coded_per, effective_snr_linear};
use skyferry_phy::fading::FadingProcess;
use skyferry_phy::mcs::Mcs;
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::prelude::*;
use skyferry_units::{Db, MetersPerSec};

fn bench_optimizer(h: &mut Harness) {
    let air = Scenario::airplane_baseline();
    let quad = Scenario::quadrocopter_baseline();
    h.bench("optimizer/airplane-baseline", || {
        black_box(optimize(black_box(&air)))
    });
    h.bench("optimizer/quadrocopter-baseline", || {
        black_box(optimize(black_box(&quad)))
    });
    h.bench("optimizer/figure9-grid-30-cells", || {
        black_box(gratification_sweep(
            &air,
            &paper_grid::MDATA_MB,
            &paper_grid::SPEEDS_MPS,
        ))
    });
    let s = Scenario::quadrocopter_baseline().with_mdata_mb(15.0);
    let cfg = MixedConfig::for_speed(MetersPerSec::new(4.5));
    h.bench("optimizer/mixed-2d", || black_box(optimize_mixed(&s, &cfg)));
}

fn bench_phy(h: &mut Harness) {
    let preset = ChannelPreset::airplane(MetersPerSec::new(20.0));
    let mut fading = FadingProcess::new(preset.fading, DetRng::seed(1));
    let snr = db_to_linear(preset.mean_snr(skyferry_units::Meters::new(100.0)).get());
    let mut t = SimTime::ZERO;
    h.bench("phy/per-subframe-error-chain", || {
        t += SimDuration::from_micros(500);
        let state = fading.state_at(t);
        let eff = effective_snr_linear(Mcs::new(3), true, snr, &state, Db::new(12.0));
        black_box(coded_per(Mcs::new(3), eff, 1500))
    });
}

fn bench_mac(h: &mut Harness) {
    let seeds = SeedStream::new(5);
    let preset = ChannelPreset::quadrocopter(MetersPerSec::new(0.0));
    let mut link = LinkState::new(
        LinkConfig::paper_default(preset),
        Box::new(FixedMcs(Mcs::new(1))),
        seeds.rng("fading"),
        seeds.rng("link"),
    );
    let mut queue = TxQueue::saturated(1e9, 1 << 20);
    let mut now = SimTime::ZERO;
    h.bench("mac/txop", || {
        let out = link.execute_txop(now, 40.0, 0.0, &mut queue);
        now += out.airtime;
        black_box(out.delivered)
    });

    let mut arf = Arf::new();
    let mut rng = DetRng::seed(6);
    let mut i = 0u64;
    h.bench("mac/arf-full-ladder-feedback", || {
        let mcs = arf.select(SimTime::from_millis(i), &mut rng);
        arf.feedback(&TxFeedback {
            mcs,
            attempted: 14,
            delivered: (i % 15) as u32,
            at: SimTime::from_millis(i),
        });
        i += 1;
        black_box(mcs)
    });
}

fn bench_campaign_second(h: &mut Harness) {
    let cfg = CampaignConfig {
        preset: ChannelPreset::airplane(MetersPerSec::new(20.0)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(1),
        seed: 3,
    };
    let mut rep = 0;
    h.bench("campaign/one-simulated-second-autorate", || {
        rep += 1;
        black_box(measure_throughput(&cfg, MotionProfile::hover(100.0), rep))
    });
}

fn bench_mission(h: &mut Harness) {
    let mut cfg = MissionConfig::quadrocopter_fleet(1, 50.0, 5);
    cfg.relay_position = Vec3::new(100.0, 25.0, 10.0);
    cfg.horizon_s = 900.0;
    h.bench("mission/single-uav-full-mission", || {
        black_box(run_mission(&cfg).completions())
    });
}

fn main() {
    let mut h = Harness::from_env();
    bench_optimizer(&mut h);
    bench_phy(&mut h);
    bench_mac(&mut h);
    bench_campaign_second(&mut h);
    bench_mission(&mut h);
    h.finish();
}
