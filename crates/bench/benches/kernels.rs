//! Criterion benchmarks of the computational kernels underneath the
//! reproduction: the Eq. (2) optimizer, the PHY error chain, one MAC
//! TXOP, and a second of simulated saturated traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use skyferry_control::mission::{run_mission, MissionConfig};
use skyferry_core::mixed::{optimize_mixed, MixedConfig};
use skyferry_core::optimizer::optimize;
use skyferry_core::scenario::Scenario;
use skyferry_core::sweep::{gratification_sweep, paper_grid};
use skyferry_geo::vector::Vec3;
use skyferry_mac::link::{LinkConfig, LinkState};
use skyferry_mac::queue::TxQueue;
use skyferry_mac::rate::{Arf, FixedMcs};
use skyferry_net::campaign::{measure_throughput, CampaignConfig, ControllerKind};
use skyferry_net::profile::MotionProfile;
use skyferry_phy::channel::db_to_linear;
use skyferry_phy::error::{coded_per, effective_snr_linear};
use skyferry_phy::fading::FadingProcess;
use skyferry_phy::mcs::Mcs;
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::prelude::*;

fn bench_optimizer(c: &mut Criterion) {
    let air = Scenario::airplane_baseline();
    let quad = Scenario::quadrocopter_baseline();
    c.bench_function("optimizer/airplane-baseline", |b| {
        b.iter(|| black_box(optimize(black_box(&air))))
    });
    c.bench_function("optimizer/quadrocopter-baseline", |b| {
        b.iter(|| black_box(optimize(black_box(&quad))))
    });
    c.bench_function("optimizer/figure9-grid-30-cells", |b| {
        b.iter(|| {
            black_box(gratification_sweep(
                &air,
                &paper_grid::MDATA_MB,
                &paper_grid::SPEEDS_MPS,
            ))
        })
    });
    c.bench_function("optimizer/mixed-2d", |b| {
        let s = Scenario::quadrocopter_baseline().with_mdata_mb(15.0);
        let cfg = MixedConfig::for_speed(4.5);
        b.iter(|| black_box(optimize_mixed(&s, &cfg)))
    });
}

fn bench_mission(c: &mut Criterion) {
    let mut group = c.benchmark_group("mission");
    group.sample_size(10);
    group.bench_function("single-uav-full-mission", |b| {
        let mut cfg = MissionConfig::quadrocopter_fleet(1, 50.0, 5);
        cfg.relay_position = Vec3::new(100.0, 25.0, 10.0);
        cfg.horizon_s = 900.0;
        b.iter(|| black_box(run_mission(&cfg).completions()))
    });
    group.finish();
}

fn bench_phy(c: &mut Criterion) {
    let preset = ChannelPreset::airplane(20.0);
    let mut fading = FadingProcess::new(preset.fading, DetRng::seed(1));
    let snr = db_to_linear(preset.mean_snr_db(100.0));
    c.bench_function("phy/per-subframe-error-chain", |b| {
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(500);
            let state = fading.state_at(t);
            let eff = effective_snr_linear(Mcs::new(3), true, snr, &state, 12.0);
            black_box(coded_per(Mcs::new(3), eff, 1500))
        })
    });
}

fn bench_mac(c: &mut Criterion) {
    c.bench_function("mac/txop", |b| {
        let seeds = SeedStream::new(5);
        let preset = ChannelPreset::quadrocopter(0.0);
        let mut link = LinkState::new(
            LinkConfig::paper_default(preset),
            Box::new(FixedMcs(Mcs::new(1))),
            seeds.rng("fading"),
            seeds.rng("link"),
        );
        let mut queue = TxQueue::saturated(1e9, 1 << 20);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let out = link.execute_txop(now, 40.0, 0.0, &mut queue);
            now += out.airtime;
            black_box(out.delivered)
        })
    });

    c.bench_function("mac/arf-full-ladder-feedback", |b| {
        use skyferry_mac::rate::{RateController, TxFeedback};
        let mut arf = Arf::new();
        let mut rng = DetRng::seed(6);
        let mut i = 0u64;
        b.iter(|| {
            let mcs = arf.select(SimTime::from_millis(i), &mut rng);
            arf.feedback(&TxFeedback {
                mcs,
                attempted: 14,
                delivered: (i % 15) as u32,
                at: SimTime::from_millis(i),
            });
            i += 1;
            black_box(mcs)
        })
    });
}

fn bench_campaign_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(20);
    group.bench_function("one-simulated-second-autorate", |b| {
        let cfg = CampaignConfig {
            preset: ChannelPreset::airplane(20.0),
            controller: ControllerKind::Arf,
            duration: SimDuration::from_secs(1),
            seed: 3,
        };
        let mut rep = 0;
        b.iter(|| {
            rep += 1;
            black_box(measure_throughput(&cfg, MotionProfile::hover(100.0), rep))
        })
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_optimizer,
    bench_phy,
    bench_mac,
    bench_campaign_second,
    bench_mission
);
criterion_main!(kernels);
