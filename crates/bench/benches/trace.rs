//! Tracer overhead microbench, and the serve-path overhead gate.
//!
//! Three span-cost regimes:
//!
//! * **disabled** — tracer never installed: `span!` is one relaxed
//!   atomic load (the compile-time no-op with `--no-default-features`
//!   is not measurable from an enabled build);
//! * **unsampled** — installed with sample rate 0: the per-span
//!   sampling check runs, nothing is recorded;
//! * **full** — every span recorded into the thread-local buffer.
//!
//! Then the end-to-end gate: a closed-loop loadgen run against an
//! in-process `skyferryd` engine with tracing off vs. on (per-request
//! span trees). The run fails if tracing costs more than
//! `SKYFERRY_TRACE_GATE` percent of throughput (default 10). Results
//! land in `BENCH_trace.json`.

use std::hint::black_box;

use skyferry_bench::microbench::Harness;
use skyferry_core::optimizer::optimize;
use skyferry_core::scenario::Scenario;
use skyferry_serve::loadgen::{run as loadgen_run, LoadgenConfig};
use skyferry_serve::server::{start, ServerConfig};
use skyferry_stats::json::Json;
use skyferry_trace as trace;

fn median_ns(h: &Harness, name: &str) -> f64 {
    h.results()
        .iter()
        .find(|m| m.name == name)
        .map(|m| m.median.as_nanos() as f64)
        .unwrap_or(f64::NAN)
}

fn bench_span_paths(h: &mut Harness) {
    assert!(!trace::enabled(), "tracer must start uninstalled");
    let mut i = 0u64;
    h.bench("trace/span-disabled", || {
        i += 1;
        let _s = trace::span!("bench-span", i = i);
        black_box(i)
    });

    trace::install(trace::TraceConfig {
        sample: 0,
        ..Default::default()
    });
    let mut i = 0u64;
    h.bench("trace/span-unsampled", || {
        i += 1;
        let _s = trace::span!("bench-span", i = i);
        black_box(i)
    });
    assert!(trace::drain().is_empty(), "sample 0 must record nothing");

    trace::install(trace::TraceConfig::default());
    let mut n = 0u64;
    h.bench("trace/span-full", || {
        n += 1;
        // Bound memory: the harness may run millions of iterations.
        if n % 200_000 == 0 {
            trace::drain();
            trace::install(trace::TraceConfig::default());
        }
        let _s = trace::span!("bench-span", i = n);
        black_box(n)
    });
    let recorded = trace::drain();
    assert!(!recorded.is_empty(), "full mode must record spans");

    // The serve dispatcher's per-request emission: a manual span plus a
    // five-child tree in one thread-local access.
    trace::install(trace::TraceConfig::default());
    let mut n = 0u64;
    h.bench("trace/request-tree", || {
        n += 1;
        if n % 50_000 == 0 {
            trace::drain();
            trace::install(trace::TraceConfig::default());
        }
        let span = trace::manual_span("request");
        span.finish_tree(
            0,
            600,
            trace::fields!(req = n, cache_hit = true, endpoint = "decide"),
            &[
                ("parse", 0, 100),
                ("queue", 100, 200),
                ("cache", 200, 300),
                ("compute", 300, 500),
                ("respond", 500, 600),
            ],
        );
        black_box(n)
    });
    let _ = trace::drain();
}

/// A real workload (one Eq. (2) solve, which carries an `optimize`
/// span) untraced vs. fully traced.
fn bench_optimize_paths(h: &mut Harness) {
    let s = Scenario::airplane_baseline();
    assert!(!trace::enabled());
    h.bench("trace/optimize-untraced", || {
        black_box(optimize(black_box(&s)))
    });
    trace::install(trace::TraceConfig::default());
    h.bench("trace/optimize-traced", || {
        black_box(optimize(black_box(&s)))
    });
    let _ = trace::drain();
}

/// One closed-loop loadgen phase against `addr`; returns requests/s.
fn one_phase(addr: &str, requests: usize) -> f64 {
    let cfg = LoadgenConfig {
        addr: addr.to_string(),
        requests,
        concurrency: 2,
        window: 32,
        ..Default::default()
    };
    let report = loadgen_run(&cfg).expect("loadgen phase");
    assert_eq!(report.phases[0].protocol_errors, 0);
    report.phases[0].throughput_rps
}

/// Closed-loop serve throughput with tracing off vs. on.
///
/// The container this runs in may have a single, noisy hardware thread,
/// so raw rps swings ±30% between runs. The overhead estimate is
/// therefore *paired*: each round measures an untraced phase and a
/// traced phase back to back and contributes one on/off ratio, and the
/// gate uses the median ratio — slow-machine drift hits both halves of
/// a round, while only a consistent traced-side cost moves the median.
fn serve_overhead(requests: usize, rounds: usize) -> (f64, f64, f64, usize) {
    let handle = start(ServerConfig::default()).expect("bind server");
    let addr = handle.addr().to_string();
    assert!(!trace::enabled());

    // Warm-up: populate the decision cache so both measured modes see
    // the same (hit-dominated) steady state.
    one_phase(&addr, requests);

    let mut rps_off: f64 = 0.0;
    let mut rps_on: f64 = 0.0;
    let mut ratios: Vec<f64> = Vec::new();
    for _ in 0..rounds {
        let off = one_phase(&addr, requests);
        trace::install(trace::TraceConfig::default());
        let on = one_phase(&addr, requests);
        // Pause recording between traced runs; the dispatcher's records
        // stay in its thread-local buffer until the server exits.
        trace::drain();
        rps_off = rps_off.max(off);
        rps_on = rps_on.max(on);
        ratios.push(on / off.max(1e-9));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratio is finite"));
    let median_ratio = ratios[ratios.len() / 2];
    let overhead = 1.0 - median_ratio;

    trace::install(trace::TraceConfig::default());
    let traced_requests = requests;
    one_phase(&addr, traced_requests);
    handle.shutdown();
    handle.join();
    let records = trace::drain();
    let request_spans = records
        .iter()
        .filter(|r| r.is_span() && r.name == "request")
        .count();
    assert!(
        request_spans >= traced_requests,
        "expected at least {traced_requests} request spans, got {request_spans}"
    );
    (rps_off, rps_on, overhead, request_spans)
}

fn main() {
    let mut h = Harness::from_env();
    bench_span_paths(&mut h);
    bench_optimize_paths(&mut h);

    let requests = std::env::var("SKYFERRY_TRACE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000usize);
    let rounds = std::env::var("SKYFERRY_TRACE_BENCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5usize);
    let (rps_off, rps_on, overhead, request_spans) = serve_overhead(requests, rounds);
    let gate_pct: f64 = std::env::var("SKYFERRY_TRACE_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    println!(
        "serve closed-loop: {rps_off:.0} rps untraced, {rps_on:.0} rps traced \
         ({:+.1}% median paired overhead over {rounds} rounds, gate {gate_pct:.0}%)",
        overhead * 100.0
    );

    let json = Json::obj([
        ("bench", Json::str("trace-overhead")),
        (
            "span_ns",
            Json::obj([
                (
                    "disabled",
                    Json::Fixed(median_ns(&h, "trace/span-disabled"), 1),
                ),
                (
                    "unsampled",
                    Json::Fixed(median_ns(&h, "trace/span-unsampled"), 1),
                ),
                ("full", Json::Fixed(median_ns(&h, "trace/span-full"), 1)),
                (
                    "request_tree",
                    Json::Fixed(median_ns(&h, "trace/request-tree"), 1),
                ),
            ]),
        ),
        (
            "optimize_ns",
            Json::obj([
                (
                    "untraced",
                    Json::Fixed(median_ns(&h, "trace/optimize-untraced"), 1),
                ),
                (
                    "traced",
                    Json::Fixed(median_ns(&h, "trace/optimize-traced"), 1),
                ),
            ]),
        ),
        (
            "serve",
            Json::obj([
                ("requests_per_phase", Json::Int(requests as i64)),
                ("rounds", Json::Int(rounds as i64)),
                ("rps_untraced", Json::Fixed(rps_off, 1)),
                ("rps_traced", Json::Fixed(rps_on, 1)),
                ("overhead_frac", Json::Fixed(overhead, 4)),
                ("gate_frac", Json::Fixed(gate_pct / 100.0, 4)),
                ("request_spans", Json::Int(request_spans as i64)),
            ]),
        ),
    ]);
    // Cargo runs benches with cwd = the package dir; anchor the report at
    // the workspace root next to the other checked-in BENCH_*.json files.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(out, json.render_pretty()).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json");
    h.finish();

    if overhead * 100.0 >= gate_pct {
        eprintln!(
            "GATE FAILED: tracing overhead {:.1}% >= {gate_pct:.0}% on the serve closed loop",
            overhead * 100.0
        );
        std::process::exit(1);
    }
}
