//! Scaling benchmark for the deterministic replication engine:
//! `run_replications` over a short saturated-traffic campaign at 1, 2, 4
//! and 8 worker threads. Prints wall-clock per thread count and asserts
//! the pooled output is bit-identical across all of them.

use std::hint::black_box;

use skyferry_net::campaign::{measure_throughput, CampaignConfig, ControllerKind};
use skyferry_net::profile::MotionProfile;
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::parallel::{run_replications, set_max_threads};
use skyferry_sim::prelude::*;
use skyferry_trace::clock::monotonic_ns;
use skyferry_units::MetersPerSec;

const REPS: u64 = 16;

fn campaign() -> CampaignConfig {
    CampaignConfig {
        preset: ChannelPreset::quadrocopter(MetersPerSec::new(0.0)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(2),
        seed: 0x5CA1_AB1E,
    }
}

fn run_once(cfg: &CampaignConfig) -> Vec<Vec<f64>> {
    // The replication body ignores the engine-provided RNG: the campaign
    // derives its own substreams from (seed, rep), which is exactly the
    // determinism contract run_replications exists to preserve.
    run_replications(cfg.seed, "bench-campaign", REPS, |rep, _rng| {
        measure_throughput(cfg, MotionProfile::hover(50.0), rep)
    })
}

fn main() {
    let cfg = campaign();
    println!(
        "run_replications scaling: {REPS} reps × {} simulated seconds (hardware threads: {})",
        cfg.duration.as_secs_f64(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut reference: Option<Vec<Vec<f64>>> = None;
    let mut serial_secs = 0.0;
    for threads in [1usize, 2, 4, 8] {
        set_max_threads(threads);
        // Warm-up, then best-of-3 wall clock.
        black_box(run_once(&cfg));
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..3 {
            let t0 = monotonic_ns();
            out = run_once(&cfg);
            best = best.min(monotonic_ns().saturating_sub(t0) as f64 / 1e9);
        }
        match &reference {
            None => {
                reference = Some(out);
                serial_secs = best;
            }
            Some(r) => assert_eq!(r, &out, "outputs differ at {threads} threads"),
        }
        println!(
            "  threads={threads}: {:>8.3} s  (speedup {:.2}x)",
            best,
            serial_secs / best
        );
    }
    set_max_threads(0);
    println!("outputs bit-identical across all thread counts.");
}
