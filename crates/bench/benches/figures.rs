//! Criterion benchmarks: one benchmark per reproduced table/figure.
//!
//! Each bench regenerates its experiment end to end (quick-mode sizing,
//! fixed seed), so `cargo bench` both times the harness and proves every
//! figure's pipeline still runs. Sample counts are kept small because a
//! single iteration of the campaign figures simulates tens of seconds of
//! radio time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use skyferry_bench::experiments;
use skyferry_bench::report::ReproConfig;

fn cfg() -> ReproConfig {
    ReproConfig {
        seed: 0xBE7C_4A5E,
        quick: true,
        out_dir: None,
    }
}

fn bench_experiment(c: &mut Criterion, id: &'static str) {
    let config = cfg();
    c.bench_function(&format!("repro/{id}"), |b| {
        b.iter(|| {
            let report = experiments::run(id, &config).expect("known experiment");
            black_box(report.tables.len())
        })
    });
}

fn light_figures(c: &mut Criterion) {
    // Analytic experiments: fast, benched at default precision.
    for id in ["table1", "mdata", "fig8", "fig9"] {
        bench_experiment(c, id);
    }
}

fn campaign_figures(c: &mut Criterion) {
    // Full-stack simulation campaigns: seconds per iteration.
    let mut group = c.benchmark_group("repro-campaigns");
    group.sample_size(10);
    let config = cfg();
    for id in ["fig1", "fig4", "fig5", "fig6", "fig7", "fits"] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let report = experiments::run(id, &config).expect("known experiment");
                black_box(report.notes.len())
            })
        });
    }
    group.finish();
}

criterion_group!(figures, light_figures, campaign_figures);
criterion_main!(figures);
