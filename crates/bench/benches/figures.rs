//! Benchmarks: one per reproduced table/figure.
//!
//! Each bench regenerates its experiment end to end (quick-mode sizing,
//! fixed seed), so `cargo bench` both times the harness and proves every
//! figure's pipeline still runs.

use std::hint::black_box;

use skyferry_bench::experiments;
use skyferry_bench::microbench::Harness;
use skyferry_bench::report::ReproConfig;
use skyferry_bench::store::CampaignStore;

fn cfg() -> ReproConfig {
    ReproConfig {
        seed: 0xBE7C_4A5E,
        quick: true,
        out_dir: None,
    }
}

fn main() {
    let mut h = Harness::from_env();
    let config = cfg();
    // Analytic experiments first (fast), then the full-stack campaigns
    // (seconds of simulated radio time per iteration).
    for id in [
        "table1", "mdata", "fig8", "fig9", "fig1", "fig4", "fig5", "fig6", "fig7", "fits",
    ] {
        h.bench(&format!("repro/{id}"), || {
            let mut store = CampaignStore::new(config.quick);
            let report = experiments::run(id, &config, &mut store).expect("known experiment");
            black_box(report.tables.len())
        });
    }
    h.finish();
}
