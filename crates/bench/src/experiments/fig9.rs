//! Figure 9 — delayed gratification for different data sizes and speeds
//! (airplane scenario).
//!
//! Each `Mdata ∈ {5, 7, 10, 15, 25, 45} MB` draws a curve of
//! `(dopt, U(dopt))` sampled at `v ∈ {3, 5, 10, 15, 20} m/s`. Claims:
//! higher speed moves the optimum closer; larger batches move it closer
//! at the cost of reduced utility; once the 20 m minimum is reached,
//! higher speed *increases* the gratification (seen for 25 and 45 MB
//! above 10–15 m/s).

use skyferry_core::scenario::Scenario;
use skyferry_core::sweep::{gratification_sweep, paper_grid, GratificationPoint};
use skyferry_stats::table::{Column, Table};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// Compute the Figure 9 grid.
pub fn simulate() -> Vec<Vec<GratificationPoint>> {
    gratification_sweep(
        &Scenario::airplane_baseline(),
        &paper_grid::MDATA_MB,
        &paper_grid::SPEEDS_MPS,
    )
}

/// Regenerate Figure 9.
pub fn run(_cfg: &ReproConfig) -> ExperimentReport {
    let grid = simulate();

    let speed_columns = |decimals: usize| {
        let mut columns = vec![Column::text("Mdata \\ v")];
        columns.extend(
            ["3 m/s", "5 m/s", "10 m/s", "15 m/s", "20 m/s"]
                .iter()
                .map(|h| Column::float(*h, decimals)),
        );
        columns
    };
    let mut dopt = Table::new(speed_columns(1));
    let mut util = Table::new(speed_columns(4));
    for row in &grid {
        let label = format!("{:.0} MB", row[0].mdata_mb);
        let d: Vec<f64> = row.iter().map(|p| p.optimum.d_opt).collect();
        let u: Vec<f64> = row.iter().map(|p| p.optimum.utility).collect();
        dopt.row_f64(&label, &d);
        util.row_f64(&label, &u);
    }

    let mut r = ExperimentReport::new("fig9", Fig9.title());
    let small = &grid[0];
    let large = grid.last().expect("non-empty");
    r.note(format!(
        "at v=10 m/s: dopt({:.0} MB) = {:.0} m vs dopt({:.0} MB) = {:.0} m (larger batches move closer)",
        small[0].mdata_mb,
        small[2].optimum.d_opt,
        large[0].mdata_mb,
        large[2].optimum.d_opt
    ));
    let u45_15 = large[3].optimum.utility;
    let u45_20 = large[4].optimum.utility;
    r.note(format!(
        "45 MB at v≥15 m/s pins at 20 m and U grows with v: U(15)={u45_15:.4} < U(20)={u45_20:.4}"
    ));
    r.table("dopt (m) per Mdata × v", dopt);
    r.table("U(dopt) per Mdata × v", util);
    r
}

/// Registry entry for Figure 9.
pub struct Fig9;

impl Experiment for Fig9 {
    fn id(&self) -> &'static str {
        "fig9"
    }

    fn title(&self) -> &'static str {
        "Delayed gratification for different data sizes and speeds (airplane scenario)"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cfg: &ReproConfig, _store: &mut CampaignStore) -> ExperimentReport {
        run(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_6_by_5() {
        let g = simulate();
        assert_eq!(g.len(), 6);
        assert!(g.iter().all(|row| row.len() == 5));
    }

    #[test]
    fn dopt_nonincreasing_in_speed_per_row() {
        for row in simulate() {
            for w in row.windows(2) {
                assert!(
                    w[1].optimum.d_opt <= w[0].optimum.d_opt + 1e-6,
                    "Mdata={} MB: dopt grew with v",
                    row[0].mdata_mb
                );
            }
        }
    }

    #[test]
    fn bigger_batches_closer_and_less_happy() {
        let g = simulate();
        for col in 0..5 {
            for pair in g.windows(2) {
                let (s, l) = (&pair[0][col], &pair[1][col]);
                assert!(l.optimum.d_opt <= s.optimum.d_opt + 1e-6);
                assert!(l.optimum.utility < s.optimum.utility);
            }
        }
    }

    #[test]
    fn saturation_effect_for_45mb() {
        let g = simulate();
        let row45 = g.last().unwrap();
        // Once dopt pins at 20 m (high speeds), utility increases with v.
        let pinned: Vec<_> = row45
            .iter()
            .filter(|p| (p.optimum.d_opt - 20.0).abs() < 0.5)
            .collect();
        assert!(pinned.len() >= 2, "45 MB should pin at d_min for fast v");
        for w in pinned.windows(2) {
            assert!(w[1].optimum.utility > w[0].optimum.utility);
        }
    }

    #[test]
    fn small_batch_at_low_speed_transmits_far_out() {
        let g = simulate();
        let p = &g[0][0]; // 5 MB at 3 m/s
        assert!(
            p.optimum.d_opt > 100.0,
            "5 MB at 3 m/s should stay far out, dopt={}",
            p.optimum.d_opt
        );
    }
}
