//! Section 4's logarithmic fits, re-derived from our own campaigns.
//!
//! The paper: "We fit a logarithmic function to the empirical median
//! throughput (auto PHY rate) for different distances:
//! s_airplane(d) = 1e6×(−5.56×log2(d)+49) and
//! s_quadrocopter(d) = 1e6×(−10.5×log2(d)+73), with coefficient of
//! determination R² = 0.9 for the airplane scenario and 0.96 for the
//! quadrocopter one."
//!
//! This experiment fits the same model family to the medians of the
//! Figure 5 and Figure 7 campaigns. Through the shared [`CampaignStore`]
//! those campaigns execute once per `repro` run: when `fig5`/`fig7` ran
//! first, every cell requested here is a hit.

use skyferry_stats::quantile::median;
use skyferry_stats::regression::Log2Fit;
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// One platform's fit comparison.
#[derive(Debug, Clone, Copy)]
pub struct FitComparison {
    /// Fit over the simulated medians.
    pub ours: Log2Fit,
    /// The paper's coefficient of `log2(d)`, Mb/s.
    pub paper_a: f64,
    /// The paper's intercept, Mb/s.
    pub paper_b: f64,
    /// The paper's R².
    pub paper_r2: f64,
}

/// Fit both platforms.
pub fn simulate(cfg: &ReproConfig, store: &mut CampaignStore) -> (FitComparison, FitComparison) {
    let air_rows = super::fig5::simulate(cfg, store);
    let air_pts: Vec<(f64, f64)> = air_rows
        .iter()
        .map(|(d, s)| (*d, median(s).expect("non-empty")))
        .collect();
    let air = FitComparison {
        ours: Log2Fit::fit(&air_pts).expect("enough points"),
        paper_a: -5.56,
        paper_b: 49.0,
        paper_r2: 0.90,
    };

    let quad_rows = super::fig7::hover_rows(cfg, store);
    let quad_pts: Vec<(f64, f64)> = quad_rows
        .iter()
        .map(|(d, s)| (*d, median(s).expect("non-empty")))
        .collect();
    let quad = FitComparison {
        ours: Log2Fit::fit(&quad_pts).expect("enough points"),
        paper_a: -10.5,
        paper_b: 73.0,
        paper_r2: 0.96,
    };
    (air, quad)
}

/// Regenerate the Section 4 fit table.
pub fn run(cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
    let (air, quad) = simulate(cfg, store);
    let mut t = Table::new(vec![
        Column::text("platform"),
        Column::float("a (ours)", 2),
        Column::float("a (paper)", 2),
        Column::float("b (ours)", 1),
        Column::float("b (paper)", 1),
        Column::float("R2 (ours)", 2),
        Column::float("R2 (paper)", 2),
    ]);
    for (name, f) in [("airplane", &air), ("quadrocopter", &quad)] {
        t.push(vec![
            name.into(),
            f.ours.a.into(),
            f.paper_a.into(),
            f.ours.b.into(),
            f.paper_b.into(),
            f.ours.r_squared.into(),
            Value::Num(f.paper_r2),
        ]);
    }
    let mut r = ExperimentReport::new("fits", Fits.title());
    r.note(format!(
        "airplane: s(d) = {:.2}·log2(d) + {:.1} Mb/s, R²={:.2} (paper: −5.56, 49, 0.90)",
        air.ours.a, air.ours.b, air.ours.r_squared
    ));
    r.note(format!(
        "quadrocopter: s(d) = {:.2}·log2(d) + {:.1} Mb/s, R²={:.2} (paper: −10.5, 73, 0.96)",
        quad.ours.a, quad.ours.b, quad.ours.r_squared
    ));
    r.table("Fit comparison", t);
    r
}

/// Registry entry for the Section 4 fits.
pub struct Fits;

impl Experiment for Fits {
    fn id(&self) -> &'static str {
        "fits"
    }

    fn title(&self) -> &'static str {
        "Section 4 logarithmic fits of median throughput vs distance"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["airplane/autorate", "quadrocopter/autorate"]
    }

    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
        run(cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate_fresh(cfg: &ReproConfig) -> (FitComparison, FitComparison) {
        simulate(cfg, &mut CampaignStore::new(cfg.quick))
    }

    #[test]
    fn both_fits_are_decreasing_and_log_linear() {
        let (air, quad) = simulate_fresh(&ReproConfig::quick());
        assert!(air.ours.a < 0.0, "airplane slope {:.2}", air.ours.a);
        assert!(quad.ours.a < 0.0, "quad slope {:.2}", quad.ours.a);
        assert!(
            air.ours.r_squared > 0.7,
            "airplane R² {:.2} — medians not log-linear",
            air.ours.r_squared
        );
        assert!(
            quad.ours.r_squared > 0.7,
            "quad R² {:.2}",
            quad.ours.r_squared
        );
    }

    #[test]
    fn coefficients_in_paper_ballpark() {
        let (air, quad) = simulate_fresh(&ReproConfig::quick());
        // Shape reproduction: slopes within a factor band, intercepts in
        // tens of Mb/s.
        assert!(
            (-10.0..=-2.5).contains(&air.ours.a),
            "airplane a={:.2} (paper −5.56)",
            air.ours.a
        );
        assert!(
            (25.0..=70.0).contains(&air.ours.b),
            "airplane b={:.1} (paper 49)",
            air.ours.b
        );
        assert!(
            (-16.0..=-5.0).contains(&quad.ours.a),
            "quad a={:.2} (paper −10.5)",
            quad.ours.a
        );
        assert!(
            (45.0..=95.0).contains(&quad.ours.b),
            "quad b={:.1} (paper 73)",
            quad.ours.b
        );
    }

    #[test]
    fn quad_slope_steeper_than_airplane() {
        let (air, quad) = simulate_fresh(&ReproConfig::quick());
        assert!(
            quad.ours.a < air.ours.a,
            "quad {:.2} vs airplane {:.2}",
            quad.ours.a,
            air.ours.a
        );
    }

    #[test]
    fn reuses_fig5_and_fig7_campaigns_entirely() {
        // After fig5 and fig7 populate the store, the fits experiment
        // must not simulate a single new cell.
        let cfg = ReproConfig::quick();
        let store = &mut CampaignStore::new(cfg.quick);
        super::super::fig5::simulate(&cfg, store);
        super::super::fig7::hover_rows(&cfg, store);
        let misses_before = store.misses();
        simulate(&cfg, store);
        assert_eq!(store.misses(), misses_before, "fits must be all hits");
        assert!(store.hits() >= 20, "16 airplane + 4 quad cells reused");
    }
}
