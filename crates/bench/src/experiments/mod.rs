//! The experiment engine: one module per reproduced table/figure, one
//! [`Experiment`] impl per module, all discovered through [`REGISTRY`].
//!
//! Adding an experiment is one trait impl plus one registry entry — the
//! CLI usage text, `--list`, dependency reporting and the run loop all
//! derive from the registry.

pub mod ablations;
pub mod extensions;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fits;
pub mod fleet;
pub mod mdata;
pub mod table1;

use std::fmt;

use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// One reproduced table/figure.
///
/// Implementations are stateless unit structs; all run state lives in the
/// [`ReproConfig`] and the shared [`CampaignStore`].
pub trait Experiment: Sync {
    /// Short id, e.g. `fig5`.
    fn id(&self) -> &'static str;
    /// Human title (what the paper artefact shows).
    fn title(&self) -> &'static str;
    /// The shared-campaign ids this experiment draws from (empty for
    /// purely analytic experiments). Reported by `repro --list`.
    fn deps(&self) -> &'static [&'static str];
    /// Regenerate the artefact.
    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport;
}

/// Every experiment, in paper order. The registry is the single source of
/// truth: the run loop, `--list` and the usage text all iterate it.
pub static REGISTRY: [&dyn Experiment; 13] = [
    &table1::Table1,
    &fig1::Fig1,
    &fig4::Fig4,
    &fig5::Fig5,
    &fig6::Fig6,
    &fig7::Fig7,
    &fig8::Fig8,
    &fig9::Fig9,
    &fits::Fits,
    &mdata::Mdata,
    &ablations::Ablations,
    &extensions::Extensions,
    &fleet::Fleet,
];

/// Typed lookup/run failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// No registered experiment has this id.
    UnknownId(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownId(id) => {
                write!(f, "unknown experiment '{id}' (known: ")?;
                for (i, e) in REGISTRY.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    f.write_str(e.id())?;
                }
                f.write_str(")")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// All registered ids in paper order.
pub fn ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.id()).collect()
}

/// Look an experiment up by id.
pub fn find(id: &str) -> Result<&'static dyn Experiment, ExperimentError> {
    REGISTRY
        .iter()
        .copied()
        .find(|e| e.id() == id)
        .ok_or_else(|| ExperimentError::UnknownId(id.to_string()))
}

/// Run one experiment by id against a shared store.
pub fn run(
    id: &str,
    cfg: &ReproConfig,
    store: &mut CampaignStore,
) -> Result<ExperimentReport, ExperimentError> {
    find(id).map(|e| e.run(cfg, store))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_match_reports() {
        let ids = ids();
        assert_eq!(ids.len(), REGISTRY.len());
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b, "duplicate experiment id");
            }
        }
    }

    #[test]
    fn find_resolves_every_registered_id() {
        for e in REGISTRY {
            assert_eq!(find(e.id()).unwrap().id(), e.id());
        }
    }

    #[test]
    fn unknown_id_is_a_typed_error_listing_known_ids() {
        let err = match find("nope") {
            Err(e) => e,
            Ok(_) => panic!("'nope' must not resolve"),
        };
        assert_eq!(err, ExperimentError::UnknownId("nope".into()));
        let msg = err.to_string();
        assert!(msg.contains("unknown experiment 'nope'"));
        assert!(msg.contains("fig5"));
        assert!(msg.contains("extensions"));
    }

    #[test]
    fn titles_and_deps_are_present() {
        for e in REGISTRY {
            assert!(!e.title().is_empty(), "{} needs a title", e.id());
            for dep in e.deps() {
                assert!(!dep.is_empty());
            }
        }
    }
}
