//! One module per reproduced table/figure.

pub mod ablations;
pub mod extensions;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fits;
pub mod mdata;
pub mod table1;

use crate::report::{ExperimentReport, ReproConfig};

/// All experiment ids in paper order.
pub const ALL: [&str; 12] = [
    "table1",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fits",
    "mdata",
    "ablations",
    "extensions",
];

/// Run one experiment by id.
pub fn run(id: &str, cfg: &ReproConfig) -> Option<ExperimentReport> {
    let report = match id {
        "table1" => table1::run(cfg),
        "fig1" => fig1::run(cfg),
        "fig4" => fig4::run(cfg),
        "fig5" => fig5::run(cfg),
        "fig6" => fig6::run(cfg),
        "fig7" => fig7::run(cfg),
        "fig8" => fig8::run(cfg),
        "fig9" => fig9::run(cfg),
        "fits" => fits::run(cfg),
        "mdata" => mdata::run(cfg),
        "ablations" => ablations::run(cfg),
        "extensions" => extensions::run(cfg),
        _ => return None,
    };
    Some(report)
}
