//! Figure 1 — experimental measurements of transmitted data vs time.
//!
//! "One UAV is originally 80 m away from another hovering UAV. It may
//! either immediately send 20 MB of data (case 'd = 80 m'), or transmit
//! while moving closer ('moving'), or move closer to the hovering UAV and
//! transmit only after reaching the new position (d). Here, waiting to
//! transmit at a distance of d = 60 m outperforms other strategies."
//!
//! The reproduction runs the full PHY/MAC/rate-control stack for the five
//! strategies and reports (a) cumulative megabytes at one-second marks
//! (the plotted curves), (b) completion times, and (c) the crossover data
//! volume between the d = 80 m and d = 60 m strategies (≈ 15 MB in the
//! paper).

use skyferry_net::campaign::{run_transfer, CampaignConfig, ControllerKind};
use skyferry_net::profile::MotionProfile;
use skyferry_net::transfer::TransferRecord;
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::parallel::par_map_indexed;
use skyferry_sim::time::{SimDuration, SimTime};
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;
use skyferry_units::MetersPerSec;

/// Batch size of the experiment, bytes.
pub const MDATA_BYTES: u64 = 20_000_000;
/// Encounter distance, metres.
pub const D0_M: f64 = 80.0;
/// Cruise speed of the approaching quadrocopter, m/s.
pub const APPROACH_SPEED_MPS: f64 = 4.5;
/// Post-arrival stabilization/recovery window of the move-and-transmit
/// strategy, seconds: deceleration + attitude settling + the rate
/// controller recovering from its in-motion statistics. Matches the
/// analytic layer's `EvalConfig::post_motion_recovery_s`.
pub const MOVING_STABILIZATION_S: f64 = 5.0;

/// One strategy's simulated outcome.
#[derive(Debug, Clone)]
pub struct Fig1Strategy {
    /// Legend label ("d=60", "moving", …).
    pub label: String,
    /// Cumulative delivery record of the median replication.
    pub record: TransferRecord,
    /// Completion time, seconds (if completed within the horizon).
    pub completion_s: Option<f64>,
}

/// Run the five Figure 1 strategies and return their records.
///
/// The `strategies × replications` grid is one flat task pool on the
/// deterministic workers: every replication derives its RNG substreams
/// from `(campaign seed, rep)` alone, so output order and content are
/// identical at any thread count. Each strategy then reports its
/// *median* replication — the one with the median completion time
/// (unfinished runs sort last) — so the plotted curve is a typical
/// channel realisation rather than whatever replication 0 drew.
pub fn simulate(cfg: &ReproConfig) -> Vec<Fig1Strategy> {
    let campaign = CampaignConfig {
        preset: ChannelPreset::quadrocopter(MetersPerSec::new(0.0)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(cfg.secs(240)),
        seed: cfg.seed,
    };
    // (label, profile, hold-fire-until-settled) per strategy; the last
    // one is move-and-transmit to the 20 m safety minimum.
    let mut strategies: Vec<(String, MotionProfile, bool)> = [20.0, 40.0, 60.0, 80.0]
        .iter()
        .map(|&d| {
            let (profile, hold) = if (d - D0_M).abs() < 1e-9 {
                (MotionProfile::hover(D0_M), false)
            } else {
                (MotionProfile::approach(D0_M, APPROACH_SPEED_MPS, d), true)
            };
            (format!("d={d:.0}"), profile, hold)
        })
        .collect();
    strategies.push((
        "moving".into(),
        MotionProfile::approach(D0_M, APPROACH_SPEED_MPS, 20.0)
            .with_stabilization(MOVING_STABILIZATION_S),
        false,
    ));
    let reps = cfg.reps(6) as usize;
    let outcomes = par_map_indexed(strategies.len() * reps, |k| {
        let (label, profile, hold) = &strategies[k / reps];
        let rep = (k % reps) as u64;
        let res = run_transfer(&campaign, *profile, MDATA_BYTES, *hold, label.clone(), rep);
        Fig1Strategy {
            label: label.clone(),
            completion_s: res.completion.map(|t| t.as_secs_f64()),
            record: res.record,
        }
    });
    outcomes
        .chunks(reps)
        .map(|runs| {
            let mut order: Vec<usize> = (0..runs.len()).collect();
            // Unfinished replications sort after every finished one;
            // ties break on replication index, keeping selection stable.
            order.sort_by(|&a, &b| {
                let key = |i: usize| runs[i].completion_s.unwrap_or(f64::INFINITY);
                key(a).partial_cmp(&key(b)).expect("no NaN").then(a.cmp(&b))
            });
            runs[order[(runs.len() - 1) / 2]].clone()
        })
        .collect()
}

/// Regenerate Figure 1.
pub fn run(cfg: &ReproConfig) -> ExperimentReport {
    let strategies = simulate(cfg);

    // Curve table: MB delivered at 1 s marks up to the slowest completion.
    let horizon = strategies
        .iter()
        .filter_map(|s| s.completion_s)
        .fold(10.0_f64, f64::max)
        .ceil() as u64;
    let mut columns = vec![Column::int("t (s)").left()];
    columns.extend(
        strategies
            .iter()
            .map(|s| Column::float(format!("{} (MB)", s.label), 1)),
    );
    let mut curve = Table::new(columns);
    for t in 0..=horizon.min(120) {
        let mut cells = vec![Value::Int(t as i64)];
        for s in &strategies {
            let mb = s.record.bytes_at(SimTime::from_secs(t)) as f64 / 1e6;
            cells.push(Value::Num(mb));
        }
        curve.push(cells);
    }

    let mut completion = Table::new(vec![
        Column::text("strategy"),
        Column::float("completion (s)", 1),
        Column::float("delivered (MB)", 1),
    ]);
    for s in &strategies {
        completion.push(vec![
            s.label.as_str().into(),
            s.completion_s.map_or_else(|| "dnf".into(), Value::Num),
            Value::Num(s.record.total_bytes() as f64 / 1e6),
        ]);
    }

    let mut r = ExperimentReport::new("fig1", Fig1.title());

    // Crossover between "move to 60 m first" and "transmit at 80 m now".
    let d60 = strategies.iter().find(|s| s.label == "d=60").expect("d=60");
    let d80 = strategies.iter().find(|s| s.label == "d=80").expect("d=80");
    if let Some(cross) = d60.record.crossover_bytes(&d80.record, 500_000) {
        r.note(format!(
            "crossover: moving to 60 m beats transmitting at 80 m for batches > {:.1} MB (paper: ≈15 MB)",
            cross as f64 / 1e6
        ));
    } else {
        r.note("no d=60 vs d=80 crossover within the batch (paper: ≈15 MB)".to_string());
    }

    // Ranking notes.
    let best = strategies
        .iter()
        .filter(|s| s.completion_s.is_some())
        .min_by(|a, b| a.completion_s.partial_cmp(&b.completion_s).expect("finite"));
    if let Some(best) = best {
        r.note(format!(
            "fastest strategy for 20 MB: {} ({:.1} s) — paper: d=60 m",
            best.label,
            best.completion_s.expect("filtered"),
        ));
    }
    let moving = strategies
        .iter()
        .find(|s| s.label == "moving")
        .expect("moving");
    // The paper's dominance claim: hover-and-transmit (at a sensibly
    // chosen distance) beats transmitting on the move. Compare against
    // the repositioning strategies d ≤ 60 m; at our calibrated *median*
    // rates the d = 80 m case is bandwidth-starved and slower than
    // everything (the paper's Figure 1 run enjoyed an unusually good
    // channel at 80 m — see EXPERIMENTS.md).
    let moving_beaten = strategies
        .iter()
        .filter(|s| matches!(s.label.as_str(), "d=20" | "d=40" | "d=60"))
        .all(|s| match (s.completion_s, moving.completion_s) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            _ => false,
        });
    r.note(format!(
        "move-and-transmit dominated by the repositioning hover strategies: {} (paper: yes)",
        if moving_beaten { "yes" } else { "no" }
    ));

    r.table("Cumulative delivered data (Figure 1 curves)", curve);
    r.table("Completion times", completion);
    r
}

/// Registry entry for Figure 1.
pub struct Fig1;

impl Experiment for Fig1 {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn title(&self) -> &'static str {
        "Transmitted data vs time for the five delivery strategies (20 MB from 80 m)"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cfg: &ReproConfig, _store: &mut CampaignStore) -> ExperimentReport {
        run(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_strategies_present() {
        let r = run(&ReproConfig::quick());
        let text = r.render();
        for label in ["d=20", "d=40", "d=60", "d=80", "moving"] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
    }

    #[test]
    fn full_batch_delivered_by_hover_strategies() {
        let strategies = simulate(&ReproConfig::quick());
        for s in strategies.iter().filter(|s| s.label.starts_with("d=")) {
            assert!(s.completion_s.is_some(), "{} did not complete", s.label);
            assert_eq!(s.record.total_bytes(), MDATA_BYTES, "{}", s.label);
        }
    }

    #[test]
    fn held_strategies_stay_silent_while_shipping() {
        let strategies = simulate(&ReproConfig::quick());
        let d40 = strategies.iter().find(|s| s.label == "d=40").unwrap();
        let ship = (80.0 - 40.0) / APPROACH_SPEED_MPS;
        let before = d40.record.bytes_at(SimTime::from_secs_f64(ship * 0.95));
        assert_eq!(before, 0, "d=40 transmitted during shipping");
    }

    #[test]
    fn moving_transmits_early_but_loses_to_best_repositioning() {
        let strategies = simulate(&ReproConfig::quick());
        let moving = strategies.iter().find(|s| s.label == "moving").unwrap();
        // moving delivers something almost immediately…
        let early = moving.record.bytes_at(SimTime::from_secs(4));
        assert!(early > 0, "moving strategy should start immediately");
        // …but the paper's qualitative claim holds: hover-and-transmit at
        // a well-chosen distance still completes first. (Our calibrated
        // median channel puts that distance at 40 m rather than the
        // paper's 60 m — see the fig1 findings notes.)
        let m = moving.completion_s.expect("moving completes");
        let best_repositioning = strategies
            .iter()
            .filter(|s| matches!(s.label.as_str(), "d=20" | "d=40" | "d=60"))
            .filter_map(|s| s.completion_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_repositioning <= m * 1.02,
            "best repositioning {best_repositioning:.1}s vs moving {m:.1}s"
        );
        // And transmitting immediately from 80 m is the slowest option.
        let d80 = strategies.iter().find(|s| s.label == "d=80").unwrap();
        let worst = d80.completion_s.expect("d=80 completes");
        assert!(
            worst >= m && worst >= best_repositioning,
            "d=80 should be slowest: {worst:.1}s"
        );
    }
}
