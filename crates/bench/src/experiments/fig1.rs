//! Figure 1 — experimental measurements of transmitted data vs time.
//!
//! "One UAV is originally 80 m away from another hovering UAV. It may
//! either immediately send 20 MB of data (case 'd = 80 m'), or transmit
//! while moving closer ('moving'), or move closer to the hovering UAV and
//! transmit only after reaching the new position (d). Here, waiting to
//! transmit at a distance of d = 60 m outperforms other strategies."
//!
//! The reproduction runs the full PHY/MAC/rate-control stack for the five
//! strategies and reports (a) cumulative megabytes at one-second marks
//! (the plotted curves), (b) completion times, and (c) the crossover data
//! volume between the d = 80 m and d = 60 m strategies (≈ 15 MB in the
//! paper).

use skyferry_net::campaign::{run_transfer, CampaignConfig, ControllerKind};
use skyferry_net::profile::MotionProfile;
use skyferry_net::transfer::TransferRecord;
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::time::{SimDuration, SimTime};
use skyferry_stats::table::TextTable;

use crate::report::{ExperimentReport, ReproConfig};

/// Batch size of the experiment, bytes.
pub const MDATA_BYTES: u64 = 20_000_000;
/// Encounter distance, metres.
pub const D0_M: f64 = 80.0;
/// Cruise speed of the approaching quadrocopter, m/s.
pub const APPROACH_SPEED_MPS: f64 = 4.5;
/// Post-arrival stabilization/recovery window of the move-and-transmit
/// strategy, seconds: deceleration + attitude settling + the rate
/// controller recovering from its in-motion statistics. Matches the
/// analytic layer's `EvalConfig::post_motion_recovery_s`.
pub const MOVING_STABILIZATION_S: f64 = 5.0;

/// One strategy's simulated outcome.
#[derive(Debug, Clone)]
pub struct Fig1Strategy {
    /// Legend label ("d=60", "moving", …).
    pub label: String,
    /// Cumulative delivery record (median replication).
    pub record: TransferRecord,
    /// Completion time, seconds (if completed within the horizon).
    pub completion_s: Option<f64>,
}

/// Run the five Figure 1 strategies and return their records.
pub fn simulate(cfg: &ReproConfig) -> Vec<Fig1Strategy> {
    let campaign = CampaignConfig {
        preset: ChannelPreset::quadrocopter(0.0),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(cfg.secs(240)),
        seed: cfg.seed,
    };
    let mut out = Vec::new();
    for &d in &[20.0, 40.0, 60.0, 80.0] {
        let label = format!("d={d:.0}");
        let (profile, hold) = if (d - D0_M).abs() < 1e-9 {
            (MotionProfile::hover(D0_M), false)
        } else {
            (MotionProfile::approach(D0_M, APPROACH_SPEED_MPS, d), true)
        };
        let res = run_transfer(&campaign, profile, MDATA_BYTES, hold, label.clone(), 0);
        out.push(Fig1Strategy {
            label,
            completion_s: res.completion.map(|t| t.as_secs_f64()),
            record: res.record,
        });
    }
    // The moving strategy: transmit from t = 0 while approaching to the
    // 20 m safety minimum.
    let res = run_transfer(
        &campaign,
        MotionProfile::approach(D0_M, APPROACH_SPEED_MPS, 20.0)
            .with_stabilization(MOVING_STABILIZATION_S),
        MDATA_BYTES,
        false,
        "moving",
        0,
    );
    out.push(Fig1Strategy {
        label: "moving".into(),
        completion_s: res.completion.map(|t| t.as_secs_f64()),
        record: res.record,
    });
    out
}

/// Regenerate Figure 1.
pub fn run(cfg: &ReproConfig) -> ExperimentReport {
    let strategies = simulate(cfg);

    // Curve table: MB delivered at 1 s marks up to the slowest completion.
    let horizon = strategies
        .iter()
        .filter_map(|s| s.completion_s)
        .fold(10.0_f64, f64::max)
        .ceil() as u64;
    let mut headers: Vec<String> = vec!["t (s)".into()];
    headers.extend(strategies.iter().map(|s| format!("{} (MB)", s.label)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut curve = TextTable::new(&header_refs);
    for t in 0..=horizon.min(120) {
        let mut cells = vec![format!("{t}")];
        for s in &strategies {
            let mb = s.record.bytes_at(SimTime::from_secs(t)) as f64 / 1e6;
            cells.push(format!("{mb:.1}"));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        curve.row(&refs);
    }

    let mut completion = TextTable::new(&["strategy", "completion (s)", "delivered (MB)"]);
    for s in &strategies {
        completion.row(&[
            &s.label,
            &s.completion_s
                .map(|c| format!("{c:.1}"))
                .unwrap_or_else(|| "dnf".into()),
            &format!("{:.1}", s.record.total_bytes() as f64 / 1e6),
        ]);
    }

    let mut r = ExperimentReport::new(
        "fig1",
        "Transmitted data vs time for the five delivery strategies (20 MB from 80 m)",
    );

    // Crossover between "move to 60 m first" and "transmit at 80 m now".
    let d60 = strategies.iter().find(|s| s.label == "d=60").expect("d=60");
    let d80 = strategies.iter().find(|s| s.label == "d=80").expect("d=80");
    if let Some(cross) = d60.record.crossover_bytes(&d80.record, 500_000) {
        r.note(format!(
            "crossover: moving to 60 m beats transmitting at 80 m for batches > {:.1} MB (paper: ≈15 MB)",
            cross as f64 / 1e6
        ));
    } else {
        r.note("no d=60 vs d=80 crossover within the batch (paper: ≈15 MB)".to_string());
    }

    // Ranking notes.
    let best = strategies
        .iter()
        .filter(|s| s.completion_s.is_some())
        .min_by(|a, b| a.completion_s.partial_cmp(&b.completion_s).expect("finite"));
    if let Some(best) = best {
        r.note(format!(
            "fastest strategy for 20 MB: {} ({:.1} s) — paper: d=60 m",
            best.label,
            best.completion_s.expect("filtered"),
        ));
    }
    let moving = strategies
        .iter()
        .find(|s| s.label == "moving")
        .expect("moving");
    // The paper's dominance claim: hover-and-transmit (at a sensibly
    // chosen distance) beats transmitting on the move. Compare against
    // the repositioning strategies d ≤ 60 m; at our calibrated *median*
    // rates the d = 80 m case is bandwidth-starved and slower than
    // everything (the paper's Figure 1 run enjoyed an unusually good
    // channel at 80 m — see EXPERIMENTS.md).
    let moving_beaten = strategies
        .iter()
        .filter(|s| matches!(s.label.as_str(), "d=20" | "d=40" | "d=60"))
        .all(|s| match (s.completion_s, moving.completion_s) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            _ => false,
        });
    r.note(format!(
        "move-and-transmit dominated by the repositioning hover strategies: {} (paper: yes)",
        if moving_beaten { "yes" } else { "no" }
    ));

    r.table("Cumulative delivered data (Figure 1 curves)", curve);
    r.table("Completion times", completion);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_strategies_present() {
        let r = run(&ReproConfig::quick());
        let text = r.render();
        for label in ["d=20", "d=40", "d=60", "d=80", "moving"] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
    }

    #[test]
    fn full_batch_delivered_by_hover_strategies() {
        let strategies = simulate(&ReproConfig::quick());
        for s in strategies.iter().filter(|s| s.label.starts_with("d=")) {
            assert!(s.completion_s.is_some(), "{} did not complete", s.label);
            assert_eq!(s.record.total_bytes(), MDATA_BYTES, "{}", s.label);
        }
    }

    #[test]
    fn held_strategies_stay_silent_while_shipping() {
        let strategies = simulate(&ReproConfig::quick());
        let d40 = strategies.iter().find(|s| s.label == "d=40").unwrap();
        let ship = (80.0 - 40.0) / APPROACH_SPEED_MPS;
        let before = d40.record.bytes_at(SimTime::from_secs_f64(ship * 0.95));
        assert_eq!(before, 0, "d=40 transmitted during shipping");
    }

    #[test]
    fn moving_transmits_early_but_finishes_late() {
        let strategies = simulate(&ReproConfig::quick());
        let moving = strategies.iter().find(|s| s.label == "moving").unwrap();
        let d60 = strategies.iter().find(|s| s.label == "d=60").unwrap();
        // moving delivers something before d=60's shipping completes…
        let early = moving.record.bytes_at(SimTime::from_secs(4));
        assert!(early > 0, "moving strategy should start immediately");
        // …but completes no sooner than d=60 (Figure 1's dominance).
        match (moving.completion_s, d60.completion_s) {
            (Some(m), Some(h)) => assert!(m >= h * 0.95, "moving={m:.1}s d60={h:.1}s"),
            (None, Some(_)) => {} // moving didn't even finish: dominated
            other => panic!("unexpected completions: {other:?}"),
        }
    }
}
