//! Ablation studies over the reproduction's design choices.
//!
//! Not a paper artefact — these tables justify the model pieces by
//! switching them off one at a time:
//!
//! 1. **A-MPDU aggregation size** — why the paper enables aggregation;
//! 2. **STBC vs plain single-stream** — why MCS 1–3 carry STBC;
//! 3. **Host fill rate** — the Gumstix bottleneck's reach;
//! 4. **Rate controllers** — ARF vs Minstrel-HT vs genie-fixed;
//! 5. **Channel harshness** — calibrated aerial fading vs a calm
//!    "genie" channel (what the 802.11n datasheet would promise);
//! 6. **Optimizer grid** — dopt stability vs grid resolution;
//! 7. **Failure law** — exponential vs Weibull wear-out;
//! 8. **Mixed vs pure strategies** — the §7 extension's payoff.
//!
//! The campaign-shaped ablations (host rate, controllers, channel
//! harshness) and the Eq. (2) solutions route through the shared
//! [`CampaignStore`], so any cell or scenario also touched by another
//! experiment is simulated only once per `repro` run.

use skyferry_core::failure::{FailureSpec, WeibullFailure};
use skyferry_core::mixed::{optimize_mixed, MixedConfig};
use skyferry_core::scenario::Scenario;
use skyferry_core::utility::utility;
use skyferry_mac::link::{LinkConfig, LinkState};
use skyferry_mac::queue::TxQueue;

use skyferry_net::campaign::{CampaignConfig, ControllerKind};
use skyferry_phy::mcs::Mcs;
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::parallel::run_replications;
use skyferry_sim::prelude::*;
use skyferry_stats::quantile::median;
use skyferry_stats::table::{Column, Table, Value};
use skyferry_units::{Meters, MetersPerSec};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// Run a saturated link with a custom `LinkConfig` and return goodput.
fn goodput_with(
    config: LinkConfig,
    controller: Box<dyn skyferry_mac::rate::RateController>,
    d_m: f64,
    v_mps: f64,
    secs: f64,
    seed: u64,
) -> f64 {
    let seeds = SeedStream::new(seed);
    let mut link = LinkState::new(config, controller, seeds.rng("fading"), seeds.rng("link"));
    let mut queue = TxQueue::saturated(config.preset.host_fill_rate_bps, 1 << 17);
    let mut now = SimTime::ZERO;
    let horizon = SimTime::from_secs_f64(secs);
    let mut bytes = 0u64;
    while now < horizon {
        let out = link.execute_txop(now, d_m, v_mps, &mut queue);
        bytes += out.delivered_bytes as u64;
        now += out.airtime;
    }
    bytes as f64 * 8.0 / secs / 1e6
}

/// Median goodput over `reps` replications of [`goodput_with`], run on
/// the deterministic pool. Per-replication link seeds derive from
/// `(seed, label, rep)`, so the result is independent of thread count.
// allow: the ablation grid varies each knob independently; bundling them
// into a struct would hide which axis a row sweeps.
#[allow(clippy::too_many_arguments)]
fn goodput_replicated(
    config: LinkConfig,
    controller: ControllerKind,
    d_m: f64,
    v_mps: f64,
    secs: f64,
    seed: u64,
    label: &str,
    reps: u64,
) -> f64 {
    let samples = run_replications(seed, label, reps, |_rep, mut rng| {
        goodput_with(
            config,
            controller.build(&config.preset),
            d_m,
            v_mps,
            secs,
            rng.next_u64(),
        )
    });
    median(&samples).expect("non-empty replication set")
}

/// Ablation 1: aggregation size.
pub fn ampdu_table(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(vec![
        Column::text("max A-MPDU subframes"),
        Column::float("goodput @20 m (Mb/s)", 1),
    ]);
    let preset = ChannelPreset::quadrocopter(MetersPerSec::new(0.0));
    for n in [1usize, 2, 4, 8, 14, 32, 64] {
        let link_cfg = LinkConfig {
            max_ampdu_subframes: n,
            ..LinkConfig::paper_default(preset)
        };
        let g = goodput_replicated(
            link_cfg,
            ControllerKind::Fixed(Mcs::new(2)),
            20.0,
            0.0,
            cfg.secs(10) as f64,
            cfg.seed,
            "ampdu",
            cfg.reps(4),
        );
        t.row_f64(&format!("{n}"), &[g]);
    }
    t
}

/// Ablation 2: STBC on/off across distances.
pub fn stbc_table(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(vec![
        Column::text("d (m)"),
        Column::float("STBC on (Mb/s)", 1),
        Column::float("STBC off (Mb/s)", 1),
    ]);
    let preset = ChannelPreset::airplane(MetersPerSec::new(20.0));
    for d in [60.0, 120.0, 180.0] {
        let mut row = Vec::new();
        for stbc in [true, false] {
            let link_cfg = LinkConfig {
                use_stbc: stbc,
                ..LinkConfig::paper_default(preset)
            };
            row.push(goodput_replicated(
                link_cfg,
                ControllerKind::Fixed(Mcs::new(1)),
                d,
                20.0,
                cfg.secs(12) as f64,
                cfg.seed + 1,
                "stbc",
                cfg.reps(12),
            ));
        }
        t.row_f64(&format!("{d:.0}"), &row);
    }
    t
}

/// Ablation 3: host fill rate (campaign cells via the shared store).
pub fn host_rate_table(cfg: &ReproConfig, store: &mut CampaignStore) -> Table {
    let mut t = Table::new(vec![
        Column::text("host rate (Mb/s)"),
        Column::float("goodput @15 m (Mb/s)", 1),
    ]);
    for rate in [8.0, 16.0, 32.0, 48.0, 100.0, 400.0] {
        let mut preset = ChannelPreset::quadrocopter(MetersPerSec::new(0.0));
        preset.host_fill_rate_bps = rate * 1e6;
        let c = CampaignConfig {
            preset,
            controller: ControllerKind::Arf,
            duration: SimDuration::from_secs(cfg.secs(12)),
            seed: cfg.seed + 2,
        };
        let s = store.samples(&c, 15.0, cfg.reps(4));
        t.row_f64(&format!("{rate:.0}"), &[median(&s).expect("non-empty")]);
    }
    t
}

/// Ablation 4: rate controllers at three distances.
pub fn controller_table(cfg: &ReproConfig, store: &mut CampaignStore) -> Table {
    let mut t = Table::new(vec![
        Column::text("d (m)"),
        Column::float("arf", 1),
        Column::float("minstrel", 1),
        Column::float("best fixed", 1),
    ]);
    let preset = ChannelPreset::airplane(MetersPerSec::new(20.0));
    for d in [40.0, 120.0, 220.0] {
        let mut cells = Vec::new();
        for kind in [ControllerKind::Arf, ControllerKind::MinstrelHt] {
            let c = CampaignConfig {
                preset,
                controller: kind,
                duration: SimDuration::from_secs(cfg.secs(16)),
                seed: cfg.seed + 3,
            };
            let s = store.samples(&c, d, cfg.reps(4));
            cells.push(median(&s).expect("non-empty"));
        }
        let best = [1u8, 2, 8]
            .iter()
            .map(|&m| {
                let c = CampaignConfig {
                    preset,
                    controller: ControllerKind::Fixed(Mcs::new(m)),
                    duration: SimDuration::from_secs(cfg.secs(16)),
                    seed: cfg.seed + 3,
                };
                let s = store.samples(&c, d, cfg.reps(4));
                median(&s).expect("non-empty")
            })
            .fold(0.0f64, f64::max);
        cells.push(best);
        t.row_f64(&format!("{d:.0}"), &cells);
    }
    t
}

/// Ablation 5: calibrated aerial channel vs a calm "genie" channel.
pub fn channel_harshness_table(cfg: &ReproConfig, store: &mut CampaignStore) -> Table {
    let mut t = Table::new(vec![
        Column::text("d (m)"),
        Column::float("calibrated aerial", 1),
        Column::float("calm genie channel", 1),
    ]);
    let aerial = ChannelPreset::airplane(MetersPerSec::new(20.0));
    let mut genie = aerial;
    genie.fading.k_factor_db = 30.0;
    genie.fading.k_min_db = 30.0;
    genie.fading.shadowing_sigma_db = 0.1;
    genie.fading.shadowing_speed_slope_db_per_mps = 0.0;
    genie.fading.k_speed_slope_db_per_mps = 0.0;
    for d in [40.0, 100.0, 200.0] {
        let mut cells = Vec::new();
        for preset in [aerial, genie] {
            let c = CampaignConfig {
                preset,
                controller: ControllerKind::Arf,
                duration: SimDuration::from_secs(cfg.secs(12)),
                seed: cfg.seed + 4,
            };
            let s = store.samples(&c, d, cfg.reps(4));
            cells.push(median(&s).expect("non-empty"));
        }
        t.row_f64(&format!("{d:.0}"), &cells);
    }
    t
}

/// Ablation 6: optimizer grid resolution (via a coarse manual scan).
pub fn optimizer_grid_table(store: &mut CampaignStore) -> Table {
    let mut t = Table::new(vec![
        Column::text("grid points"),
        Column::float("dopt (m)", 1),
        Column::float("U(dopt)", 5),
    ]);
    let s = Scenario::quadrocopter_baseline().with_mdata_mb(10.0);
    for points in [8usize, 32, 128, 1024] {
        // Manual grid at the given resolution.
        let (mut best_d, mut best_u) = (s.d_min_m, f64::NEG_INFINITY);
        for i in 0..points {
            let d = s.d_min_m + (s.d0_m - s.d_min_m) * i as f64 / (points - 1) as f64;
            let u = utility(&s, skyferry_units::Meters::new(d));
            if u > best_u {
                best_u = u;
                best_d = d;
            }
        }
        t.push(vec![
            format!("{points}").into(),
            Value::Num(best_d),
            Value::Num(best_u),
        ]);
    }
    let refined = store.optimum(&s);
    t.push(vec![
        "2048+golden (default)".into(),
        refined.d_opt.into(),
        refined.utility.into(),
    ]);
    t
}

/// Ablation 7: failure law — exponential vs Weibull wear-out.
pub fn failure_law_table(store: &mut CampaignStore) -> Table {
    let mut t = Table::new(vec![
        Column::text("failure law"),
        Column::float("dopt (m)", 1),
        Column::float("U(dopt)", 5),
    ]);
    let base = Scenario::quadrocopter_baseline().with_mdata_mb(10.0);
    let exp = store.optimum(&base.clone().with_rho(2.0e-3));
    t.push(vec![
        "exponential rho=2e-3".into(),
        exp.d_opt.into(),
        exp.utility.into(),
    ]);
    // Weibull with the same mean failure distance (Γ(1.5)·λ = 1/ρ) but
    // wear-out shape k = 2 and half the mission already flown.
    let lambda = 1.0 / 2.0e-3 / 0.886;
    for flown in [0.0, lambda / 2.0] {
        let mut s = base.clone();
        s.failure = FailureSpec::Weibull(WeibullFailure::new(
            Meters::new(lambda),
            2.0,
            Meters::new(flown),
        ));
        let o = store.optimum(&s);
        t.push(vec![
            format!("weibull k=2, flown {flown:.0} m").into(),
            o.d_opt.into(),
            o.utility.into(),
        ]);
    }
    t
}

/// Ablation 8: the §7 mixed-strategy extension's payoff.
pub fn mixed_strategy_table(store: &mut CampaignStore) -> Table {
    let mut t = Table::new(vec![
        Column::text("Mdata (MB)"),
        Column::float("pure U", 5),
        Column::float("mixed U", 5),
        Column::text("gain").right(),
    ]);
    for mb in [5.0, 15.0, 56.2] {
        let s = Scenario::quadrocopter_baseline().with_mdata_mb(mb);
        let pure = store.optimum(&s);
        let mixed = optimize_mixed(&s, &MixedConfig::for_speed(MetersPerSec::new(4.5)));
        t.push(vec![
            format!("{mb:.1}").into(),
            pure.utility.into(),
            mixed.utility.into(),
            format!("{:.3}x", mixed.utility / pure.utility).into(),
        ]);
    }
    t
}

/// Run all ablations.
pub fn run(cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
    let mut r = ExperimentReport::new("ablations", Ablations.title());
    r.table("1. A-MPDU aggregation size", ampdu_table(cfg));
    r.table("2. STBC vs plain single stream", stbc_table(cfg));
    r.table(
        "3. Host fill rate (Gumstix bottleneck)",
        host_rate_table(cfg, store),
    );
    r.table("4. Rate controllers", controller_table(cfg, store));
    r.table("5. Channel harshness", channel_harshness_table(cfg, store));
    r.table("6. Optimizer grid resolution", optimizer_grid_table(store));
    r.table("7. Failure law", failure_law_table(store));
    r.table("8. Mixed vs pure strategies", mixed_strategy_table(store));
    r.note("aggregation and the host cap dominate close-range goodput");
    r.note(
        "STBC pays off in the deep-fade regime at range; close in, both \
         branches ride the MCS cap and diversity is rarely exercised",
    );
    r.note("the calm-channel column is what a datasheet promises and the sky takes away");
    r
}

/// Registry entry for the ablation studies.
pub struct Ablations;

impl Experiment for Ablations {
    fn id(&self) -> &'static str {
        "ablations"
    }

    fn title(&self) -> &'static str {
        "Design-choice ablation studies"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[
            "quadrocopter/autorate",
            "airplane/autorate",
            "airplane/minstrel",
            "airplane/mcs1",
            "airplane/mcs2",
            "airplane/mcs8",
        ]
    }

    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
        run(cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> CampaignStore {
        CampaignStore::new(true)
    }

    fn first_col_values(t: &Table) -> Vec<f64> {
        // Parse the rendered table's second column back out for checks.
        t.render_text()
            .lines()
            .skip(2)
            .filter_map(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<f64>().ok())
            })
            .collect()
    }

    #[test]
    fn aggregation_monotone_gain() {
        let t = ampdu_table(&ReproConfig::quick());
        let g = first_col_values(&t);
        assert_eq!(g.len(), 7);
        assert!(
            g[4] > 1.6 * g[0],
            "14-frame A-MPDU must far outperform no aggregation: {g:?}"
        );
        // Diminishing returns beyond the default.
        assert!(g[6] < 1.5 * g[4], "{g:?}");
    }

    #[test]
    fn stbc_pays_off_in_the_deep_fade_regime() {
        let t = stbc_table(&ReproConfig::quick());
        let text = t.render_text();
        let rows: Vec<Vec<f64>> = text
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .filter_map(|v| v.parse().ok())
                    .collect()
            })
            .collect();
        // At 60 m the mean SNR clears the MCS-1 threshold with margin:
        // both branches ride the rate cap and diversity is rarely
        // exercised, so the two columns stay within noise of each other.
        let near = &rows[0];
        assert!(
            near[1] > 0.75 * near[2] && near[2] > 0.55 * near[1],
            "near-range columns should be comparable: {near:?}"
        );
        // At 180 m the link lives in the fade dips: diversity prunes the
        // outages and STBC wins clearly.
        let far = &rows[2];
        assert!(
            far[1] > 1.05 * far[2],
            "STBC should win in the deep-fade regime: {far:?}"
        );
        // And the relative gain grows with distance.
        let gain_near = near[1] / near[2];
        let gain_far = far[1] / far[2];
        assert!(
            gain_far > gain_near,
            "diversity gain should grow with distance: {rows:?}"
        );
    }

    #[test]
    fn host_rate_saturates() {
        let t = host_rate_table(&ReproConfig::quick(), &mut fresh());
        let g = first_col_values(&t);
        // Goodput grows with the host rate then saturates at the radio's
        // own limit.
        assert!(g[1] > g[0], "{g:?}");
        assert!((g[5] - g[4]).abs() < 0.35 * g[4].max(1.0), "{g:?}");
    }

    #[test]
    fn genie_channel_embarrasses_the_sky() {
        let t = channel_harshness_table(&ReproConfig::quick(), &mut fresh());
        let text = t.render_text();
        let rows: Vec<Vec<f64>> = text
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .filter_map(|v| v.parse().ok())
                    .collect()
            })
            .collect();
        for r in &rows {
            assert!(r[2] >= r[1] * 0.95, "genie lost at d={}: {r:?}", r[0]);
        }
        // At 40 m both channels saturate near the MCS cap, so the gap is
        // modest; from 100 m out the harsh channel's tax is large (the
        // Section 3.1 story).
        assert!(rows[1][2] > 1.2 * rows[1][1], "{rows:?}");
        assert!(rows[2][2] > 1.2 * rows[2][1], "{rows:?}");
    }

    #[test]
    fn optimizer_grid_converges() {
        let t = optimizer_grid_table(&mut fresh());
        let text = t.render_text();
        let dopts: Vec<f64> = text
            .lines()
            .skip(2)
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                cols[cols.len() - 2].parse().ok()
            })
            .collect();
        let finest = dopts[dopts.len() - 1];
        assert!((dopts[3] - finest).abs() < 1.0, "{dopts:?}");
    }

    #[test]
    fn weibull_wearout_transmits_sooner() {
        let t = failure_law_table(&mut fresh());
        let text = t.render_text();
        let dopts: Vec<f64> = text
            .lines()
            .skip(2)
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                cols[cols.len() - 2].parse().ok()
            })
            .collect();
        // Mid-mission wear-out (row 3) must not command a deeper
        // reposition than the fresh airframe (row 2).
        assert!(dopts[2] >= dopts[1] - 1.0, "{dopts:?}");
    }

    #[test]
    fn mixed_gain_is_at_least_one() {
        let t = mixed_strategy_table(&mut fresh());
        let text = t.render_text();
        for line in text.lines().skip(2) {
            let gain: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(gain >= 0.999, "mixed lost: {line}");
        }
    }
}
