//! Figure 4 — GPS traces of the two platforms.
//!
//! (a) two airplanes shuttling between waypoints, relative distances
//! 20–400 m, altitudes ≈ 80 / 100 m, relative speeds 15–26 m/s;
//! (b) two quadrocopters hovering at 10 m altitude at 20–80 m separation.
//!
//! The reproduction flies both missions with the autopilot + GPS models
//! and reports trace statistics: separation ranges, altitude bands, and
//! the relative-speed distribution of the airplane encounter (which must
//! land in the paper's 15–26 m/s window).

use skyferry_geo::vector::Vec3;
use skyferry_geo::waypoint::{FlightPlan, Waypoint};
use skyferry_sim::parallel::par_map;
use skyferry_sim::rng::SeedStream;
use skyferry_sim::time::SimTime;
use skyferry_stats::summary::Summary;
use skyferry_stats::table::{Column, Table};
use skyferry_uav::autopilot::Autopilot;
use skyferry_uav::gps::{GpsConfig, GpsSensor};
use skyferry_uav::kinematics::UavKinematics;
use skyferry_uav::platform::PlatformSpec;
use skyferry_uav::wind::{WindConfig, WindField};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;
use skyferry_units::MetersPerSec;

/// Control-loop step, seconds.
const DT: f64 = 0.1;

/// One recorded trace sample.
#[derive(Debug, Clone, Copy)]
pub struct TraceSample {
    /// Simulation time, seconds.
    pub t_s: f64,
    /// GPS fix of UAV 1 (ENU metres).
    pub fix1: Vec3,
    /// GPS fix of UAV 2 (ENU metres).
    pub fix2: Vec3,
    /// True relative speed, m/s.
    pub relative_speed_mps: f64,
}

/// Fly the airplane shuttle mission and return the GPS trace.
pub fn airplane_trace(cfg: &ReproConfig, duration_s: f64) -> Vec<TraceSample> {
    let seeds = SeedStream::new(cfg.seed);
    let spec = PlatformSpec::airplane();
    // Two aircraft shuttling in anti-phase between waypoints 400 m apart,
    // 20 m of altitude separation for collision avoidance.
    let mut k1 = UavKinematics::at(spec, Vec3::new(0.0, 0.0, 80.0));
    let mut k2 = UavKinematics::at(spec, Vec3::new(400.0, 40.0, 100.0));
    let mut ap1 = Autopilot::with_plan(FlightPlan::cycle(vec![
        Waypoint::new(Vec3::new(400.0, 0.0, 80.0)).with_acceptance_radius(25.0),
        Waypoint::new(Vec3::new(0.0, 0.0, 80.0)).with_acceptance_radius(25.0),
    ]));
    let mut ap2 = Autopilot::with_plan(FlightPlan::cycle(vec![
        Waypoint::new(Vec3::new(0.0, 40.0, 100.0)).with_acceptance_radius(25.0),
        Waypoint::new(Vec3::new(400.0, 40.0, 100.0)).with_acceptance_radius(25.0),
    ]));
    let mut gps1 = GpsSensor::new(GpsConfig::default(), seeds.rng("gps-a1"));
    let mut gps2 = GpsSensor::new(GpsConfig::default(), seeds.rng("gps-a2"));
    // A moderate breeze with strong gusting. Each aircraft samples its
    // own gust realisation (they are hundreds of metres apart — outside
    // the gust correlation length), which is what pushes the *relative*
    // ground speed beyond the calm-air 2×airspeed cap into the paper's
    // 15–26 m/s window: a uniform wind would cancel in the difference.
    let mut gusty = WindConfig::steady(0.0, MetersPerSec::new(4.0));
    gusty.gust_sigma_mps = 1.8;
    let mut wind1 = WindField::new(gusty, seeds.rng("wind-1"));
    let mut wind2 = WindField::new(gusty, seeds.rng("wind-2"));
    fly(
        duration_s, &mut k1, &mut k2, &mut ap1, &mut ap2, &mut gps1, &mut gps2, &mut wind1,
        &mut wind2,
    )
}

/// Fly the quadrocopter hover mission at the given separation.
pub fn quadrocopter_trace(
    cfg: &ReproConfig,
    separation_m: f64,
    duration_s: f64,
) -> Vec<TraceSample> {
    let seeds = SeedStream::new(cfg.seed);
    let spec = PlatformSpec::quadrocopter();
    let mut k1 = UavKinematics::at(spec, Vec3::new(0.0, 0.0, 10.0));
    let mut k2 = UavKinematics::at(spec, Vec3::new(separation_m, 0.0, 10.0));
    let mut ap1 = Autopilot::idle();
    let mut ap2 = Autopilot::idle();
    let mut gps1 = GpsSensor::new(GpsConfig::default(), seeds.rng("gps-q1"));
    let mut gps2 = GpsSensor::new(GpsConfig::default(), seeds.rng("gps-q2"));
    let mut wind1 = WindField::new(WindConfig::calm(), seeds.rng("wind-q1"));
    let mut wind2 = WindField::new(WindConfig::calm(), seeds.rng("wind-q2"));
    fly(
        duration_s, &mut k1, &mut k2, &mut ap1, &mut ap2, &mut gps1, &mut gps2, &mut wind1,
        &mut wind2,
    )
}

// allow: the flight loop threads every mutable piece of per-UAV state;
// a carrier struct would just re-expose the same eight fields.
#[allow(clippy::too_many_arguments)]
fn fly(
    duration_s: f64,
    k1: &mut UavKinematics,
    k2: &mut UavKinematics,
    ap1: &mut Autopilot,
    ap2: &mut Autopilot,
    gps1: &mut GpsSensor,
    gps2: &mut GpsSensor,
    wind1: &mut WindField,
    wind2: &mut WindField,
) -> Vec<TraceSample> {
    let steps = (duration_s / DT) as usize;
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let t = i as f64 * DT;
        let now = SimTime::from_secs_f64(t);
        let w1 = wind1.at(now);
        let w2 = wind2.at(now);
        let cmd1 = ap1.update(k1, DT);
        let cmd2 = ap2.update(k2, DT);
        k1.step_in_wind(cmd1, DT, w1);
        k2.step_in_wind(cmd2, DT, w2);
        out.push(TraceSample {
            t_s: t,
            fix1: gps1.fix(now, k1.position),
            fix2: gps2.fix(now, k2.position),
            relative_speed_mps: (k1.velocity - k2.velocity).norm(),
        });
    }
    out
}

/// Regenerate Figure 4 statistics.
pub fn run(cfg: &ReproConfig) -> ExperimentReport {
    let dur = cfg.secs(300) as f64;
    let air = airplane_trace(cfg, dur);

    let mut sep = Summary::new();
    let mut alt1 = Summary::new();
    let mut alt2 = Summary::new();
    let mut relspeed = Summary::new();
    for s in &air {
        sep.push(s.fix1.distance(s.fix2));
        alt1.push(s.fix1.z);
        alt2.push(s.fix2.z);
        // Relative speed matters when the aircraft are heading at each
        // other mid-leg (the encounter regime the paper quotes).
        if s.relative_speed_mps > 1.0 {
            relspeed.push(s.relative_speed_mps);
        }
    }

    let mut a = Table::new(vec![
        Column::text("airplane trace statistic"),
        Column::float("min", 1),
        Column::float("median-ish (mean)", 1),
        Column::float("max", 1),
    ]);
    a.row_f64(
        "separation (m)",
        &[
            sep.min().unwrap_or(0.0),
            sep.mean().unwrap_or(0.0),
            sep.max().unwrap_or(0.0),
        ],
    );
    a.row_f64(
        "altitude UAV1 (m)",
        &[
            alt1.min().unwrap_or(0.0),
            alt1.mean().unwrap_or(0.0),
            alt1.max().unwrap_or(0.0),
        ],
    );
    a.row_f64(
        "altitude UAV2 (m)",
        &[
            alt2.min().unwrap_or(0.0),
            alt2.mean().unwrap_or(0.0),
            alt2.max().unwrap_or(0.0),
        ],
    );
    a.row_f64(
        "relative speed (m/s)",
        &[
            relspeed.min().unwrap_or(0.0),
            relspeed.mean().unwrap_or(0.0),
            relspeed.max().unwrap_or(0.0),
        ],
    );

    let mut q = Table::new(vec![
        Column::text("quad separation (m)"),
        Column::float("mean fix separation (m)", 2),
        Column::float("fix std (m)", 2),
    ]);
    // The four hover separations are independent missions: fly them as
    // parallel tasks (each seeds its sensors from cfg.seed alone) and
    // emit the rows in separation order.
    let quad_rows = par_map(&[20.0, 40.0, 60.0, 80.0], |&d| {
        let trace = quadrocopter_trace(cfg, d, cfg.secs(60) as f64);
        let mut s = Summary::new();
        for t in &trace {
            s.push(t.fix1.distance(t.fix2));
        }
        (d, s)
    });
    for (d, s) in quad_rows {
        q.row_f64(
            &format!("{d:.0}"),
            &[s.mean().unwrap_or(0.0), s.sample_std_dev().unwrap_or(0.0)],
        );
    }

    let mut r = ExperimentReport::new("fig4", Fig4.title());
    let max_rel = relspeed.max().unwrap_or(0.0);
    r.note(format!(
        "airplane relative speed reaches {:.0} m/s head-on (paper: 15–26 m/s window)",
        max_rel
    ));
    r.note("quadrocopter fixes hold station at 10 m altitude with metre-level GPS scatter");
    r.table("Airplane shuttle (Figure 4a)", a);
    r.table("Quadrocopter hover (Figure 4b)", q);
    r
}

/// Registry entry for Figure 4.
pub struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "GPS traces of both platforms"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cfg: &ReproConfig, _store: &mut CampaignStore) -> ExperimentReport {
        run(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airplane_relative_speed_hits_paper_window() {
        let trace = airplane_trace(&ReproConfig::quick(), 200.0);
        let max_rel = trace
            .iter()
            .map(|s| s.relative_speed_mps)
            .fold(0.0, f64::max);
        // With wind and gusts the head-on closure exceeds the calm-air
        // 20 m/s cap and lands in the paper's 15–26 m/s window.
        assert!(
            (20.0..=27.0).contains(&max_rel),
            "max relative speed {max_rel} outside the paper's 15–26 m/s window"
        );
    }

    #[test]
    fn airplane_altitudes_separated() {
        let trace = airplane_trace(&ReproConfig::quick(), 60.0);
        // After the initial climb transient, each stays near its band.
        let tail = &trace[trace.len() / 2..];
        for s in tail {
            assert!((70.0..=110.0).contains(&s.fix1.z), "z1={}", s.fix1.z);
            assert!((90.0..=115.0).contains(&s.fix2.z), "z2={}", s.fix2.z);
        }
    }

    #[test]
    fn airplane_separation_sweeps_paper_range() {
        let trace = airplane_trace(&ReproConfig::quick(), 200.0);
        let min = trace
            .iter()
            .map(|s| s.fix1.distance(s.fix2))
            .fold(f64::INFINITY, f64::min);
        let max = trace
            .iter()
            .map(|s| s.fix1.distance(s.fix2))
            .fold(0.0, f64::max);
        assert!(min < 60.0, "min separation {min}");
        assert!(max > 300.0, "max separation {max}");
    }

    #[test]
    fn quad_station_keeping() {
        let trace = quadrocopter_trace(&ReproConfig::quick(), 60.0, 30.0);
        for s in &trace {
            let sep = s.fix1.distance(s.fix2);
            assert!((50.0..70.0).contains(&sep), "separation drifted: {sep}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&ReproConfig::quick());
        let text = r.render();
        assert!(text.contains("Figure 4a"));
        assert!(text.contains("Figure 4b"));
    }
}
