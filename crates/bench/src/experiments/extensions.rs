//! The implemented §5/§7 extensions, demonstrated end to end.
//!
//! Four tables beyond the paper's artefacts:
//!
//! 1. **Relay economics** — direct vs two-hop store-and-forward delivery
//!    (the related-work configuration of Section 6): relaying over one
//!    shared channel costs ≈2× on a good link but *wins* when it splits a
//!    starved link into two strong hops.
//! 2. **Mixed strategies** — the §3.2/§7 speed-dimension extension: how
//!    much transmitting during a (slower) approach improves on the
//!    paper's pure move-then-transmit, as a function of the motion
//!    penalty.
//! 3. **Closed loop** — the Eq. (2) optimizer fed with the *simulated*
//!    campaign's empirical `s(d)` instead of the paper fit: the optima
//!    agree, so the calibration is self-consistent end to end.
//! 4. **Full-mission summary** — the `control::mission` simulator: a
//!    small fleet scanning, planning and delivering, with failure risk.
//!
//! The closed-loop campaign cells and all pure Eq. (2) solutions route
//! through the shared [`CampaignStore`].

use skyferry_control::mission::{run_mission, MissionConfig};
use skyferry_core::mixed::{optimize_mixed, MixedConfig};
use skyferry_core::scenario::Scenario;
use skyferry_core::throughput::{EmpiricalThroughput, ThroughputSpec};
use skyferry_geo::vector::Vec3;
use skyferry_net::campaign::{run_transfer, CampaignConfig, ControllerKind};
use skyferry_net::profile::MotionProfile;
use skyferry_net::relay::{run_relayed_transfer, RelayGeometry};
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::time::SimDuration;
use skyferry_stats::table::{Column, Table, Value};
use skyferry_units::MetersPerSec;

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// Relay economics table.
pub fn relay_table(cfg: &ReproConfig) -> Table {
    let campaign = CampaignConfig {
        preset: ChannelPreset::quadrocopter(MetersPerSec::new(0.0)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(cfg.secs(900)),
        seed: cfg.seed,
    };
    let mdata: u64 = 8_000_000;
    let fmt = |o: Option<skyferry_sim::time::SimTime>| {
        o.map(|t| Value::Num(t.as_secs_f64()))
            .unwrap_or_else(|| "dnf".into())
    };
    let mut t = Table::new(vec![
        Column::text("configuration"),
        Column::float("direct (s)", 1),
        Column::float("relayed (s)", 1),
        Column::text("verdict").right(),
    ]);
    for (label, d_direct, hops) in [
        ("good link: 40 m direct vs 40+40 m hops", 40.0, (40.0, 40.0)),
        (
            "starved link: 80 m direct vs 25+25 m hops",
            80.0,
            (25.0, 25.0),
        ),
        ("edge: 95 m direct vs 50+50 m hops", 95.0, (50.0, 50.0)),
    ] {
        let direct = run_transfer(
            &campaign,
            MotionProfile::hover(d_direct),
            mdata,
            false,
            "direct",
            0,
        );
        let relayed = run_relayed_transfer(
            &campaign,
            RelayGeometry {
                d_src_relay_m: hops.0,
                d_relay_dst_m: hops.1,
            },
            mdata,
            0,
        );
        let verdict = match (direct.completion, relayed.end_to_end.completion) {
            (Some(a), Some(b)) if b < a => "relay wins",
            (Some(_), Some(_)) => "direct wins",
            (Some(_), None) => "direct wins",
            (None, Some(_)) => "relay wins",
            (None, None) => "both starve",
        };
        t.push(vec![
            label.into(),
            fmt(direct.completion),
            fmt(relayed.end_to_end.completion),
            verdict.into(),
        ]);
    }
    t
}

/// Mixed-strategy payoff across motion penalties.
pub fn mixed_table(store: &mut CampaignStore) -> Table {
    let mut t = Table::new(vec![
        Column::float("motion penalty (dB per m/s)", 1).left(),
        Column::int("pure dopt (m)"),
        Column::int("mixed d (m)"),
        Column::float("mixed v (m/s)", 1),
        Column::text("tx while moving").right(),
        Column::text("utility gain").right(),
    ]);
    let s = Scenario::quadrocopter_baseline().with_mdata_mb(15.0);
    let pure = store.optimum(&s);
    for loss in [0.0, 0.3, 0.7, 2.0] {
        let mut cfg = MixedConfig::for_speed(MetersPerSec::new(4.5));
        cfg.penalty.loss_db_per_mps = loss;
        let m = optimize_mixed(&s, &cfg);
        t.push(vec![
            Value::Num(loss),
            Value::Num(pure.d_opt),
            Value::Num(m.d_m),
            m.v_mps.into(),
            if m.transmit_while_moving { "yes" } else { "no" }.into(),
            format!("{:.3}x", m.utility / pure.utility).into(),
        ]);
    }
    t
}

/// Closing the loop: feed the *simulated* campaign's empirical medians
/// into the optimizer and compare against the paper-fit answer. If the
/// calibration holds, the two `dopt` values agree.
pub fn closed_loop_table(cfg: &ReproConfig, store: &mut CampaignStore) -> Table {
    let campaign = CampaignConfig {
        preset: ChannelPreset::quadrocopter(MetersPerSec::new(0.0)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(cfg.secs(20)),
        seed: cfg.seed + 9,
    };
    let distances: Vec<f64> = (1..=9).map(|i| 10.0 * i as f64 + 5.0).collect();
    let rows = store.throughput_vs_distance(&campaign, &distances, cfg.reps(6));
    let empirical = EmpiricalThroughput::from_campaign_mbps(&rows);

    let mut t = Table::new(vec![
        Column::float("Mdata (MB)", 1).left(),
        Column::int("dopt paper-fit (m)"),
        Column::int("dopt sim-empirical (m)"),
    ]);
    for mb in [5.0, 10.0, 56.2] {
        let fit_scenario = Scenario::quadrocopter_baseline().with_mdata_mb(mb);
        let mut emp_scenario = fit_scenario.clone();
        emp_scenario.throughput = ThroughputSpec::Empirical(empirical.clone());
        t.push(vec![
            Value::Num(mb),
            Value::Num(store.optimum(&fit_scenario).d_opt),
            Value::Num(store.optimum(&emp_scenario).d_opt),
        ]);
    }
    t
}

/// Fleet mission summary.
pub fn mission_table(cfg: &ReproConfig) -> Table {
    let mut mission_cfg = MissionConfig::quadrocopter_fleet(2, 70.0, cfg.seed);
    mission_cfg.relay_position = Vec3::new(150.0, 35.0, 10.0);
    mission_cfg.horizon_s = if cfg.quick { 900.0 } else { 1_800.0 };
    let report = run_mission(&mission_cfg);
    let mut t = Table::new(vec![
        Column::int("UAV").left(),
        Column::float("collected (MB)", 1),
        Column::float("delivered (MB)", 1),
        Column::int("done (s)"),
        Column::text("status").right(),
    ]);
    for u in &report.uavs {
        t.push(vec![
            Value::Int(u.id.0 as i64),
            Value::Num(u.collected_bytes as f64 / 1e6),
            Value::Num(u.delivered_bytes as f64 / 1e6),
            u.completed_s.map_or_else(|| "-".into(), Value::Num),
            if u.failed {
                "lost"
            } else if u.completed_s.is_some() {
                "delivered"
            } else {
                "incomplete"
            }
            .into(),
        ]);
    }
    t
}

/// Run all extension demonstrations.
pub fn run(cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
    let mut r = ExperimentReport::new("extensions", Extensions.title());
    r.table("Relay economics (8 MB batch)", relay_table(cfg));
    r.table(
        "Mixed-strategy payoff (15 MB quad batch)",
        mixed_table(store),
    );
    r.table(
        "Closed loop: optimizer on simulated vs paper throughput",
        closed_loop_table(cfg, store),
    );
    r.table("Two-UAV mission summary", mission_table(cfg));
    r.note("relaying costs ≈2x on a healthy link and pays on a starved one");
    r.note("optimising on the simulated empirical s(d) lands near the paper-fit optimum — the calibration closes");
    r.note(
        "the mixed extension's gain shrinks as the motion penalty approaches the calibrated value",
    );
    r
}

/// Registry entry for the extension demonstrations.
pub struct Extensions;

impl Experiment for Extensions {
    fn id(&self) -> &'static str {
        "extensions"
    }

    fn title(&self) -> &'static str {
        "Implemented §5/§7 extensions: relaying, mixed strategies, full missions"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["quadrocopter/autorate"]
    }

    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
        run(cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> CampaignStore {
        CampaignStore::new(true)
    }

    #[test]
    fn relay_verdicts_match_theory() {
        let t = relay_table(&ReproConfig::quick());
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().skip(2).collect();
        assert!(lines[0].ends_with("direct wins"), "{}", lines[0]);
        assert!(lines[1].ends_with("relay wins"), "{}", lines[1]);
    }

    #[test]
    fn mixed_gain_decreases_with_penalty() {
        let t = mixed_table(&mut fresh());
        let gains: Vec<f64> = t
            .render_text()
            .lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches('x')
                    .parse()
                    .unwrap()
            })
            .collect();
        for w in gains.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{gains:?}");
        }
        assert!(gains[0] > 1.05, "free motion must pay: {gains:?}");
        assert!(*gains.last().unwrap() >= 0.999);
    }

    #[test]
    fn mission_summary_renders_fleet() {
        let cfg = ReproConfig::quick();
        let r = run(&cfg, &mut fresh());
        assert_eq!(r.tables.len(), 4);
        let (_, mission) = &r.tables[3];
        assert_eq!(mission.num_rows(), 2);
    }

    #[test]
    fn closed_loop_optima_agree() {
        let t = closed_loop_table(&ReproConfig::quick(), &mut fresh());
        for line in t.render_text().lines().skip(2) {
            let cols: Vec<f64> = line
                .split_whitespace()
                .filter_map(|v| v.parse().ok())
                .collect();
            let (fit, emp) = (cols[1], cols[2]);
            // Within 20 m (the model flattens near its optimum).
            assert!(
                (fit - emp).abs() <= 25.0,
                "fit dopt {fit} vs empirical {emp}"
            );
        }
    }
}
