//! Section 2.2 / footnotes 3–4 — the camera-geometry derivation of Mdata.
//!
//! Airplane: 1280×720 (k = 16/9), 70 m altitude, 65° lens → FOV = 90 m,
//! Aimage = 3432 m²; with Asector = 0.25 km² and Mimage = 0.39 MB:
//! Mdata = 28 MB. Quadrocopter: 10 m altitude → FOV = 12.7 m,
//! Aimage = 69.4 m²; Asector = 0.01 km² → Mdata = 56.2 MB.

use skyferry_geo::camera::{CameraModel, BYTES_PER_MB};
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// One derivation row.
#[derive(Debug, Clone, Copy)]
pub struct MdataRow {
    /// Scan altitude, metres.
    pub altitude_m: f64,
    /// Sector area, m².
    pub sector_m2: f64,
    /// Our computed FOV, metres.
    pub fov_m: f64,
    /// Our computed image footprint, m².
    pub aimage_m2: f64,
    /// Our computed Mdata, MB.
    pub mdata_mb: f64,
    /// The paper's quoted Mdata, MB.
    pub paper_mdata_mb: f64,
}

/// Compute both derivations.
pub fn simulate() -> (MdataRow, MdataRow) {
    let cam = CameraModel::paper_default();
    let air = MdataRow {
        altitude_m: 70.0,
        sector_m2: 500.0 * 500.0,
        fov_m: cam.fov_m(70.0),
        aimage_m2: cam.image_area_m2(70.0),
        mdata_mb: cam.mdata_bytes(500.0 * 500.0, 70.0) / BYTES_PER_MB,
        paper_mdata_mb: 28.0,
    };
    let quad = MdataRow {
        altitude_m: 10.0,
        sector_m2: 100.0 * 100.0,
        fov_m: cam.fov_m(10.0),
        aimage_m2: cam.image_area_m2(10.0),
        mdata_mb: cam.mdata_bytes(100.0 * 100.0, 10.0) / BYTES_PER_MB,
        paper_mdata_mb: 56.2,
    };
    (air, quad)
}

/// Regenerate the Mdata derivation table.
pub fn run(_cfg: &ReproConfig) -> ExperimentReport {
    let (air, quad) = simulate();
    let mut t = Table::new(vec![
        Column::text("scenario"),
        Column::int("altitude (m)"),
        Column::float("FOV (m)", 1),
        Column::int("Aimage (m2)"),
        Column::int("Asector (m2)"),
        Column::float("Mdata (MB)", 1),
        Column::float("paper (MB)", 1),
    ]);
    for (name, row) in [("airplane", air), ("quadrocopter", quad)] {
        t.push(vec![
            name.into(),
            Value::Num(row.altitude_m),
            row.fov_m.into(),
            Value::Num(row.aimage_m2),
            Value::Num(row.sector_m2),
            row.mdata_mb.into(),
            row.paper_mdata_mb.into(),
        ]);
    }
    let mut r = ExperimentReport::new("mdata", Mdata.title());
    r.note(format!(
        "airplane Mdata {:.1} MB vs paper 28 MB; quadrocopter {:.1} MB vs paper 56.2 MB",
        air.mdata_mb, quad.mdata_mb
    ));
    r.table("Derivation", t);
    r
}

/// Registry entry for the Mdata derivation.
pub struct Mdata;

impl Experiment for Mdata {
    fn id(&self) -> &'static str {
        "mdata"
    }

    fn title(&self) -> &'static str {
        "Camera-geometry derivation of Mdata (fn. 3–4)"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cfg: &ReproConfig, _store: &mut CampaignStore) -> ExperimentReport {
        run(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let (air, quad) = simulate();
        assert!((air.fov_m - 90.0).abs() < 2.0, "fov={}", air.fov_m);
        assert!((air.aimage_m2 - 3432.0).abs() < 120.0);
        assert!((air.mdata_mb - 28.0).abs() < 1.0);
        assert!((quad.fov_m - 12.7).abs() < 0.2);
        assert!((quad.aimage_m2 - 69.4).abs() < 2.0);
        assert!((quad.mdata_mb - 56.2).abs() < 1.5);
    }

    #[test]
    fn report_renders_both_rows() {
        let r = run(&ReproConfig::quick());
        let text = r.render();
        assert!(text.contains("airplane"));
        assert!(text.contains("quadrocopter"));
        assert!(text.contains("56."));
    }
}
