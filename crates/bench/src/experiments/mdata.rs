//! Section 2.2 / footnotes 3–4 — the camera-geometry derivation of Mdata.
//!
//! Airplane: 1280×720 (k = 16/9), 70 m altitude, 65° lens → FOV = 90 m,
//! Aimage = 3432 m²; with Asector = 0.25 km² and Mimage = 0.39 MB:
//! Mdata = 28 MB. Quadrocopter: 10 m altitude → FOV = 12.7 m,
//! Aimage = 69.4 m²; Asector = 0.01 km² → Mdata = 56.2 MB.

use skyferry_geo::camera::{CameraModel, BYTES_PER_MB};
use skyferry_stats::table::TextTable;

use crate::report::{ExperimentReport, ReproConfig};

/// One derivation row.
#[derive(Debug, Clone, Copy)]
pub struct MdataRow {
    /// Scan altitude, metres.
    pub altitude_m: f64,
    /// Sector area, m².
    pub sector_m2: f64,
    /// Our computed FOV, metres.
    pub fov_m: f64,
    /// Our computed image footprint, m².
    pub aimage_m2: f64,
    /// Our computed Mdata, MB.
    pub mdata_mb: f64,
    /// The paper's quoted Mdata, MB.
    pub paper_mdata_mb: f64,
}

/// Compute both derivations.
pub fn simulate() -> (MdataRow, MdataRow) {
    let cam = CameraModel::paper_default();
    let air = MdataRow {
        altitude_m: 70.0,
        sector_m2: 500.0 * 500.0,
        fov_m: cam.fov_m(70.0),
        aimage_m2: cam.image_area_m2(70.0),
        mdata_mb: cam.mdata_bytes(500.0 * 500.0, 70.0) / BYTES_PER_MB,
        paper_mdata_mb: 28.0,
    };
    let quad = MdataRow {
        altitude_m: 10.0,
        sector_m2: 100.0 * 100.0,
        fov_m: cam.fov_m(10.0),
        aimage_m2: cam.image_area_m2(10.0),
        mdata_mb: cam.mdata_bytes(100.0 * 100.0, 10.0) / BYTES_PER_MB,
        paper_mdata_mb: 56.2,
    };
    (air, quad)
}

/// Regenerate the Mdata derivation table.
pub fn run(_cfg: &ReproConfig) -> ExperimentReport {
    let (air, quad) = simulate();
    let mut t = TextTable::new(&[
        "scenario",
        "altitude (m)",
        "FOV (m)",
        "Aimage (m2)",
        "Asector (m2)",
        "Mdata (MB)",
        "paper (MB)",
    ]);
    for (name, row) in [("airplane", air), ("quadrocopter", quad)] {
        t.row(&[
            name,
            &format!("{:.0}", row.altitude_m),
            &format!("{:.1}", row.fov_m),
            &format!("{:.0}", row.aimage_m2),
            &format!("{:.0}", row.sector_m2),
            &format!("{:.1}", row.mdata_mb),
            &format!("{:.1}", row.paper_mdata_mb),
        ]);
    }
    let mut r = ExperimentReport::new("mdata", "Camera-geometry derivation of Mdata (fn. 3–4)");
    r.note(format!(
        "airplane Mdata {:.1} MB vs paper 28 MB; quadrocopter {:.1} MB vs paper 56.2 MB",
        air.mdata_mb, quad.mdata_mb
    ));
    r.table("Derivation", t);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let (air, quad) = simulate();
        assert!((air.fov_m - 90.0).abs() < 2.0, "fov={}", air.fov_m);
        assert!((air.aimage_m2 - 3432.0).abs() < 120.0);
        assert!((air.mdata_mb - 28.0).abs() < 1.0);
        assert!((quad.fov_m - 12.7).abs() < 0.2);
        assert!((quad.aimage_m2 - 69.4).abs() < 2.0);
        assert!((quad.mdata_mb - 56.2).abs() < 1.5);
    }

    #[test]
    fn report_renders_both_rows() {
        let r = run(&ReproConfig::quick());
        let text = r.render();
        assert!(text.contains("airplane"));
        assert!(text.contains("quadrocopter"));
        assert!(text.contains("56."));
    }
}
