//! Figure 7 — quadrocopter tests.
//!
//! Left: hover throughput vs distance (20–80 m) — higher and tighter than
//! the airplanes. Centre: throughput vs distance while approaching at
//! ≈ 8 m/s — a clear drop. Right: throughput vs cruise speed at ≈ 60 m —
//! "the throughput varies and drops significantly with the speed".

use skyferry_net::campaign::{CampaignConfig, ControllerKind};
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::time::SimDuration;
use skyferry_stats::boxplot::BoxplotSummary;
use skyferry_stats::quantile::median;
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;
use skyferry_units::MetersPerSec;

/// The approach speed of the centre panel, m/s.
pub const MOVING_SPEED_MPS: f64 = 8.0;
/// The hover/moving panel distances.
pub const DISTANCES: [f64; 4] = [20.0, 40.0, 60.0, 80.0];
/// The right-panel speed sweep at 60 m.
pub const SPEEDS: [f64; 5] = [0.0, 2.0, 4.5, 8.0, 12.0];

/// The quadrocopter iperf campaign at a given platform speed.
pub fn campaign(cfg: &ReproConfig, speed: f64) -> CampaignConfig {
    CampaignConfig {
        preset: ChannelPreset::quadrocopter(MetersPerSec::new(speed)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(cfg.secs(20)),
        seed: cfg.seed,
    }
}

/// Hover samples per distance (left panel).
pub fn hover_rows(cfg: &ReproConfig, store: &mut CampaignStore) -> Vec<(f64, Vec<f64>)> {
    store.throughput_vs_distance(&campaign(cfg, 0.0), &DISTANCES, cfg.reps(6))
}

/// Moving samples per distance (centre panel): the platform flies at
/// ≈ 8 m/s relative while the distance band is held (the paper flies
/// repeated approach segments; we model the sustained-motion channel at
/// the band's distance).
pub fn moving_rows(cfg: &ReproConfig, store: &mut CampaignStore) -> Vec<(f64, Vec<f64>)> {
    store.throughput_vs_distance(&campaign(cfg, MOVING_SPEED_MPS), &DISTANCES, cfg.reps(6))
}

/// Speed sweep at 60 m (right panel). The `v = 0` cell is the hover
/// campaign's 60 m cell, so it is shared with the left panel.
pub fn speed_rows(cfg: &ReproConfig, store: &mut CampaignStore) -> Vec<(f64, Vec<f64>)> {
    let reps = cfg.reps(6);
    let requests: Vec<(CampaignConfig, f64)> =
        SPEEDS.iter().map(|&v| (campaign(cfg, v), 60.0)).collect();
    store.ensure(&requests, reps);
    SPEEDS
        .iter()
        .map(|&v| (v, store.samples(&campaign(cfg, v), 60.0, reps)))
        .collect()
}

fn panel_table(label: &str, rows: &[(f64, Vec<f64>)]) -> Table {
    let mut t = Table::new(vec![
        Column::float(label, 1).left(),
        Column::float("q1", 1),
        Column::float("median", 1),
        Column::float("q3", 1),
        Column::float("whisker spread", 1),
    ]);
    for (x, samples) in rows {
        let b = BoxplotSummary::of(samples).expect("non-empty");
        t.push(vec![
            Value::Num(*x),
            b.q1.into(),
            b.median.into(),
            b.q3.into(),
            b.spread().into(),
        ]);
    }
    t
}

/// Regenerate Figure 7.
pub fn run(cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
    let hover = hover_rows(cfg, store);
    let moving = moving_rows(cfg, store);
    let speeds = speed_rows(cfg, store);

    let mut r = ExperimentReport::new("fig7", Fig7.title());

    let hover_med_40 = median(&hover[1].1).expect("non-empty");
    let moving_med_40 = median(&moving[1].1).expect("non-empty");
    r.note(format!(
        "at 40 m: hover median {hover_med_40:.1} Mb/s vs moving {moving_med_40:.1} Mb/s (paper: clear drop when moving)"
    ));
    let v0 = median(&speeds[0].1).expect("non-empty");
    let v_max = median(&speeds[SPEEDS.len() - 1].1).expect("non-empty");
    r.note(format!(
        "at 60 m: {v0:.1} Mb/s hovering vs {v_max:.1} Mb/s at {} m/s (paper: drops significantly with speed)",
        SPEEDS[SPEEDS.len() - 1]
    ));

    r.table(
        "Hover throughput vs distance (left)",
        panel_table("d (m)", &hover),
    );
    r.table(
        "Moving (≈8 m/s) throughput vs distance (centre)",
        panel_table("d (m)", &moving),
    );
    r.table(
        "Throughput vs speed at 60 m (right)",
        panel_table("v (m/s)", &speeds),
    );
    r
}

/// Registry entry for Figure 7.
pub struct Fig7;

impl Experiment for Fig7 {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn title(&self) -> &'static str {
        "Quadrocopter tests: hover vs distance, moving vs distance, throughput vs speed"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["quadrocopter/autorate"]
    }

    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
        run(cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hover_beats_moving_at_every_distance() {
        let cfg = ReproConfig::quick();
        let store = &mut CampaignStore::new(cfg.quick);
        let hover = hover_rows(&cfg, store);
        let moving = moving_rows(&cfg, store);
        let mut wins = 0;
        for (h, m) in hover.iter().zip(&moving) {
            let hm = median(&h.1).unwrap();
            let mm = median(&m.1).unwrap();
            if hm >= mm {
                wins += 1;
            }
        }
        assert!(wins >= 3, "hover won only {wins}/4 distances");
    }

    #[test]
    fn throughput_drops_with_speed_at_60m() {
        let cfg = ReproConfig::quick();
        let rows = speed_rows(&cfg, &mut CampaignStore::new(cfg.quick));
        let hover = median(&rows[0].1).unwrap();
        let fast = median(&rows[4].1).unwrap();
        assert!(
            fast < hover * 0.8,
            "no speed drop: hover={hover:.1}, 12 m/s={fast:.1}"
        );
    }

    #[test]
    fn speed_sweep_reuses_the_hover_cell() {
        // The v = 0 sweep point is the hover campaign's 60 m cell.
        let cfg = ReproConfig::quick();
        let store = &mut CampaignStore::new(cfg.quick);
        hover_rows(&cfg, store);
        let hits_before = store.hits();
        speed_rows(&cfg, store);
        assert!(store.hits() > hits_before, "v=0 @ 60 m must be a hit");
    }

    #[test]
    fn quad_hover_tighter_than_airplanes() {
        // "higher throughput and smaller variability than in the
        // airplanes tests" — compare whisker spreads at the shared
        // distances, normalised by the median.
        let cfg = ReproConfig::quick();
        let store = &mut CampaignStore::new(cfg.quick);
        let quad = hover_rows(&cfg, store);
        let air = super::super::fig5::simulate(&cfg, store);
        let rel_spread = |samples: &[f64]| {
            let b = BoxplotSummary::of(samples).unwrap();
            b.spread() / b.median.max(1.0)
        };
        // 40 m is index 1 in both campaigns.
        let q = rel_spread(&quad[1].1);
        let a = rel_spread(&air[1].1);
        assert!(q < a, "quad spread {q:.2} not tighter than airplane {a:.2}");
    }

    #[test]
    fn report_has_three_panels() {
        let cfg = ReproConfig::quick();
        let r = run(&cfg, &mut CampaignStore::new(cfg.quick));
        assert_eq!(r.tables.len(), 3);
    }
}
