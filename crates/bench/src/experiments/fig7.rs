//! Figure 7 — quadrocopter tests.
//!
//! Left: hover throughput vs distance (20–80 m) — higher and tighter than
//! the airplanes. Centre: throughput vs distance while approaching at
//! ≈ 8 m/s — a clear drop. Right: throughput vs cruise speed at ≈ 60 m —
//! "the throughput varies and drops significantly with the speed".

use skyferry_net::campaign::{measure_throughput_replicated, CampaignConfig, ControllerKind};
use skyferry_net::profile::MotionProfile;
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::parallel::par_map;
use skyferry_sim::time::SimDuration;
use skyferry_stats::boxplot::BoxplotSummary;
use skyferry_stats::quantile::median;
use skyferry_stats::table::TextTable;

use crate::report::{ExperimentReport, ReproConfig};

/// The approach speed of the centre panel, m/s.
pub const MOVING_SPEED_MPS: f64 = 8.0;
/// The hover/moving panel distances.
pub const DISTANCES: [f64; 4] = [20.0, 40.0, 60.0, 80.0];
/// The right-panel speed sweep at 60 m.
pub const SPEEDS: [f64; 5] = [0.0, 2.0, 4.5, 8.0, 12.0];

fn campaign(cfg: &ReproConfig, speed: f64) -> CampaignConfig {
    CampaignConfig {
        preset: ChannelPreset::quadrocopter(speed),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(cfg.secs(20)),
        seed: cfg.seed,
    }
}

/// Hover samples per distance (left panel).
pub fn hover_rows(cfg: &ReproConfig) -> Vec<(f64, Vec<f64>)> {
    let c = campaign(cfg, 0.0);
    par_map(&DISTANCES, |&d| {
        (
            d,
            measure_throughput_replicated(&c, MotionProfile::hover(d), cfg.reps(6)),
        )
    })
}

/// Moving samples per distance (centre panel): the platform flies at
/// ≈ 8 m/s relative while the distance band is held (the paper flies
/// repeated approach segments; we model the sustained-motion channel at
/// the band's distance).
pub fn moving_rows(cfg: &ReproConfig) -> Vec<(f64, Vec<f64>)> {
    let c = campaign(cfg, MOVING_SPEED_MPS);
    par_map(&DISTANCES, |&d| {
        (
            d,
            measure_throughput_replicated(&c, MotionProfile::hover(d), cfg.reps(6)),
        )
    })
}

/// Speed sweep at 60 m (right panel).
pub fn speed_rows(cfg: &ReproConfig) -> Vec<(f64, Vec<f64>)> {
    par_map(&SPEEDS, |&v| {
        let c = campaign(cfg, v);
        (
            v,
            measure_throughput_replicated(&c, MotionProfile::hover(60.0), cfg.reps(6)),
        )
    })
}

fn panel_table(label: &str, rows: &[(f64, Vec<f64>)]) -> TextTable {
    let mut t = TextTable::new(&[label, "q1", "median", "q3", "whisker spread"]);
    for (x, samples) in rows {
        let b = BoxplotSummary::of(samples).expect("non-empty");
        t.row(&[
            &format!("{x:.1}"),
            &format!("{:.1}", b.q1),
            &format!("{:.1}", b.median),
            &format!("{:.1}", b.q3),
            &format!("{:.1}", b.spread()),
        ]);
    }
    t
}

/// Regenerate Figure 7.
pub fn run(cfg: &ReproConfig) -> ExperimentReport {
    let hover = hover_rows(cfg);
    let moving = moving_rows(cfg);
    let speeds = speed_rows(cfg);

    let mut r = ExperimentReport::new(
        "fig7",
        "Quadrocopter tests: hover vs distance, moving vs distance, throughput vs speed",
    );

    let hover_med_40 = median(&hover[1].1).expect("non-empty");
    let moving_med_40 = median(&moving[1].1).expect("non-empty");
    r.note(format!(
        "at 40 m: hover median {hover_med_40:.1} Mb/s vs moving {moving_med_40:.1} Mb/s (paper: clear drop when moving)"
    ));
    let v0 = median(&speeds[0].1).expect("non-empty");
    let v_max = median(&speeds[SPEEDS.len() - 1].1).expect("non-empty");
    r.note(format!(
        "at 60 m: {v0:.1} Mb/s hovering vs {v_max:.1} Mb/s at {} m/s (paper: drops significantly with speed)",
        SPEEDS[SPEEDS.len() - 1]
    ));

    r.table(
        "Hover throughput vs distance (left)",
        panel_table("d (m)", &hover),
    );
    r.table(
        "Moving (≈8 m/s) throughput vs distance (centre)",
        panel_table("d (m)", &moving),
    );
    r.table(
        "Throughput vs speed at 60 m (right)",
        panel_table("v (m/s)", &speeds),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hover_beats_moving_at_every_distance() {
        let cfg = ReproConfig::quick();
        let hover = hover_rows(&cfg);
        let moving = moving_rows(&cfg);
        let mut wins = 0;
        for (h, m) in hover.iter().zip(&moving) {
            let hm = median(&h.1).unwrap();
            let mm = median(&m.1).unwrap();
            if hm >= mm {
                wins += 1;
            }
        }
        assert!(wins >= 3, "hover won only {wins}/4 distances");
    }

    #[test]
    fn throughput_drops_with_speed_at_60m() {
        let rows = speed_rows(&ReproConfig::quick());
        let hover = median(&rows[0].1).unwrap();
        let fast = median(&rows[4].1).unwrap();
        assert!(
            fast < hover * 0.8,
            "no speed drop: hover={hover:.1}, 12 m/s={fast:.1}"
        );
    }

    #[test]
    fn quad_hover_tighter_than_airplanes() {
        // "higher throughput and smaller variability than in the
        // airplanes tests" — compare whisker spreads at the shared
        // distances, normalised by the median.
        let cfg = ReproConfig::quick();
        let quad = hover_rows(&cfg);
        let air = super::super::fig5::simulate(&cfg);
        let rel_spread = |samples: &[f64]| {
            let b = BoxplotSummary::of(samples).unwrap();
            b.spread() / b.median.max(1.0)
        };
        // 40 m is index 1 in both campaigns.
        let q = rel_spread(&quad[1].1);
        let a = rel_spread(&air[1].1);
        assert!(q < a, "quad spread {q:.2} not tighter than airplane {a:.2}");
    }

    #[test]
    fn report_has_three_panels() {
        let r = run(&ReproConfig::quick());
        assert_eq!(r.tables.len(), 3);
    }
}
