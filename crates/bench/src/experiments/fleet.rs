//! Fleet experiments — many UAVs, shared spectrum, and a real planner.
//!
//! The paper's model is one sender and one receiver; `skyferry-fleet`
//! asks what happens when K UAVs contend for the same ground segment.
//! Four tables:
//!
//! 1. **Fleet size sweep** — d\* and utility versus K ∈ {1,2,4,8,16}
//!    for cyclical TDMA and UD-MAC side by side, at the representative
//!    campaign geometry. The headline claim: *d\* shifts toward
//!    transmit-earlier as the fleet grows* — waiting to fly closer now
//!    also risks the access slot, so the slot-retention hazard
//!    (ρ' = ρ + λ/v) overtakes the slot-share batch inflation and
//!    pushes the optimum outward, until contention forces immediate
//!    transmission at `d0`.
//! 2. **Contention model comparison** — share, cycle, hazard and the
//!    resulting decision for both MACs at a fixed fleet size: UD-MAC's
//!    delay-tolerant priority access retains more throughput *and*
//!    loses fewer slots, so it holds d\* closer to the solo optimum.
//! 3. **Planner ablation** — greedy versus Hungarian assignment over
//!    seeded campaign replications: realized total utility, spread of
//!    station loads, conflicts.
//! 4. **Campaign sweep** — the full stochastic pipeline (placement →
//!    plan → decide → conflicts) versus K.

use skyferry_core::scenario::Scenario;
use skyferry_fleet::campaign::{FleetCampaign, FleetConfig, MediumSpec};
use skyferry_fleet::medium::{contended, CyclicalTdma, UdMac};
use skyferry_fleet::planner::PlannerKind;
use skyferry_fleet::trace::FleetTrace;
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// Fleet sizes swept everywhere.
pub const FLEET_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

/// The representative geometry of the sweep tables: a quadrocopter
/// carrying a 10 MB batch whose link comes up at 200 m (mid operating
/// area). Interior optimum, sensitive to both contention forces.
fn sweep_scenario() -> Scenario {
    Scenario::quadrocopter_baseline()
        .with_mdata_mb(10.0)
        .with_d0(200.0)
}

/// Both media at their experiment baselines.
fn media() -> [MediumSpec; 2] {
    [
        MediumSpec::Tdma(CyclicalTdma::BASELINE),
        MediumSpec::UdMac(UdMac::BASELINE),
    ]
}

fn fleet_size_table(store: &mut CampaignStore) -> Table {
    let base = sweep_scenario();
    let mut t = Table::new(vec![
        Column::int("K").left(),
        Column::float("share tdma", 4),
        Column::float("share ud-mac", 4),
        Column::sci("rho_eff tdma (1/m)", 3),
        Column::sci("rho_eff ud-mac (1/m)", 3),
        Column::float("dopt tdma (m)", 1),
        Column::float("dopt ud-mac (m)", 1),
        Column::float("U tdma", 4),
        Column::float("U ud-mac", 4),
    ]);
    for &k in &FLEET_SIZES {
        let mut cells = vec![Value::Num(k as f64)];
        let mut shares = Vec::new();
        let mut rhos = Vec::new();
        let mut dopts = Vec::new();
        let mut utils = Vec::new();
        for spec in media() {
            let m = spec.access();
            let c = contended(&base, m, k);
            let o = store.optimum(&c);
            shares.push(m.slot_share(k));
            rhos.push(match c.failure {
                skyferry_core::failure::FailureSpec::Exponential(e) => e.rho_per_m,
                _ => unreachable!("contended scenarios are exponential"),
            });
            dopts.push(o.d_opt);
            utils.push(o.utility);
        }
        cells.extend(shares.into_iter().map(Value::Num));
        cells.extend(rhos.into_iter().map(Value::Num));
        cells.extend(dopts.into_iter().map(Value::Num));
        cells.extend(utils.into_iter().map(Value::Num));
        t.push(cells);
    }
    t
}

fn contention_model_table(store: &mut CampaignStore, k: usize) -> Table {
    let base = sweep_scenario();
    let mut t = Table::new(vec![
        Column::text("medium").left(),
        Column::float("share", 4),
        Column::float("cycle (s)", 1),
        Column::sci("hazard (1/s)", 3),
        Column::sci("rho_eff (1/m)", 3),
        Column::float("dopt (m)", 1),
        Column::float("U", 4),
        Column::float("Cdelay (s)", 1),
        Column::float("ship (s)", 1),
        Column::float("tx (s)", 1),
    ]);
    for spec in media() {
        let m = spec.access();
        let c = contended(&base, m, k);
        let o = store.optimum(&c);
        let rho_eff = match c.failure {
            skyferry_core::failure::FailureSpec::Exponential(e) => e.rho_per_m,
            _ => unreachable!("contended scenarios are exponential"),
        };
        t.push(vec![
            Value::Str(m.name().into()),
            Value::Num(m.slot_share(k)),
            Value::Num(m.cycle(k).get()),
            Value::Num(m.retention_hazard_per_s(k)),
            Value::Num(rho_eff),
            o.d_opt.into(),
            o.utility.into(),
            o.cdelay_s().into(),
            o.ship_s.into(),
            o.tx_s.into(),
        ]);
    }
    t
}

fn planner_ablation_table(cfg: &ReproConfig) -> Table {
    let reps = cfg.reps(6);
    let mut t = Table::new(vec![
        Column::text("planner").left(),
        Column::text("medium").left(),
        Column::float("planned U", 4),
        Column::float("total U", 4),
        Column::float("mean dopt (m)", 1),
        Column::float("max load", 2),
        Column::float("conflicts", 2),
    ]);
    for planner in [PlannerKind::Greedy, PlannerKind::Hungarian] {
        for medium in media() {
            let mut config = FleetConfig::baseline(8, 3, medium);
            config.planner = planner;
            // Name by medium only: the replication RNG label derives
            // from the name, so both planners must share it to be
            // scored on identical fleet layouts.
            config.name = format!("ablation-{}", medium.name());
            let outs = FleetCampaign::new(config).replicate(cfg.seed, reps);
            let n = outs.len() as f64;
            let planned_u: f64 = outs.iter().map(|o| o.planned_utility).sum::<f64>() / n;
            let total_u: f64 = outs.iter().map(|o| o.total_utility).sum::<f64>() / n;
            let mean_d: f64 = outs.iter().map(|o| o.mean_d_opt().get()).sum::<f64>() / n;
            let max_load: f64 = outs
                .iter()
                .map(|o| *o.load.iter().max().expect("stations") as f64)
                .sum::<f64>()
                / n;
            let conflicts: f64 = outs.iter().map(|o| o.conflicts.len() as f64).sum::<f64>() / n;
            t.push(vec![
                Value::Str(planner.name().into()),
                Value::Str(medium.name().into()),
                Value::Num(planned_u),
                Value::Num(total_u),
                Value::Num(mean_d),
                Value::Num(max_load),
                Value::Num(conflicts),
            ]);
        }
    }
    t
}

fn campaign_sweep_table(cfg: &ReproConfig) -> Table {
    let reps = cfg.reps(6);
    let mut t = Table::new(vec![
        Column::int("K").left(),
        Column::text("medium").left(),
        Column::float("mean dopt (m)", 1),
        Column::float("mean U", 4),
        Column::float("transmit-now frac", 3),
        Column::float("conflicts", 2),
    ]);
    for &k in &FLEET_SIZES {
        for medium in media() {
            let config = FleetConfig::baseline(k, 2, medium);
            let outs = FleetCampaign::new(config).replicate(cfg.seed, reps);
            let n = outs.len() as f64;
            let mean_d: f64 = outs.iter().map(|o| o.mean_d_opt().get()).sum::<f64>() / n;
            let mean_u: f64 = outs.iter().map(|o| o.mean_utility()).sum::<f64>() / n;
            let now: f64 = outs.iter().map(|o| o.transmit_now_fraction()).sum::<f64>() / n;
            let conflicts: f64 = outs.iter().map(|o| o.conflicts.len() as f64).sum::<f64>() / n;
            t.push(vec![
                Value::Num(k as f64),
                Value::Str(medium.name().into()),
                Value::Num(mean_d),
                Value::Num(mean_u),
                Value::Num(now),
                Value::Num(conflicts),
            ]);
        }
    }
    t
}

/// Render the canonical fleet request stream as JSONL — the artifact
/// behind `repro --export-fleet-trace` and the input to
/// `skyferry-loadgen --fleet-trace`.
///
/// One K=8, G=3 campaign per medium, `cfg.reps(4)` replications each,
/// concatenated TDMA-then-UD-MAC so the replay exercises both
/// contention mappings. Fully determined by `cfg.seed`/`cfg.quick`.
pub fn export_trace(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    for medium in media() {
        let mut config = FleetConfig::baseline(8, 3, medium);
        config.name = format!("export-{}", medium.name());
        let outs = FleetCampaign::new(config.clone()).replicate(cfg.seed, cfg.reps(4));
        out.push_str(&FleetTrace::from_replications(&config, &outs).to_jsonl());
    }
    out
}

/// Regenerate the fleet experiment family.
pub fn run(cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
    let mut r = ExperimentReport::new("fleet", Fleet.title());

    let sizes = fleet_size_table(store);
    let (first_t, last_t) = (sizes.rows()[0][5].clone(), sizes.rows()[4][5].clone());
    let (first_u, last_u) = (sizes.rows()[0][6].clone(), sizes.rows()[4][6].clone());
    if let (Value::Num(a), Value::Num(b), Value::Num(c), Value::Num(d)) =
        (first_t, last_t, first_u, last_u)
    {
        r.note(format!(
            "dopt shifts transmit-earlier as K grows: tdma {a:.0} m -> {b:.0} m, \
             ud-mac {c:.0} m -> {d:.0} m across K=1..16 (losing your slot \
             outweighs sharing it)"
        ));
    }
    r.note(
        "contention composes with Eq. (2) unchanged: slot share scales s(d), \
         slot-retention hazard adds lambda/v to rho"
            .to_string(),
    );
    r.table("Fleet size sweep", sizes);
    r.table("Contention models at K=8", contention_model_table(store, 8));
    r.table("Planner ablation", planner_ablation_table(cfg));
    r.table("Campaign sweep", campaign_sweep_table(cfg));
    r
}

/// Registry entry for the fleet family.
pub struct Fleet;

impl Experiment for Fleet {
    fn id(&self) -> &'static str {
        "fleet"
    }

    fn title(&self) -> &'static str {
        "Fleet contention: d* vs fleet size, TDMA vs UD-MAC, planner ablation"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
        run(cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(v: &Value) -> f64 {
        match v {
            Value::Num(x) => *x,
            _ => panic!("expected numeric cell"),
        }
    }

    #[test]
    fn dopt_shifts_transmit_earlier_as_fleet_grows() {
        // The acceptance claim: under BOTH contention models the
        // optimum moves outward (transmit earlier) monotonically in K.
        let mut store = CampaignStore::new(true);
        let t = fleet_size_table(&mut store);
        for col in [5usize, 6] {
            let mut prev = f64::NEG_INFINITY;
            for row in t.rows() {
                let d = num(&row[col]);
                assert!(
                    d >= prev - 1e-6,
                    "dopt must be non-decreasing in K (col {col}): {d} < {prev}"
                );
                prev = d;
            }
            let first = num(&t.rows()[0][col]);
            let last = num(&t.rows()[4][col]);
            assert!(
                last > first + 10.0,
                "K=16 must transmit at least 10 m earlier than K=1 (col {col})"
            );
        }
    }

    #[test]
    fn utility_falls_with_contention() {
        let mut store = CampaignStore::new(true);
        let t = fleet_size_table(&mut store);
        for col in [7usize, 8] {
            let mut prev = f64::INFINITY;
            for row in t.rows() {
                let u = num(&row[col]);
                assert!(u <= prev + 1e-12, "utility must fall with K (col {col})");
                prev = u;
            }
        }
    }

    #[test]
    fn udmac_dominates_tdma_at_every_k() {
        // Delay-tolerant priority access wastes less medium and loses
        // fewer slots, so it preserves more utility than TDMA.
        let mut store = CampaignStore::new(true);
        let t = fleet_size_table(&mut store);
        for row in t.rows().iter().skip(1) {
            assert!(num(&row[2]) > num(&row[1]), "ud-mac share > tdma share");
            assert!(num(&row[8]) >= num(&row[7]), "ud-mac U >= tdma U");
        }
    }

    #[test]
    fn hungarian_total_at_least_greedy() {
        let cfg = ReproConfig::quick();
        let t = planner_ablation_table(&cfg);
        // Rows: [greedy×tdma, greedy×ud-mac, hungarian×tdma,
        // hungarian×ud-mac]; compare per medium. Greedy's placement is
        // a feasible point of the Hungarian matching, so the guarantee
        // holds on the planned (marginal) objective — realized totals,
        // re-scored at final loads, may reorder.
        let rows = t.rows();
        for (g, h) in [(0usize, 2usize), (1, 3)] {
            assert!(
                num(&rows[h][2]) >= num(&rows[g][2]) - 1e-9,
                "hungarian must not lose to greedy on planned utility"
            );
        }
    }

    #[test]
    fn export_trace_is_valid_sorted_jsonl() {
        let cfg = ReproConfig::quick();
        let jsonl = export_trace(&cfg);
        // Two media × reps(4)=2 replications × 8 UAVs.
        assert_eq!(jsonl.lines().count(), 32);
        for line in jsonl.lines() {
            let v = skyferry_stats::json::parse(line).expect("valid JSON line");
            for key in ["t", "platform", "d0", "mdata", "rho", "speed"] {
                assert!(v.get(key).is_some(), "missing {key}");
            }
        }
        // Deterministic: same config, same bytes.
        assert_eq!(jsonl, export_trace(&cfg));
    }

    #[test]
    fn report_has_four_tables_and_notes() {
        let mut store = CampaignStore::new(true);
        let r = run(&ReproConfig::quick(), &mut store);
        assert_eq!(r.tables.len(), 4);
        assert!(!r.notes.is_empty());
    }
}
