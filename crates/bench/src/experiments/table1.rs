//! Table 1 — "Main features of our flying platforms".

use skyferry_stats::table::{Column, Table, Value};
use skyferry_uav::platform::PlatformSpec;

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// Regenerate Table 1 from the platform specifications.
pub fn run(_cfg: &ReproConfig) -> ExperimentReport {
    let a = PlatformSpec::airplane();
    let q = PlatformSpec::quadrocopter();

    let yes_no = |b: bool| Value::from(if b { "Yes" } else { "No" });
    let mut t = Table::new(vec![
        Column::text("Feature"),
        Column::text("Airplane"),
        Column::text("Quadrocopter"),
    ]);
    t.push(vec![
        "Hovering".into(),
        yes_no(a.can_hover),
        yes_no(q.can_hover),
    ]);
    t.push(vec![
        "Size".into(),
        format!("Wingspan: {:.0} cm", a.size_m * 100.0).into(),
        format!(
            "Frame: {:.0} cm by {:.0} cm",
            q.size_m * 100.0,
            q.size_m * 100.0
        )
        .into(),
    ]);
    t.push(vec![
        "Weight".into(),
        format!("{:.0} g", a.weight_kg * 1000.0).into(),
        format!("{:.1} kg", q.weight_kg).into(),
    ]);
    t.push(vec![
        "Battery autonomy".into(),
        format!("{:.0} minutes", a.battery_autonomy_s / 60.0).into(),
        format!("{:.0} minutes", q.battery_autonomy_s / 60.0).into(),
    ]);
    t.push(vec![
        "Cruise speed".into(),
        format!("{:.0} m/s", a.cruise_speed_mps).into(),
        format!("{:.1} m/s in auto mode", q.cruise_speed_mps).into(),
    ]);
    t.push(vec![
        "Maximum safe altitude".into(),
        format!("{:.0} m", a.max_altitude_m).into(),
        format!("{:.0} m", q.max_altitude_m).into(),
    ]);

    let mut derived = Table::new(vec![
        Column::text("Derived quantity"),
        Column::text("Airplane"),
        Column::text("Quadrocopter"),
    ]);
    derived.push(vec![
        "Range on battery (km)".into(),
        format!("{:.1}", a.range_on_battery().get() / 1000.0).into(),
        format!("{:.1}", q.range_on_battery().get() / 1000.0).into(),
    ]);
    derived.push(vec![
        "Paper failure rate rho (1/m)".into(),
        format!("{:.2e}", a.paper_failure_rate_per_m).into(),
        format!("{:.2e}", q.paper_failure_rate_per_m).into(),
    ]);

    let mut r = ExperimentReport::new("table1", Table1.title());
    r.table("Table 1", t);
    r.table("Section 4 derivations", derived);
    r.note("rho is the inverse of the distance flyable before battery depletion (Section 4)");
    r
}

/// Registry entry for Table 1.
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Main features of the flying platforms"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cfg: &ReproConfig, _store: &mut CampaignStore) -> ExperimentReport {
        run(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_all_six_rows() {
        let r = run(&ReproConfig::quick());
        let (_, t) = &r.tables[0];
        assert_eq!(t.num_rows(), 6);
        let text = t.render_text();
        for expect in [
            "Wingspan: 80 cm",
            "Frame: 64 cm by 64 cm",
            "500 g",
            "1.7 kg",
            "30 minutes",
            "20 minutes",
            "10 m/s",
            "4.5 m/s in auto mode",
            "300 m",
            "100 m",
        ] {
            assert!(text.contains(expect), "missing {expect:?} in:\n{text}");
        }
    }

    #[test]
    fn derived_rho_present() {
        let r = run(&ReproConfig::quick());
        let text = r.render();
        assert!(
            text.contains("1.11e-4") || text.contains("1.11e-04"),
            "{text}"
        );
        assert!(
            text.contains("2.46e-4") || text.contains("2.46e-04"),
            "{text}"
        );
    }
}
