//! Table 1 — "Main features of our flying platforms".

use skyferry_stats::table::TextTable;
use skyferry_uav::platform::PlatformSpec;

use crate::report::{ExperimentReport, ReproConfig};

/// Regenerate Table 1 from the platform specifications.
pub fn run(_cfg: &ReproConfig) -> ExperimentReport {
    let a = PlatformSpec::airplane();
    let q = PlatformSpec::quadrocopter();

    let mut t = TextTable::new(&["Feature", "Airplane", "Quadrocopter"]);
    t.row(&[
        "Hovering",
        if a.can_hover { "Yes" } else { "No" },
        if q.can_hover { "Yes" } else { "No" },
    ]);
    t.row(&[
        "Size",
        &format!("Wingspan: {:.0} cm", a.size_m * 100.0),
        &format!(
            "Frame: {:.0} cm by {:.0} cm",
            q.size_m * 100.0,
            q.size_m * 100.0
        ),
    ]);
    t.row(&[
        "Weight",
        &format!("{:.0} g", a.weight_kg * 1000.0),
        &format!("{:.1} kg", q.weight_kg),
    ]);
    t.row(&[
        "Battery autonomy",
        &format!("{:.0} minutes", a.battery_autonomy_s / 60.0),
        &format!("{:.0} minutes", q.battery_autonomy_s / 60.0),
    ]);
    t.row(&[
        "Cruise speed",
        &format!("{:.0} m/s", a.cruise_speed_mps),
        &format!("{:.1} m/s in auto mode", q.cruise_speed_mps),
    ]);
    t.row(&[
        "Maximum safe altitude",
        &format!("{:.0} m", a.max_altitude_m),
        &format!("{:.0} m", q.max_altitude_m),
    ]);

    let mut derived = TextTable::new(&["Derived quantity", "Airplane", "Quadrocopter"]);
    derived.row(&[
        "Range on battery (km)",
        &format!("{:.1}", a.range_on_battery_m() / 1000.0),
        &format!("{:.1}", q.range_on_battery_m() / 1000.0),
    ]);
    derived.row(&[
        "Paper failure rate rho (1/m)",
        &format!("{:.2e}", a.paper_failure_rate_per_m),
        &format!("{:.2e}", q.paper_failure_rate_per_m),
    ]);

    let mut r = ExperimentReport::new("table1", "Main features of the flying platforms");
    r.table("Table 1", t);
    r.table("Section 4 derivations", derived);
    r.note("rho is the inverse of the distance flyable before battery depletion (Section 4)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_all_six_rows() {
        let r = run(&ReproConfig::quick());
        let (_, t) = &r.tables[0];
        assert_eq!(t.num_rows(), 6);
        let text = t.render();
        for expect in [
            "Wingspan: 80 cm",
            "Frame: 64 cm by 64 cm",
            "500 g",
            "1.7 kg",
            "30 minutes",
            "20 minutes",
            "10 m/s",
            "4.5 m/s in auto mode",
            "300 m",
            "100 m",
        ] {
            assert!(text.contains(expect), "missing {expect:?} in:\n{text}");
        }
    }

    #[test]
    fn derived_rho_present() {
        let r = run(&ReproConfig::quick());
        let text = r.render();
        assert!(
            text.contains("1.11e-4") || text.contains("1.11e-04"),
            "{text}"
        );
        assert!(
            text.contains("2.46e-4") || text.contains("2.46e-04"),
            "{text}"
        );
    }
}
