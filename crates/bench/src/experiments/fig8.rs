//! Figure 8 — `U(d)` for various failure rates ρ, both baselines.
//!
//! Left panel: airplane scenario (d0 = 300 m); right panel: quadrocopter
//! scenario (d0 = 100 m). Claims: the optimum distance grows with ρ, the
//! curves are approximately concave for ρ ≪ 1, and the baseline ρ values
//! are the battery-range derivations.

use skyferry_core::scenario::Scenario;
use skyferry_core::sweep::{paper_rhos, rho_sweep, RhoCurve};
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// Curve resolution (points over `[d_min, d0]`).
const POINTS: usize = 15;

/// Compute both panels.
pub fn simulate() -> (Vec<RhoCurve>, Vec<RhoCurve>) {
    let air = rho_sweep(
        &Scenario::airplane_baseline(),
        &paper_rhos::AIRPLANE,
        POINTS,
    );
    let quad = rho_sweep(
        &Scenario::quadrocopter_baseline(),
        &paper_rhos::QUADROCOPTER,
        POINTS,
    );
    (air, quad)
}

fn panel_table(curves: &[RhoCurve]) -> Table {
    let mut columns = vec![Column::int("d (m)").left()];
    columns.extend(
        curves
            .iter()
            .map(|c| Column::float(format!("rho={:.2e}", c.rho_per_m), 4)),
    );
    let mut t = Table::new(columns);
    for i in 0..POINTS {
        let d = curves[0].curve[i].0;
        let mut cells = vec![Value::Num(d)];
        cells.extend(curves.iter().map(|c| Value::Num(c.curve[i].1)));
        t.push(cells);
    }
    t
}

fn maxima_table(curves: &[RhoCurve]) -> Table {
    let mut t = Table::new(vec![
        Column::sci("rho (1/m)", 2).left(),
        Column::float("dopt (m)", 1),
        Column::float("U(dopt)", 4),
        Column::float("Cdelay (s)", 1),
    ]);
    for c in curves {
        t.push(vec![
            Value::Num(c.rho_per_m),
            c.optimum.d_opt.into(),
            c.optimum.utility.into(),
            c.optimum.cdelay_s().into(),
        ]);
    }
    t
}

/// Regenerate Figure 8.
pub fn run(_cfg: &ReproConfig) -> ExperimentReport {
    let (air, quad) = simulate();
    let mut r = ExperimentReport::new("fig8", Fig8.title());

    let air_span = (
        air.first().expect("non-empty").optimum.d_opt,
        air.last().expect("non-empty").optimum.d_opt,
    );
    let quad_span = (
        quad.first().expect("non-empty").optimum.d_opt,
        quad.last().expect("non-empty").optimum.d_opt,
    );
    r.note(format!(
        "airplane dopt grows {:.0} m → {:.0} m across rho (paper: dopt increases with rho)",
        air_span.0, air_span.1
    ));
    r.note(format!(
        "quadrocopter dopt grows {:.0} m → {:.0} m across rho",
        quad_span.0, quad_span.1
    ));
    r.table("Airplane panel U(d)", panel_table(&air));
    r.table("Airplane maxima", maxima_table(&air));
    r.table("Quadrocopter panel U(d)", panel_table(&quad));
    r.table("Quadrocopter maxima", maxima_table(&quad));
    r
}

/// Registry entry for Figure 8.
pub struct Fig8;

impl Experiment for Fig8 {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn title(&self) -> &'static str {
        "U(d) for various failure rates (both baselines)"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, cfg: &ReproConfig, _store: &mut CampaignStore) -> ExperimentReport {
        run(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dopt_grows_with_rho_in_both_panels() {
        let (air, quad) = simulate();
        for panel in [&air, &quad] {
            for w in panel.windows(2) {
                assert!(
                    w[1].optimum.d_opt >= w[0].optimum.d_opt - 1e-6,
                    "dopt not monotone in rho"
                );
            }
        }
    }

    #[test]
    fn utility_scale_matches_paper_axes() {
        // Figure 8 y-axes top out around 0.025 (airplane) and 0.04 (quad).
        let (air, quad) = simulate();
        let max_air = air
            .iter()
            .flat_map(|c| c.curve.iter().map(|&(_, u)| u))
            .fold(0.0, f64::max);
        let max_quad = quad
            .iter()
            .flat_map(|c| c.curve.iter().map(|&(_, u)| u))
            .fold(0.0, f64::max);
        assert!(
            (0.01..0.05).contains(&max_air),
            "airplane U scale {max_air}"
        );
        assert!((0.02..0.08).contains(&max_quad), "quad U scale {max_quad}");
    }

    #[test]
    fn low_rho_curves_unimodal() {
        // "U(d) can be approximated with a concave function for ρ ≪ 1":
        // at minimum the baseline curves are unimodal (one sign change of
        // the discrete slope).
        let (air, _) = simulate();
        let c = &air[0].curve;
        let mut sign_changes = 0;
        let mut prev_slope: f64 = 0.0;
        for w in c.windows(2) {
            let slope = w[1].1 - w[0].1;
            if prev_slope != 0.0 && slope.signum() != prev_slope.signum() {
                sign_changes += 1;
            }
            if slope != 0.0 {
                prev_slope = slope;
            }
        }
        assert!(sign_changes <= 1, "{sign_changes} slope sign changes");
    }

    #[test]
    fn report_has_four_tables() {
        let r = run(&ReproConfig::quick());
        assert_eq!(r.tables.len(), 4);
    }
}
