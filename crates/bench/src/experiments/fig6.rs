//! Figure 6 — best fixed MCS vs auto PHY rate between the airplanes.
//!
//! The paper fixes the PHY rate to MCS1, MCS2, MCS3 and MCS8 and compares
//! the best of them against auto rate at each distance 20–260 m. Claims:
//! the best fixed MCS beats auto rate by "100 % or more" at each
//! distance; STBC rates (MCS1–3) win up to ≈220 m; the SDM rate MCS8
//! takes over at the far edge (240–260 m).
//!
//! The auto-rate column is the same campaign as Figure 5, so with a shared
//! [`CampaignStore`] its 13 cells are served from the Figure 5 sweep.

use skyferry_net::campaign::{CampaignConfig, ControllerKind};
use skyferry_phy::mcs::Mcs;
use skyferry_stats::quantile::median;
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;

/// The fixed MCS set the paper evaluates.
pub const FIXED_MCS: [u8; 4] = [1, 2, 3, 8];

/// The measured distances of Figure 6.
pub fn distances() -> Vec<f64> {
    (1..=13).map(|i| 20.0 * i as f64).collect()
}

/// One distance's medians.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Distance, metres.
    pub d_m: f64,
    /// Auto-rate median, Mb/s.
    pub auto_mbps: f64,
    /// Median per fixed MCS, Mb/s (same order as [`FIXED_MCS`]).
    pub fixed_mbps: Vec<f64>,
}

impl Fig6Row {
    /// Index into [`FIXED_MCS`] of the best fixed rate.
    pub fn best_fixed_index(&self) -> usize {
        self.fixed_mbps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0
    }

    /// The best fixed median, Mb/s.
    pub fn best_fixed_mbps(&self) -> f64 {
        self.fixed_mbps[self.best_fixed_index()]
    }
}

/// Run the Figure 6 campaign.
pub fn simulate(cfg: &ReproConfig, store: &mut CampaignStore) -> Vec<Fig6Row> {
    let base = super::fig5::campaign(cfg);
    let reps = cfg.reps(6);
    let distances = distances();
    // One batch over the full (controller × distance) grid: the store
    // fills every missing cell through one flattened parallel pool, and
    // per-cell results do not depend on how tasks are scheduled.
    let mut requests: Vec<(CampaignConfig, f64)> = distances.iter().map(|&d| (base, d)).collect();
    for &m in &FIXED_MCS {
        let c = CampaignConfig {
            controller: ControllerKind::Fixed(Mcs::new(m)),
            ..base
        };
        requests.extend(distances.iter().map(|&d| (c, d)));
    }
    store.ensure(&requests, reps);
    distances
        .iter()
        .map(|&d| {
            let auto = median(&store.samples(&base, d, reps)).expect("non-empty");
            let fixed_mbps = FIXED_MCS
                .iter()
                .map(|&m| {
                    let c = CampaignConfig {
                        controller: ControllerKind::Fixed(Mcs::new(m)),
                        ..base
                    };
                    median(&store.samples(&c, d, reps)).expect("non-empty")
                })
                .collect();
            Fig6Row {
                d_m: d,
                auto_mbps: auto,
                fixed_mbps,
            }
        })
        .collect()
}

/// Regenerate Figure 6.
pub fn run(cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
    let rows = simulate(cfg, store);
    let mut t = Table::new(vec![
        Column::int("d (m)").left(),
        Column::float("autorate", 1),
        Column::float("MCS1", 1),
        Column::float("MCS2", 1),
        Column::float("MCS3", 1),
        Column::float("MCS8", 1),
        Column::text("best").right(),
        Column::float("best/auto", 2),
    ]);
    for row in &rows {
        let best = row.best_fixed_mbps();
        let ratio = if row.auto_mbps > 0.1 {
            best / row.auto_mbps
        } else {
            f64::INFINITY
        };
        t.push(vec![
            Value::Num(row.d_m),
            row.auto_mbps.into(),
            row.fixed_mbps[0].into(),
            row.fixed_mbps[1].into(),
            row.fixed_mbps[2].into(),
            row.fixed_mbps[3].into(),
            format!("MCS{}", FIXED_MCS[row.best_fixed_index()]).into(),
            if ratio.is_finite() {
                Value::Num(ratio)
            } else {
                "inf".into()
            },
        ]);
    }

    let mut r = ExperimentReport::new("fig6", Fig6.title());

    // Paper claim 1: best fixed ≥ auto everywhere, typically ≥ 2×.
    let wins = rows
        .iter()
        .filter(|row| row.best_fixed_mbps() >= row.auto_mbps)
        .count();
    let mean_gain: f64 = {
        let gains: Vec<f64> = rows
            .iter()
            .filter(|row| row.auto_mbps > 0.5)
            .map(|row| row.best_fixed_mbps() / row.auto_mbps)
            .collect();
        gains.iter().sum::<f64>() / gains.len().max(1) as f64
    };
    r.note(format!(
        "best fixed MCS beats auto rate at {wins}/{} distances, mean gain {mean_gain:.1}x (paper: '100% or more' → ≥2x)",
        rows.len()
    ));

    // Paper claim 2: STBC single-stream wins near, SDM MCS8 at the edge.
    let far_winner = FIXED_MCS[rows.last().expect("non-empty").best_fixed_index()];
    let near_winner = FIXED_MCS[rows[0].best_fixed_index()];
    r.note(format!(
        "winner at 20 m: MCS{near_winner} (paper: MCS3, an STBC rate); winner at 260 m: MCS{far_winner} (paper: MCS8, the SDM rate)"
    ));
    r.table("Figure 6 medians", t);
    r
}

/// Registry entry for Figure 6.
pub struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn title(&self) -> &'static str {
        "Best fixed MCS vs auto PHY rate between the airplanes (medians, Mb/s)"
    }

    fn deps(&self) -> &'static [&'static str] {
        &[
            "airplane/autorate",
            "airplane/mcs1",
            "airplane/mcs2",
            "airplane/mcs3",
            "airplane/mcs8",
        ]
    }

    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
        run(cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate_fresh(cfg: &ReproConfig) -> Vec<Fig6Row> {
        simulate(cfg, &mut CampaignStore::new(cfg.quick))
    }

    #[test]
    fn best_fixed_beats_autorate_broadly() {
        let rows = simulate_fresh(&ReproConfig::quick());
        let wins = rows
            .iter()
            .filter(|r| r.best_fixed_mbps() >= r.auto_mbps * 0.95)
            .count();
        assert!(
            wins * 10 >= rows.len() * 8,
            "fixed won only {wins}/{}",
            rows.len()
        );
    }

    #[test]
    fn autorate_leaves_large_gains_at_mid_range() {
        let rows = simulate_fresh(&ReproConfig::quick());
        // Average gain over usable distances must be substantial.
        let gains: Vec<f64> = rows
            .iter()
            .filter(|r| r.auto_mbps > 0.5)
            .map(|r| r.best_fixed_mbps() / r.auto_mbps)
            .collect();
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!(mean > 1.3, "mean gain {mean:.2} too small for Figure 6");
    }

    #[test]
    fn single_stream_wins_near_sdm_wins_far() {
        let rows = simulate_fresh(&ReproConfig::quick());
        let near = FIXED_MCS[rows[0].best_fixed_index()];
        assert!(near != 8, "near winner must be an STBC rate, got MCS{near}");
        let far = FIXED_MCS[rows.last().unwrap().best_fixed_index()];
        assert_eq!(far, 8, "far winner must be MCS8");
    }

    #[test]
    fn shares_the_fig5_campaign_cells() {
        // Figure 6's auto-rate column is the Figure 5 sweep: after fig5
        // runs, every auto cell at 20–260 m must be a hit.
        let cfg = ReproConfig::quick();
        let mut store = CampaignStore::new(cfg.quick);
        super::super::fig5::simulate(&cfg, &mut store);
        let miss_before = store.misses();
        let rows = simulate(&cfg, &mut store);
        assert_eq!(rows.len(), 13);
        // The 13 auto cells were already present; only the 4×13 fixed-MCS
        // cells are new.
        assert_eq!(store.misses() - miss_before, 4 * 13);
        assert!(store.hits() >= 13);
    }

    #[test]
    fn report_has_13_rows() {
        let cfg = ReproConfig::quick();
        let r = run(&cfg, &mut CampaignStore::new(cfg.quick));
        let (_, t) = &r.tables[0];
        assert_eq!(t.num_rows(), 13);
    }
}
