//! Figure 5 — throughput vs distance between two airplanes (boxplots).
//!
//! UDP iperf between two flying Swinglets at 20–320 m, auto PHY rate.
//! The paper's reading: median degrades with distance, ≈ 20 Mb/s at
//! short range ("more the one expected of 802.11g") despite 802.11n
//! features, with very large per-distance variability.

use skyferry_net::campaign::{CampaignConfig, ControllerKind};
use skyferry_phy::presets::ChannelPreset;
use skyferry_sim::time::SimDuration;
use skyferry_stats::boxplot::BoxplotSummary;
use skyferry_stats::table::{Column, Table, Value};

use super::Experiment;
use crate::report::{ExperimentReport, ReproConfig};
use crate::store::CampaignStore;
use skyferry_units::MetersPerSec;

/// The airplane campaign's relative speed (mid paper window), m/s.
pub const RELATIVE_SPEED_MPS: f64 = 20.0;

/// The measured distances of Figure 5.
pub fn distances() -> Vec<f64> {
    (1..=16).map(|i| 20.0 * i as f64).collect()
}

/// The airplane iperf campaign shared with `fig6` and `fits`.
pub fn campaign(cfg: &ReproConfig) -> CampaignConfig {
    CampaignConfig {
        preset: ChannelPreset::airplane(MetersPerSec::new(RELATIVE_SPEED_MPS)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(cfg.secs(20)),
        seed: cfg.seed,
    }
}

/// Run the campaign: per-distance throughput samples.
pub fn simulate(cfg: &ReproConfig, store: &mut CampaignStore) -> Vec<(f64, Vec<f64>)> {
    store.throughput_vs_distance(&campaign(cfg), &distances(), cfg.reps(6))
}

/// Render the boxplot table from campaign samples.
pub fn boxplot_table(rows: &[(f64, Vec<f64>)]) -> Table {
    let mut t = Table::new(vec![
        Column::int("d (m)").left(),
        Column::int("n"),
        Column::float("min", 1),
        Column::float("whisk-", 1),
        Column::float("q1", 1),
        Column::float("median", 1),
        Column::float("q3", 1),
        Column::float("whisk+", 1),
        Column::float("max", 1),
    ]);
    for (d, samples) in rows {
        let b = BoxplotSummary::of(samples).expect("non-empty campaign");
        t.push(vec![
            Value::Num(*d),
            b.n.into(),
            b.min.into(),
            b.whisker_low.into(),
            b.q1.into(),
            b.median.into(),
            b.q3.into(),
            b.whisker_high.into(),
            b.max.into(),
        ]);
    }
    t
}

/// Regenerate Figure 5.
pub fn run(cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
    let rows = simulate(cfg, store);
    let mut r = ExperimentReport::new("fig5", Fig5.title());

    let medians: Vec<(f64, f64)> = rows
        .iter()
        .map(|(d, s)| (*d, skyferry_stats::quantile::median(s).expect("non-empty")))
        .collect();
    let near = medians[0].1;
    let far = medians[medians.len() - 1].1;
    r.note(format!(
        "median at 20 m: {near:.1} Mb/s (paper: ≈20–25, '802.11g-like' despite 802.11n)"
    ));
    r.note(format!(
        "median at 320 m: {far:.1} Mb/s (paper: a few Mb/s)"
    ));
    let monotonic_pairs = medians
        .windows(2)
        .filter(|w| w[1].1 <= w[0].1 + 1.0)
        .count();
    r.note(format!(
        "degradation with distance: {monotonic_pairs}/{} adjacent medians non-increasing (±1 Mb/s)",
        medians.len() - 1
    ));
    r.table("Figure 5 boxplots (Mb/s)", boxplot_table(&rows));
    r
}

/// Registry entry for Figure 5.
pub struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Throughput vs distance between two airplanes (auto rate, boxplots)"
    }

    fn deps(&self) -> &'static [&'static str] {
        &["airplane/autorate"]
    }

    fn run(&self, cfg: &ReproConfig, store: &mut CampaignStore) -> ExperimentReport {
        run(cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_stats::quantile::median;

    fn simulate_fresh(cfg: &ReproConfig) -> Vec<(f64, Vec<f64>)> {
        simulate(cfg, &mut CampaignStore::new(cfg.quick))
    }

    #[test]
    fn covers_20_to_320() {
        let d = distances();
        assert_eq!(d.len(), 16);
        assert_eq!(d[0], 20.0);
        assert_eq!(d[15], 320.0);
    }

    #[test]
    fn throughput_degrades_with_distance() {
        // Robust to shadowing noise at quick-mode sample counts: compare
        // the mean of the near-half medians against the far half.
        let rows = simulate_fresh(&ReproConfig::quick());
        let medians: Vec<f64> = rows.iter().map(|(_, s)| median(s).unwrap()).collect();
        let near: f64 = medians[..8].iter().sum::<f64>() / 8.0;
        let far: f64 = medians[8..].iter().sum::<f64>() / 8.0;
        assert!(near > 1.5 * far, "near={near:.1} far={far:.1}");
        // And the endpoints respect the trend individually.
        assert!(
            medians[0] > medians[15],
            "m20={} m320={}",
            medians[0],
            medians[15]
        );
    }

    #[test]
    fn short_range_is_80211g_like_not_n_like() {
        // The whole point of Section 3.1: ~20 Mb/s, not ~176 Mb/s.
        let rows = simulate_fresh(&ReproConfig::quick());
        let m20 = median(&rows[0].1).unwrap();
        assert!((12.0..45.0).contains(&m20), "m20={m20}");
    }

    #[test]
    fn airplane_variability_is_large() {
        // Figure 5's boxes/whiskers are wide: at mid distance the spread
        // must be comparable to the median itself.
        let rows = simulate_fresh(&ReproConfig::quick());
        let (d, samples) = &rows[4]; // 100 m
        let b = BoxplotSummary::of(samples).unwrap();
        assert!(
            b.spread() > 0.5 * b.median.max(1.0),
            "at {d} m: spread {:.1} vs median {:.1}",
            b.spread(),
            b.median
        );
    }

    #[test]
    fn report_renders_all_rows() {
        let cfg = ReproConfig::quick();
        let r = run(&cfg, &mut CampaignStore::new(cfg.quick));
        let (_, t) = &r.tables[0];
        assert_eq!(t.num_rows(), 16);
    }
}
