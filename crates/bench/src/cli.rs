//! Argument parsing for the `repro` binary.
//!
//! Kept in the library so the flag grammar is unit-testable without
//! spawning the binary:
//!
//! ```text
//! repro [--quick] [--seed N] [--threads N] [--out DIR] [--json]
//!       [--trace FILE] [--deterministic] [EXPERIMENT...]
//! repro --list
//! repro --verify [--quick] [--seed N] [--threads N] [EXPERIMENT...]
//! repro --bench-parallel FILE [--quick] [--seed N] [--threads N]
//! repro --compile-policy FILE [--quick] [--seed N] [--threads N]
//! repro --verify-policy FILE
//! repro --export-fleet-trace FILE [--quick] [--seed N]
//! ```

use std::path::PathBuf;

use crate::report::ReproConfig;

/// Parsed `repro` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Reduced replication/duration (`--quick`).
    pub quick: bool,
    /// Master campaign seed (`--seed N`).
    pub seed: u64,
    /// Worker-pool cap (`--threads N`, `0` = one per hardware thread).
    pub threads: usize,
    /// CSV output directory (`--out DIR`).
    pub out: Option<PathBuf>,
    /// Serial-vs-parallel timing output path (`--bench-parallel FILE`).
    pub bench_parallel: Option<PathBuf>,
    /// Compiled-policy artifact output path (`--compile-policy FILE`;
    /// the grid is [`quick`](CliArgs::quick)-dependent).
    pub compile_policy: Option<PathBuf>,
    /// Policy artifact to audit against the exact optimizer
    /// (`--verify-policy FILE`).
    pub verify_policy: Option<PathBuf>,
    /// Fleet request-stream JSONL output path
    /// (`--export-fleet-trace FILE`), replayable with
    /// `skyferry-loadgen --fleet-trace`.
    pub export_fleet_trace: Option<PathBuf>,
    /// Execution trace output path (`--trace FILE`; `.jsonl` = compact,
    /// anything else = Chrome `trace_event` JSON for Perfetto).
    pub trace: Option<PathBuf>,
    /// Virtual trace clock (`--deterministic`): span timestamps come
    /// from the deterministic tick clock so traces are byte-identical
    /// across runs and thread counts.
    pub deterministic: bool,
    /// Diff regenerated tables against the checked-in goldens
    /// (`--verify`).
    pub verify: bool,
    /// Print the campaign-store footer as one JSON line on stdout
    /// (`--json`).
    pub json: bool,
    /// List the registered experiments and exit (`--list`).
    pub list: bool,
    /// Positional experiment ids (empty = all, in registry order).
    pub experiments: Vec<String>,
}

impl Default for CliArgs {
    fn default() -> Self {
        let cfg = ReproConfig::default();
        CliArgs {
            quick: false,
            seed: cfg.seed,
            threads: 0,
            out: None,
            bench_parallel: None,
            compile_policy: None,
            verify_policy: None,
            export_fleet_trace: None,
            trace: None,
            deterministic: false,
            verify: false,
            json: false,
            list: false,
            experiments: Vec::new(),
        }
    }
}

impl CliArgs {
    /// The harness configuration these flags describe.
    pub fn to_config(&self) -> ReproConfig {
        ReproConfig {
            seed: self.seed,
            quick: self.quick,
            out_dir: self.out.clone(),
        }
    }
}

/// A rejected command line (exit code 2 territory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` was requested: not an error, but the caller should print
    /// usage and exit 0-adjacent (we use exit 2 like the old harness).
    HelpRequested,
    /// An unrecognised flag.
    UnknownFlag(String),
    /// A flag that needs a value reached the end of the argument list.
    MissingValue(&'static str),
    /// A flag value that failed to parse.
    BadValue(&'static str, String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::HelpRequested => write!(f, "help requested"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            CliError::MissingValue(flag) => write!(f, "flag '{flag}' needs a value"),
            CliError::BadValue(flag, v) => {
                write!(f, "flag '{flag}' got unparsable value '{v}'")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parse a `repro` argument list (without the program name).
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliArgs, CliError> {
    let mut out = CliArgs::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => out.quick = true,
            "--verify" => out.verify = true,
            "--json" => out.json = true,
            "--list" => out.list = true,
            "--seed" => {
                let raw = args.next().ok_or(CliError::MissingValue("--seed"))?;
                out.seed = raw.parse().map_err(|_| CliError::BadValue("--seed", raw))?;
            }
            "--threads" => {
                let raw = args.next().ok_or(CliError::MissingValue("--threads"))?;
                out.threads = raw
                    .parse()
                    .map_err(|_| CliError::BadValue("--threads", raw))?;
            }
            "--out" => {
                let dir = args.next().ok_or(CliError::MissingValue("--out"))?;
                out.out = Some(dir.into());
            }
            "--bench-parallel" => {
                let path = args
                    .next()
                    .ok_or(CliError::MissingValue("--bench-parallel"))?;
                out.bench_parallel = Some(path.into());
            }
            "--compile-policy" => {
                let path = args
                    .next()
                    .ok_or(CliError::MissingValue("--compile-policy"))?;
                out.compile_policy = Some(path.into());
            }
            "--verify-policy" => {
                let path = args
                    .next()
                    .ok_or(CliError::MissingValue("--verify-policy"))?;
                out.verify_policy = Some(path.into());
            }
            "--export-fleet-trace" => {
                let path = args
                    .next()
                    .ok_or(CliError::MissingValue("--export-fleet-trace"))?;
                out.export_fleet_trace = Some(path.into());
            }
            "--trace" => {
                let path = args.next().ok_or(CliError::MissingValue("--trace"))?;
                out.trace = Some(path.into());
            }
            "--deterministic" => out.deterministic = true,
            "--help" | "-h" => return Err(CliError::HelpRequested),
            other if other.starts_with('-') => {
                return Err(CliError::UnknownFlag(other.to_string()));
            }
            other => out.experiments.push(other.to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<CliArgs, CliError> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_line_is_all_defaults() {
        let a = parse_strs(&[]).unwrap();
        assert_eq!(a, CliArgs::default());
        assert!(!a.quick);
        assert_eq!(a.seed, ReproConfig::default().seed);
        assert_eq!(a.threads, 0);
        assert!(a.experiments.is_empty());
    }

    #[test]
    fn flags_and_positionals_mix() {
        let a = parse_strs(&[
            "--quick",
            "fig5",
            "--seed",
            "42",
            "--threads",
            "3",
            "--out",
            "csv",
            "fig6",
        ])
        .unwrap();
        assert!(a.quick);
        assert_eq!(a.seed, 42);
        assert_eq!(a.threads, 3);
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("csv")));
        assert_eq!(a.experiments, vec!["fig5", "fig6"]);
    }

    #[test]
    fn verify_and_list_flags() {
        assert!(parse_strs(&["--verify"]).unwrap().verify);
        assert!(parse_strs(&["--list"]).unwrap().list);
        assert!(!parse_strs(&[]).unwrap().verify);
    }

    #[test]
    fn json_footer_flag() {
        assert!(parse_strs(&["--json"]).unwrap().json);
        assert!(!parse_strs(&[]).unwrap().json);
        assert!(parse_strs(&["--json", "--quick", "fig5"]).unwrap().quick);
    }

    #[test]
    fn bench_parallel_takes_a_path() {
        let a = parse_strs(&["--bench-parallel", "bench.json"]).unwrap();
        assert_eq!(
            a.bench_parallel.as_deref(),
            Some(std::path::Path::new("bench.json"))
        );
        assert_eq!(
            parse_strs(&["--bench-parallel"]),
            Err(CliError::MissingValue("--bench-parallel"))
        );
    }

    #[test]
    fn policy_flags_take_paths() {
        let a = parse_strs(&["--compile-policy", "policy.bin", "--quick"]).unwrap();
        assert_eq!(
            a.compile_policy.as_deref(),
            Some(std::path::Path::new("policy.bin"))
        );
        assert!(a.quick);
        assert_eq!(a.verify_policy, None);
        let a = parse_strs(&["--verify-policy", "policy.bin"]).unwrap();
        assert_eq!(
            a.verify_policy.as_deref(),
            Some(std::path::Path::new("policy.bin"))
        );
        assert_eq!(
            parse_strs(&["--compile-policy"]),
            Err(CliError::MissingValue("--compile-policy"))
        );
        assert_eq!(
            parse_strs(&["--verify-policy"]),
            Err(CliError::MissingValue("--verify-policy"))
        );
    }

    #[test]
    fn export_fleet_trace_takes_a_path() {
        let a = parse_strs(&["--export-fleet-trace", "fleet.jsonl", "--quick"]).unwrap();
        assert_eq!(
            a.export_fleet_trace.as_deref(),
            Some(std::path::Path::new("fleet.jsonl"))
        );
        assert!(a.quick);
        assert_eq!(
            parse_strs(&["--export-fleet-trace"]),
            Err(CliError::MissingValue("--export-fleet-trace"))
        );
        assert_eq!(parse_strs(&[]).unwrap().export_fleet_trace, None);
    }

    #[test]
    fn trace_flags() {
        let a = parse_strs(&["--trace", "repro.trace.json", "--deterministic"]).unwrap();
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("repro.trace.json"))
        );
        assert!(a.deterministic);
        let a = parse_strs(&[]).unwrap();
        assert_eq!(a.trace, None);
        assert!(!a.deterministic);
        assert_eq!(
            parse_strs(&["--trace"]),
            Err(CliError::MissingValue("--trace"))
        );
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert_eq!(
            parse_strs(&["--frobnicate"]),
            Err(CliError::UnknownFlag("--frobnicate".into()))
        );
        assert_eq!(
            parse_strs(&["--seed"]),
            Err(CliError::MissingValue("--seed"))
        );
        assert_eq!(
            parse_strs(&["--seed", "not-a-number"]),
            Err(CliError::BadValue("--seed", "not-a-number".into()))
        );
        assert_eq!(
            parse_strs(&["--threads", "-1"]),
            Err(CliError::BadValue("--threads", "-1".into()))
        );
        assert_eq!(parse_strs(&["-h"]), Err(CliError::HelpRequested));
    }

    #[test]
    fn to_config_copies_the_run_parameters() {
        let a = parse_strs(&["--quick", "--seed", "7", "--out", "x"]).unwrap();
        let cfg = a.to_config();
        assert!(cfg.quick);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.out_dir.as_deref(), Some(std::path::Path::new("x")));
    }
}
