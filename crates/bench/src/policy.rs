//! Offline compilation and verification of the serving policy table.
//!
//! `repro --compile-policy FILE` sweeps the full quantized decision grid
//! ([`PolicyGrid::full`], or [`PolicyGrid::quick`] with `--quick`)
//! through the exact Eq. (2) optimizer on the deterministic worker pool
//! and writes the versioned, checksummed artifact `skyferryd --policy`
//! serves, plus a human-readable `.manifest.txt` next to it.
//!
//! `repro --verify-policy FILE` is the independent auditor: it reloads
//! the artifact (exercising magic/version/checksum validation), re-solves
//! a seed-stable sample of cells with the exact optimizer and demands
//! *bitwise* agreement — the table claims to be the compiled identity of
//! the optimizer, so any drift, however small, is a failure — and then
//! probes multilinear interpolation at jittered off-centre points,
//! requiring the relative utility loss against the exact solve to stay
//! under [`INTERP_LOSS_BOUND`].

use std::path::{Path, PathBuf};

use skyferry_core::policy::{PolicyError, PolicyGrid, PolicyTable};
use skyferry_core::request::DecisionParams;
use skyferry_core::scenario::BYTES_PER_MB;
use skyferry_sim::rng::SeedStream;
use skyferry_trace::clock::monotonic_ns;

/// Exact-solve sample size for tables larger than this many cells
/// (smaller tables are verified exhaustively).
pub const VERIFY_SAMPLE: usize = 2048;

/// Off-centre interpolation probes per verification run.
pub const INTERP_PROBES: usize = 256;

/// Maximum allowed relative utility loss of an interpolated decision
/// against the exact solve at the same (off-centre) parameters. Sized to
/// the coarse [`PolicyGrid::quick`] CI grid (20 m d0 buckets, where the
/// worst probes lose ~17%); the production [`PolicyGrid::full`] grid's
/// 4–8× finer buckets come in far under it.
pub const INTERP_LOSS_BOUND: f64 = 0.25;

/// What `--compile-policy` produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileSummary {
    /// Cells solved.
    pub cells: usize,
    /// Artifact size in bytes (header + cells + checksum).
    pub bytes: usize,
    /// Build + write wall-clock, seconds.
    pub wall_s: f64,
    /// Where the manifest landed.
    pub manifest_path: PathBuf,
}

/// Why `--verify-policy` rejected a table.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyVerifyError {
    /// The artifact failed to load (the typed decode error).
    Load(PolicyError),
    /// A sampled cell's stored optimum differs from the exact solve.
    CellMismatch {
        /// Flat cell index that disagreed.
        cell: usize,
        /// Which `OptimalTransfer` field differed.
        field: &'static str,
        /// Exact-optimizer value.
        expected: f64,
        /// Value stored in the table.
        got: f64,
    },
    /// An interpolation probe lost more utility than the bound allows.
    InterpLoss {
        /// Cell whose neighbourhood was probed.
        cell: usize,
        /// Observed relative utility loss.
        loss: f64,
        /// The bound it violated ([`INTERP_LOSS_BOUND`]).
        bound: f64,
    },
}

impl std::fmt::Display for PolicyVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyVerifyError::Load(e) => write!(f, "cannot load policy table: {e}"),
            PolicyVerifyError::CellMismatch {
                cell,
                field,
                expected,
                got,
            } => write!(
                f,
                "cell {cell}: {field} disagrees with the exact optimizer \
                 (exact {expected:?}, table {got:?})"
            ),
            PolicyVerifyError::InterpLoss { cell, loss, bound } => write!(
                f,
                "interpolation near cell {cell} loses {loss:.4} relative \
                 utility (bound {bound})"
            ),
        }
    }
}

impl std::error::Error for PolicyVerifyError {}

/// What `--verify-policy` measured on a table that passed.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifySummary {
    /// Cells in the table.
    pub cells: usize,
    /// Cells re-solved exactly (all of them for small tables).
    pub sampled: usize,
    /// Off-centre interpolation probes evaluated.
    pub interp_probes: usize,
    /// Worst relative utility loss observed across the probes.
    pub max_interp_loss: f64,
}

/// Build the policy table over the quick or full grid and write the
/// artifact plus its manifest (`<out stem>.manifest.txt`).
pub fn compile_policy(out: &Path, quick: bool, seed: u64) -> Result<CompileSummary, PolicyError> {
    let grid = if quick {
        PolicyGrid::quick()
    } else {
        PolicyGrid::full()
    };
    let t0 = monotonic_ns();
    let table = PolicyTable::build(grid, seed);
    table.write_file(out)?;
    let manifest_path = out.with_extension("manifest.txt");
    std::fs::write(&manifest_path, table.manifest()).map_err(|e| PolicyError::Io(e.to_string()))?;
    Ok(CompileSummary {
        cells: table.len(),
        bytes: table.to_bytes().len(),
        wall_s: monotonic_ns().saturating_sub(t0) as f64 / 1e9,
        manifest_path,
    })
}

/// Jitter one cell-centre parameter set off-centre: each axis moves by a
/// uniform fraction of (just under) half a bucket, clamped to the grid,
/// so the point stays inside the same bucket and in range.
fn jitter_params(
    grid: &PolicyGrid,
    cell: usize,
    rng: &mut skyferry_sim::rng::DetRng,
) -> DecisionParams {
    let (platform, [d0, m, r, s]) = grid.request_of(cell);
    let wiggle = |rng: &mut skyferry_sim::rng::DetRng, x: f64, a: &skyferry_core::policy::Axis| {
        (x + rng.uniform_range(-0.49, 0.49) * a.step).clamp(a.lo_value(), a.hi_value())
    };
    DecisionParams {
        platform,
        d0_m: wiggle(rng, d0, &grid.d0),
        mdata_bytes: wiggle(rng, m, &grid.mdata) * BYTES_PER_MB,
        rho_per_m: wiggle(rng, r, &grid.rho).max(0.0),
        v_mps: wiggle(rng, s, &grid.speed),
    }
}

/// Load `path` and audit it: exact bitwise agreement on a seed-stable
/// cell sample, then interpolation loss on off-centre probes.
pub fn verify_policy(path: &Path) -> Result<VerifySummary, PolicyVerifyError> {
    let table = PolicyTable::load_file(path).map_err(PolicyVerifyError::Load)?;
    let grid = table.grid;
    let cells = table.len();
    let stream = SeedStream::new(table.seed);

    let sample: Vec<usize> = if cells <= VERIFY_SAMPLE {
        (0..cells).collect()
    } else {
        let mut rng = stream.rng("policy-verify-cells");
        (0..VERIFY_SAMPLE).map(|_| rng.index(cells)).collect()
    };
    for &cell in &sample {
        let exact = grid.params_at(cell).solve();
        let got = table.value(cell);
        for (field, e, g) in [
            ("d_opt", exact.d_opt, got.d_opt),
            ("utility", exact.utility, got.utility),
            ("survival", exact.survival, got.survival),
            ("ship_s", exact.ship_s, got.ship_s),
            ("tx_s", exact.tx_s, got.tx_s),
        ] {
            if e.to_bits() != g.to_bits() {
                return Err(PolicyVerifyError::CellMismatch {
                    cell,
                    field,
                    expected: e,
                    got: g,
                });
            }
        }
    }

    let mut rng = stream.rng("policy-verify-interp");
    let mut max_interp_loss = 0.0f64;
    for _ in 0..INTERP_PROBES {
        let cell = rng.index(cells);
        let p = jitter_params(&grid, cell, &mut rng);
        let interp = match table.interpolate(&p) {
            Some(i) => i,
            // Clamping keeps probes in range; a `None` here would mean
            // the grid disagrees with itself, which the cell sample
            // above would already have caught.
            None => continue,
        };
        let exact = p.solve();
        let loss = (exact.utility - interp.utility).abs() / exact.utility.max(f64::MIN_POSITIVE);
        max_interp_loss = max_interp_loss.max(loss);
        if loss > INTERP_LOSS_BOUND {
            return Err(PolicyVerifyError::InterpLoss {
                cell,
                loss,
                bound: INTERP_LOSS_BOUND,
            });
        }
    }

    Ok(VerifySummary {
        cells,
        sampled: sample.len(),
        interp_probes: INTERP_PROBES,
        max_interp_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_core::policy::Axis;

    #[test]
    fn compile_then_verify_round_trips() {
        let dir = std::env::temp_dir().join("skyferry-policy-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("quick.bin");
        let summary = compile_policy(&out, true, 0x5AFE).expect("compile");
        assert_eq!(summary.cells, PolicyGrid::quick().cells());
        assert!(summary.bytes > 128);
        assert!(summary.manifest_path.exists());
        let manifest = std::fs::read_to_string(&summary.manifest_path).expect("manifest");
        assert!(manifest.contains("format version 1"));

        let v = verify_policy(&out).expect("table is its own optimizer");
        assert_eq!(v.cells, summary.cells);
        assert_eq!(v.sampled, VERIFY_SAMPLE.min(v.cells));
        assert_eq!(v.interp_probes, INTERP_PROBES);
        assert!(v.max_interp_loss <= INTERP_LOSS_BOUND);
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&summary.manifest_path).ok();
    }

    #[test]
    fn verify_rejects_a_doctored_cell() {
        let dir = std::env::temp_dir().join("skyferry-policy-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("doctored.bin");
        // 270 cells, under VERIFY_SAMPLE, so every cell (including the
        // doctored one) is re-solved.
        let grid = PolicyGrid::new(
            Axis::from_range(20.0, 20.0, 100.0),
            Axis::from_range(10.0, 10.0, 30.0),
            Axis::from_range(1e-4, 0.0, 2e-4),
            Axis::from_range(2.0, 2.0, 6.0),
        )
        .expect("valid grid");
        let table = PolicyTable::build(grid, 7);
        // Re-encode with one cell's utility nudged: checksum is honest,
        // so decode succeeds — only the exact re-solve can catch it.
        let mut cells: Vec<_> = (0..table.len()).map(|i| *table.value(i)).collect();
        cells[42].utility += 1e-9;
        let doctored = PolicyTable::from_cells(grid, 7, cells).expect("same grid");
        doctored.write_file(&out).expect("write");
        match verify_policy(&out) {
            Err(PolicyVerifyError::CellMismatch {
                cell: 42, field, ..
            }) => {
                assert_eq!(field, "utility");
            }
            other => panic!("doctored cell must be caught, got {other:?}"),
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn verify_surfaces_decode_errors() {
        let dir = std::env::temp_dir().join("skyferry-policy-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("garbage.bin");
        std::fs::write(&out, b"not a policy table at all").expect("write");
        assert!(matches!(
            verify_policy(&out),
            Err(PolicyVerifyError::Load(_))
        ));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn jitter_stays_in_range_and_deterministic() {
        let grid = PolicyGrid::quick();
        let stream = SeedStream::new(9);
        let mut a = stream.rng("jitter");
        let mut b = stream.rng("jitter");
        for _ in 0..200 {
            let cell = a.index(grid.cells());
            let cell_b = b.index(grid.cells());
            assert_eq!(cell, cell_b);
            let p = jitter_params(&grid, cell, &mut a);
            let q = jitter_params(&grid, cell_b, &mut b);
            assert_eq!(p.d0_m.to_bits(), q.d0_m.to_bits(), "deterministic");
            assert!(grid.cell_of(&p).is_some(), "jittered probe stays on-grid");
        }
    }
}
