//! Golden-result verification for `repro --verify`.
//!
//! Regenerated tables are diffed cell by cell against the checked-in
//! CSV artifacts under `results/` (or `results/quick/` for `--quick`
//! runs). Cells that parse as numbers on both sides compare with
//! [`FLOAT_TOLERANCE`]; everything else compares as exact strings. The
//! simulation is deterministic, so the tolerance is zero: any drift is a
//! real behaviour change and must be reviewed (and the goldens
//! regenerated deliberately with `repro --out`).

use std::path::{Path, PathBuf};

use crate::report::{csv_file_name, ExperimentReport};

/// Maximum |golden − actual| for two numeric cells to match. Zero: the
/// harness is bit-deterministic, so goldens must reproduce exactly.
pub const FLOAT_TOLERANCE: f64 = 0.0;

/// One cell-level (or shape-level) difference, already rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The golden file the difference is against.
    pub file: PathBuf,
    /// Human-readable description of the difference.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file.display(), self.detail)
    }
}

/// Parse an RFC 4180 CSV document into rows of cells.
///
/// Handles quoted fields, escaped quotes (`""`), embedded separators and
/// line breaks inside quotes, and both LF and CRLF row endings.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                c => cell.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut cell)),
                '\r' if chars.peek() == Some(&'\n') => {}
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                c => cell.push(c),
            }
        }
    }
    if saw_any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    rows
}

/// Do two cells match? Numeric when both parse, string otherwise.
fn cells_match(golden: &str, actual: &str) -> bool {
    match (golden.parse::<f64>(), actual.parse::<f64>()) {
        (Ok(g), Ok(a)) => (g - a).abs() <= FLOAT_TOLERANCE || (g.is_nan() && a.is_nan()) || g == a,
        _ => golden == actual,
    }
}

/// Diff one rendered table against one golden CSV document.
pub fn diff_csv(file: &Path, golden: &str, actual: &str) -> Vec<Mismatch> {
    let g = parse_csv(golden);
    let a = parse_csv(actual);
    let mut out = Vec::new();
    if g.len() != a.len() {
        out.push(Mismatch {
            file: file.to_path_buf(),
            detail: format!(
                "row count differs: golden {} vs regenerated {}",
                g.len(),
                a.len()
            ),
        });
    }
    for (r, (grow, arow)) in g.iter().zip(&a).enumerate() {
        if grow.len() != arow.len() {
            out.push(Mismatch {
                file: file.to_path_buf(),
                detail: format!(
                    "row {r}: column count differs: golden {} vs regenerated {}",
                    grow.len(),
                    arow.len()
                ),
            });
            continue;
        }
        let header: &[String] = &g[0];
        for (c, (gc, ac)) in grow.iter().zip(arow).enumerate() {
            if !cells_match(gc, ac) {
                let col = header.get(c).map(String::as_str).unwrap_or("?");
                out.push(Mismatch {
                    file: file.to_path_buf(),
                    detail: format!(
                        "row {r}, column {c} ({col}): golden '{gc}' vs regenerated '{ac}'"
                    ),
                });
            }
        }
    }
    out
}

/// Diff one regenerated report against the goldens in `golden_dir`,
/// returning every difference (empty = verified).
pub fn verify_report(report: &ExperimentReport, golden_dir: &Path) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for (name, table) in &report.tables {
        let file = golden_dir.join(csv_file_name(report.id, name));
        match std::fs::read_to_string(&file) {
            Ok(golden) => out.extend(diff_csv(&file, &golden, &table.render_csv())),
            Err(e) => out.push(Mismatch {
                file,
                detail: format!("golden missing or unreadable ({e}); regenerate with --out"),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_stats::table::{Column, Table, Value};

    #[test]
    fn csv_parser_handles_rfc4180() {
        let rows = parse_csv("a,b\n\"x,\"\"y\"\"\",2\r\nlast,\n");
        assert_eq!(
            rows,
            vec![
                vec!["a".to_string(), "b".into()],
                vec!["x,\"y\"".to_string(), "2".into()],
                vec!["last".to_string(), String::new()],
            ]
        );
        assert!(parse_csv("").is_empty());
    }

    #[test]
    fn identical_tables_verify_clean() {
        let csv = "d (m),median\n20,24.5\n40,18.0\n";
        assert!(diff_csv(Path::new("x.csv"), csv, csv).is_empty());
    }

    #[test]
    fn numeric_drift_is_reported_per_cell() {
        let golden = "d (m),median\n20,24.5\n40,18.0\n";
        let actual = "d (m),median\n20,24.5\n40,18.1\n";
        let d = diff_csv(Path::new("x.csv"), golden, actual);
        assert_eq!(d.len(), 1);
        assert!(d[0].detail.contains("row 2, column 1 (median)"), "{}", d[0]);
        assert!(d[0].detail.contains("'18.0'"), "{}", d[0]);
        assert!(d[0].detail.contains("'18.1'"), "{}", d[0]);
    }

    #[test]
    fn numeric_cells_compare_numerically_not_textually() {
        // 18 and 18.0 are the same number: tolerance 0 still matches.
        let golden = "h\n18.0\n";
        let actual = "h\n18\n";
        assert!(diff_csv(Path::new("x.csv"), golden, actual).is_empty());
    }

    #[test]
    fn shape_changes_are_reported() {
        let golden = "h,k\n1,2\n3,4\n";
        let shorter = "h,k\n1,2\n";
        let d = diff_csv(Path::new("x.csv"), golden, shorter);
        assert!(d.iter().any(|m| m.detail.contains("row count differs")));
        let narrower = "h,k\n1,2\n3\n";
        let d = diff_csv(Path::new("x.csv"), golden, narrower);
        assert!(d.iter().any(|m| m.detail.contains("column count differs")));
    }

    #[test]
    fn missing_golden_is_its_own_error() {
        let mut r = ExperimentReport::new("figz", "t");
        let mut t = Table::new(vec![Column::int("a")]);
        t.push(vec![Value::Int(1)]);
        r.table("only", t);
        let d = verify_report(&r, Path::new("/nonexistent-golden-dir"));
        assert_eq!(d.len(), 1);
        assert!(d[0].detail.contains("golden missing"), "{}", d[0]);
        assert!(d[0].file.ends_with("figz_only.csv"));
    }

    #[test]
    fn matching_report_verifies_against_written_goldens() {
        let dir = std::env::temp_dir().join(format!("skyferry-verify-{}", std::process::id()));
        let mut r = ExperimentReport::new("figv", "t");
        let mut t = Table::new(vec![Column::int("a"), Column::float("b", 2)]);
        t.push(vec![Value::Int(1), Value::Num(0.25)]);
        r.table("cells", t);
        let cfg = crate::report::ReproConfig {
            out_dir: Some(dir.clone()),
            ..crate::report::ReproConfig::quick()
        };
        r.write_csv(&cfg).unwrap();
        assert!(verify_report(&r, &dir).is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
