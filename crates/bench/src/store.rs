//! Shared campaign results across experiments.
//!
//! Several experiments re-derive the same iperf campaigns: `fig6`'s
//! auto-rate column is the same airplane campaign as `fig5`, `fits`
//! re-runs the `fig5` and `fig7` sweeps to fit them, and the `fig7` speed
//! sweep revisits the hover campaign at 60 m. The [`CampaignStore`] is a
//! deterministic memo that makes each such cell execute exactly once per
//! `repro` invocation.
//!
//! A *cell* is the pooled per-second throughput samples of `reps` hover
//! replications of one campaign at one distance — exactly what
//! [`measure_throughput_replicated`] returns for a hover profile. The memo
//! key is `(campaign id, campaign stable key, distance, reps, quick)`;
//! the campaign id is derived from the config (preset name + controller
//! label), never caller-supplied, so two experiments that request the
//! same physics always share. Missing cells of a batch are filled through
//! one flattened parallel grid, and every replication's RNG substreams
//! are derived from `(campaign seed, rep)` alone, so a memoized cell is
//! bit-identical to a direct [`measure_throughput_replicated`] call at
//! any thread count and any insertion order.
//!
//! [`measure_throughput_replicated`]: skyferry_net::campaign::measure_throughput_replicated

use std::collections::BTreeMap;

use skyferry_core::optimizer::{optimize, OptimalTransfer};
use skyferry_core::scenario::Scenario;
use skyferry_net::campaign::{measure_throughput, CampaignConfig, CampaignKey};
use skyferry_net::profile::MotionProfile;
use skyferry_sim::parallel::par_map_indexed;
use skyferry_sim::stable::KeyHasher;
use skyferry_stats::json::Json;
use skyferry_trace as trace;
use skyferry_trace::clock::monotonic_ns;

/// The derived, human-readable id of a campaign: preset name plus
/// rate-control label, e.g. `airplane/autorate` or `quadrocopter/mcs1`.
pub fn campaign_id(cfg: &CampaignConfig) -> String {
    format!("{}/{}", cfg.preset.name, cfg.controller.label())
}

/// Memo key of one iperf cell.
type CellKey = (String, CampaignKey, u64, u64, bool);

/// One memoized cell plus the wall-clock its fill cost (for the
/// "time saved" report on later hits).
#[derive(Debug, Clone)]
struct Cell {
    samples: Vec<f64>,
    cost_s: f64,
}

/// Deterministic memo of campaign results shared by all experiments in
/// one `repro` run.
#[derive(Debug)]
pub struct CampaignStore {
    quick: bool,
    cells: BTreeMap<CellKey, Cell>,
    optima: BTreeMap<u64, OptimalTransfer>,
    hits: u64,
    misses: u64,
    opt_hits: u64,
    opt_misses: u64,
    saved_s: f64,
    fill_s: f64,
}

impl CampaignStore {
    /// An empty store; `quick` is folded into every cell key so quick and
    /// full runs can never share results.
    pub fn new(quick: bool) -> Self {
        CampaignStore {
            quick,
            cells: BTreeMap::new(),
            optima: BTreeMap::new(),
            hits: 0,
            misses: 0,
            opt_hits: 0,
            opt_misses: 0,
            saved_s: 0.0,
            fill_s: 0.0,
        }
    }

    fn key(&self, cfg: &CampaignConfig, d: f64, reps: u64) -> CellKey {
        (
            campaign_id(cfg),
            cfg.stable_key(),
            d.to_bits(),
            reps,
            self.quick,
        )
    }

    /// Ensure every `(campaign, hover distance)` cell exists, counting a
    /// hit (and crediting its recorded cost as time saved) per distinct
    /// cell already present and a miss per distinct cell filled. All
    /// misses of the batch run as one flattened `cells × reps` parallel
    /// grid, exactly the task shape of
    /// [`skyferry_net::campaign::throughput_vs_distance`].
    pub fn ensure(&mut self, requests: &[(CampaignConfig, f64)], reps: u64) {
        let mut missing: Vec<(CampaignConfig, f64)> = Vec::new();
        let mut missing_keys: Vec<CellKey> = Vec::new();
        for (cfg, d) in requests {
            let k = self.key(cfg, *d, reps);
            if let Some(cell) = self.cells.get(&k) {
                self.hits += 1;
                self.saved_s += cell.cost_s;
                trace::event!("cell-hit", campaign = campaign_id(cfg), d_m = *d);
            } else if missing_keys.contains(&k) {
                // Requested twice in one batch: only one fill, one miss.
            } else {
                self.misses += 1;
                trace::event!("cell-miss", campaign = campaign_id(cfg), d_m = *d);
                missing_keys.push(k);
                missing.push((*cfg, *d));
            }
        }
        if missing.is_empty() {
            return;
        }
        let _span = trace::span!("store-fill", cells = missing.len(), reps = reps);
        let reps_usize = reps as usize;
        let t0 = monotonic_ns();
        let per_rep = par_map_indexed(missing.len() * reps_usize, |k| {
            let (cfg, d) = &missing[k / reps_usize.max(1)];
            let rep = (k % reps_usize.max(1)) as u64;
            measure_throughput(cfg, MotionProfile::hover(*d), rep)
        });
        let elapsed = monotonic_ns().saturating_sub(t0) as f64 / 1e9;
        self.fill_s += elapsed;
        // Attribute the batch cost evenly; cells of one batch share a
        // duration, so this is a fair per-cell estimate.
        let cost_s = elapsed / missing.len() as f64;
        for (i, key) in missing_keys.into_iter().enumerate() {
            let mut samples = Vec::new();
            for rep_samples in &per_rep[i * reps_usize..(i + 1) * reps_usize] {
                samples.extend_from_slice(rep_samples);
            }
            self.cells.insert(key, Cell { samples, cost_s });
        }
    }

    /// Pooled hover samples of one cell (bit-identical to
    /// `measure_throughput_replicated(cfg, MotionProfile::hover(d), reps)`).
    pub fn samples(&mut self, cfg: &CampaignConfig, d: f64, reps: u64) -> Vec<f64> {
        self.ensure(&[(*cfg, d)], reps);
        self.cells[&self.key(cfg, d, reps)].samples.clone()
    }

    /// The throughput-vs-distance sweep of Figures 5 and 7, memoized per
    /// distance cell.
    pub fn throughput_vs_distance(
        &mut self,
        cfg: &CampaignConfig,
        distances_m: &[f64],
        reps: u64,
    ) -> Vec<(f64, Vec<f64>)> {
        let requests: Vec<(CampaignConfig, f64)> = distances_m.iter().map(|&d| (*cfg, d)).collect();
        self.ensure(&requests, reps);
        distances_m
            .iter()
            .map(|&d| (d, self.cells[&self.key(cfg, d, reps)].samples.clone()))
            .collect()
    }

    /// Memoized Eq. (2) solution for a scenario (keyed by the scenario's
    /// stable parameter key, so equal parameter sets solve once).
    pub fn optimum(&mut self, scenario: &Scenario) -> OptimalTransfer {
        let k = scenario.stable_key(KeyHasher::new("scenario")).finish();
        if let Some(v) = self.optima.get(&k) {
            self.opt_hits += 1;
            trace::event!("optimum-hit");
            return *v;
        }
        self.opt_misses += 1;
        trace::event!("optimum-miss");
        let v = optimize(scenario);
        self.optima.insert(k, v);
        v
    }

    /// Distinct campaign cells served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct campaign cells simulated.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Optimizer solutions served from the memo.
    pub fn optimizer_hits(&self) -> u64 {
        self.opt_hits
    }

    /// Optimizer scenarios solved fresh.
    pub fn optimizer_misses(&self) -> u64 {
        self.opt_misses
    }

    /// Estimated simulation wall-clock avoided by cell hits, seconds.
    pub fn saved_secs(&self) -> f64 {
        self.saved_s
    }

    /// Wall-clock spent filling cells, seconds.
    pub fn fill_secs(&self) -> f64 {
        self.fill_s
    }

    /// The same footer as [`summary`](CampaignStore::summary), as a
    /// machine-readable document for `repro --json`.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            (
                "campaign_store",
                Json::obj([
                    ("hits", Json::Int(self.hits as i64)),
                    ("misses", Json::Int(self.misses as i64)),
                    ("reused_s", Json::Fixed(self.saved_s, 3)),
                    ("fill_s", Json::Fixed(self.fill_s, 3)),
                ]),
            ),
            (
                "optimizer_memo",
                Json::obj([
                    ("hits", Json::Int(self.opt_hits as i64)),
                    ("misses", Json::Int(self.opt_misses as i64)),
                ]),
            ),
        ])
    }

    /// One-line stats summary for the `repro` footer.
    pub fn summary(&self) -> String {
        format!(
            "campaign store: {} hits / {} misses, ~{:.2} s of simulation reused \
             ({:.2} s spent filling); optimizer memo: {} hits / {} misses",
            self.hits, self.misses, self.saved_s, self.fill_s, self.opt_hits, self.opt_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_net::campaign::{measure_throughput_replicated, ControllerKind};
    use skyferry_phy::presets::ChannelPreset;
    use skyferry_sim::parallel::set_max_threads;
    use skyferry_sim::time::SimDuration;
    use skyferry_units::MetersPerSec;

    fn quad(seed: u64) -> CampaignConfig {
        CampaignConfig {
            preset: ChannelPreset::quadrocopter(MetersPerSec::new(0.0)),
            controller: ControllerKind::Arf,
            duration: SimDuration::from_secs(3),
            seed,
        }
    }

    #[test]
    fn cell_matches_direct_campaign_call() {
        let cfg = quad(7);
        let mut store = CampaignStore::new(true);
        let via_store = store.samples(&cfg, 40.0, 3);
        let direct = measure_throughput_replicated(&cfg, MotionProfile::hover(40.0), 3);
        assert_eq!(via_store, direct);
        assert_eq!((store.hits(), store.misses()), (0, 1));
    }

    #[test]
    fn second_request_hits_and_is_bit_identical() {
        let cfg = quad(7);
        let mut store = CampaignStore::new(true);
        let first = store.samples(&cfg, 40.0, 2);
        let second = store.samples(&cfg, 40.0, 2);
        assert_eq!(first, second);
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert!(store.saved_secs() > 0.0);
    }

    #[test]
    fn result_is_independent_of_insertion_order_and_threads() {
        let cfg = quad(11);
        let distances = [20.0, 40.0, 60.0];
        // Forward fill, 1 thread.
        set_max_threads(1);
        let mut fwd = CampaignStore::new(true);
        let a = fwd.throughput_vs_distance(&cfg, &distances, 2);
        // Reverse per-cell fill, 2 threads.
        set_max_threads(2);
        let mut rev = CampaignStore::new(true);
        for &d in distances.iter().rev() {
            rev.samples(&cfg, d, 2);
        }
        let b = rev.throughput_vs_distance(&cfg, &distances, 2);
        set_max_threads(0);
        assert_eq!(a, b);
        assert_eq!((rev.hits(), rev.misses()), (3, 3));
    }

    #[test]
    fn distinct_parameters_never_share_cells() {
        let mut store = CampaignStore::new(true);
        let a = store.samples(&quad(7), 40.0, 2);
        let b = store.samples(&quad(8), 40.0, 2);
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 0);
        assert_ne!(a, b);
        // Same campaign, different reps: a different cell.
        store.samples(&quad(7), 40.0, 3);
        assert_eq!(store.misses(), 3);
    }

    #[test]
    fn quick_flag_partitions_the_memo() {
        let cfg = quad(7);
        let quick_store = CampaignStore::new(true);
        let full_store = CampaignStore::new(false);
        // Identical physics, but the two stores must key the cells apart.
        assert_ne!(
            quick_store.key(&cfg, 40.0, 2),
            full_store.key(&cfg, 40.0, 2)
        );
    }

    #[test]
    fn summary_json_reports_the_counters() {
        let cfg = quad(7);
        let mut store = CampaignStore::new(true);
        store.samples(&cfg, 40.0, 2);
        store.samples(&cfg, 40.0, 2);
        store.optimum(&Scenario::airplane_baseline());
        let doc = store.summary_json();
        let cells = doc.get("campaign_store").expect("campaign_store block");
        assert_eq!(cells.get("hits").and_then(Json::as_i64), Some(1));
        assert_eq!(cells.get("misses").and_then(Json::as_i64), Some(1));
        assert!(
            cells
                .get("reused_s")
                .and_then(Json::as_f64)
                .expect("reused")
                > 0.0
        );
        let memo = doc.get("optimizer_memo").expect("optimizer block");
        assert_eq!(memo.get("misses").and_then(Json::as_i64), Some(1));
        // The footer renders as a single line of valid JSON.
        let line = doc.render();
        assert!(!line.contains('\n'));
        assert!(skyferry_stats::json::parse(&line).is_ok());
    }

    #[test]
    fn optimizer_memo_shares_equal_scenarios() {
        let mut store = CampaignStore::new(false);
        let a = Scenario::airplane_baseline();
        let mut renamed = a.clone();
        renamed.name = "alias".into();
        let first = store.optimum(&a);
        let second = store.optimum(&renamed);
        assert_eq!(first, second);
        assert_eq!(store.optimizer_hits(), 1);
        let changed = store.optimum(&a.with_mdata_mb(5.0));
        assert_eq!(
            store.optimizer_hits(),
            1,
            "changed parameters must re-solve"
        );
        assert_ne!(changed, first);
    }
}
