//! # skyferry-bench
//!
//! The reproduction harness: one module per table/figure of the paper,
//! each regenerating the same rows/series the paper reports, from the
//! skyferry simulation stack. The `repro` binary drives them; the
//! benches in `benches/` time their compute kernels on the local
//! [`microbench`] harness (the workspace builds fully offline, so no
//! Criterion).
//!
//! | Experiment | Paper artefact | Module |
//! |---|---|---|
//! | `table1` | Table 1 — platform features | [`experiments::table1`] |
//! | `fig1` | Fig. 1 — transmitted data vs time per strategy | [`experiments::fig1`] |
//! | `fig4` | Fig. 4 — GPS traces of both platforms | [`experiments::fig4`] |
//! | `fig5` | Fig. 5 — airplane throughput vs distance boxplots | [`experiments::fig5`] |
//! | `fig6` | Fig. 6 — best fixed MCS vs auto rate | [`experiments::fig6`] |
//! | `fig7` | Fig. 7 — quadrocopter hover/move/speed throughput | [`experiments::fig7`] |
//! | `fig8` | Fig. 8 — U(d) for various ρ | [`experiments::fig8`] |
//! | `fig9` | Fig. 9 — delayed gratification across Mdata and v | [`experiments::fig9`] |
//! | `fits` | §4 — log-fit coefficients and R² | [`experiments::fits`] |
//! | `mdata` | §2.2 fn. 3/4 — camera-geometry Mdata derivation | [`experiments::mdata`] |

#![forbid(unsafe_code)]

pub mod cli;
pub mod experiments;
pub mod microbench;
pub mod policy;
pub mod report;
pub mod store;
pub mod verify;

pub use experiments::{Experiment, ExperimentError};
pub use report::{ExperimentReport, ReproConfig};
pub use store::CampaignStore;
