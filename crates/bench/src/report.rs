//! Experiment report plumbing shared by all repro modules.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use skyferry_stats::table::Table;

/// Harness-wide configuration.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Master seed for every campaign.
    pub seed: u64,
    /// Reduced replication/duration for smoke tests and CI.
    pub quick: bool,
    /// When set, every table is also written as CSV under this directory.
    pub out_dir: Option<PathBuf>,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            seed: 0x5AFE_5EED,
            quick: false,
            out_dir: None,
        }
    }
}

impl ReproConfig {
    /// Quick-mode constructor used by tests.
    pub fn quick() -> Self {
        ReproConfig {
            quick: true,
            ..Default::default()
        }
    }

    /// Scale a replication count down in quick mode.
    pub fn reps(&self, full: u64) -> u64 {
        if self.quick {
            (full / 2).max(2)
        } else {
            full
        }
    }

    /// Scale a duration (seconds) down in quick mode.
    pub fn secs(&self, full: i64) -> i64 {
        if self.quick {
            (full / 2).max(5)
        } else {
            full
        }
    }
}

/// One experiment's rendered output.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Short id, e.g. "fig5".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Named tables (name → table).
    pub tables: Vec<(String, Table)>,
    /// Free-form findings: paper claim vs measured value.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Create an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExperimentReport {
            id,
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach a table.
    pub fn table(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.tables.push((name.into(), table));
        self
    }

    /// Attach a finding note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Render the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for (name, table) in &self.tables {
            let _ = writeln!(out, "\n-- {name} --");
            out.push_str(&table.render_text());
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\nFindings:");
            for n in &self.notes {
                let _ = writeln!(out, "  * {n}");
            }
        }
        out
    }

    /// Write every table as `<out_dir>/<id>_<table>.csv` when configured.
    pub fn write_csv(&self, cfg: &ReproConfig) -> std::io::Result<()> {
        let Some(dir) = &cfg.out_dir else {
            return Ok(());
        };
        fs::create_dir_all(dir)?;
        for (name, table) in &self.tables {
            let path = dir.join(csv_file_name(self.id, name));
            fs::write(path, table.render_csv())?;
        }
        Ok(())
    }
}

/// The CSV artifact name of one report table, shared by the writer and
/// the golden verifier: `<experiment id>_<slugified table name>.csv`.
pub fn csv_file_name(id: &str, table_name: &str) -> String {
    let slug: String = table_name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    format!("{id}_{slug}.csv")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scaling() {
        let q = ReproConfig::quick();
        assert_eq!(q.reps(6), 3);
        assert_eq!(q.reps(1), 2);
        assert_eq!(q.secs(40), 20);
        assert_eq!(q.secs(4), 5);
        let f = ReproConfig::default();
        assert_eq!(f.reps(6), 6);
        assert_eq!(f.secs(40), 40);
    }

    #[test]
    fn render_includes_tables_and_notes() {
        use skyferry_stats::table::Column;
        let mut r = ExperimentReport::new("figx", "Test");
        let mut t = Table::new(vec![Column::text("a"), Column::text("b")]);
        t.push(vec!["1".into(), "2".into()]);
        r.table("main", t).note("claim holds");
        let s = r.render();
        assert!(s.contains("figx"));
        assert!(s.contains("-- main --"));
        assert!(s.contains("claim holds"));
    }

    #[test]
    fn csv_written_when_dir_set() {
        let dir = std::env::temp_dir().join(format!("skyferry-repro-{}", std::process::id()));
        let cfg = ReproConfig {
            out_dir: Some(dir.clone()),
            ..ReproConfig::quick()
        };
        use skyferry_stats::table::Column;
        let mut r = ExperimentReport::new("figy", "Test");
        let mut t = Table::new(vec![Column::text("a")]);
        t.push(vec!["1".into()]);
        r.table("Main Table", t);
        r.write_csv(&cfg).unwrap();
        let written = dir.join("figy_main_table.csv");
        assert!(written.exists());
        let _ = std::fs::remove_dir_all(dir);
    }
}
