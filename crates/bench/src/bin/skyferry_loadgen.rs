//! `skyferry-loadgen` — drive a running `skyferryd` and measure it.
//!
//! ```text
//! skyferry-loadgen --addr HOST:PORT [--requests N] [--concurrency N]
//!                  [--window N] [--rate RPS] [--conns N]
//!                  [--saturation R1,R2,...] [--codec ndjson|bin1]
//!                  [--seed N] [--pool N]
//!                  [--unique-frac F] [--grid quick|full]
//!                  [--fleet-trace FILE] [--compare]
//!                  [--policy-compare] [--miss-heavy] [--min-speedup X]
//!                  [--min-table-speedup X] [--expect-identical]
//!                  [--check] [--out FILE] [--shutdown-after]
//! ```
//!
//! `--policy-compare` needs a server started with `--policy FILE`;
//! `--grid` aligns the request mix to that table's cell centres so the
//! `table`, `cache` and `no-cache` phases solve bit-identical
//! parameters. `--conns N --rate R` switches the measured phases to the
//! reactor-multiplexed many-connection open loop; `--saturation`
//! appends a latency-under-load sweep over the same engine. Latency is
//! printed as `rtt` (send-to-response, pipeline queueing included) and
//! `svc` (the in-order service decomposition, comparable to the
//! server-side histogram). `--fleet-trace FILE` replays a recorded
//! fleet request stream (`repro --export-fleet-trace` JSONL) instead of
//! the random mix and prints its inter-arrival statistics; with
//! `--compare --expect-identical` the replayed `d_star` streams are
//! gated bitwise across phases. Exit codes: 0 success, 1 a `--check`
//! gate failed or the server was unreachable, 2 bad arguments.

use skyferry_serve::loadgen::{parse_args, run, LoadgenError};

const USAGE: &str = "usage: skyferry-loadgen --addr HOST:PORT [--requests N] \
[--concurrency N] [--window N] [--rate RPS] [--conns N] [--saturation R1,R2,...] \
[--codec ndjson|bin1] [--seed N] [--pool N] [--unique-frac F] \
[--grid quick|full] [--fleet-trace FILE] [--compare] [--policy-compare] \
[--miss-heavy] [--min-speedup X] [--min-table-speedup X] [--expect-identical] \
[--check] [--out FILE] [--shutdown-after]";

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("skyferry-loadgen: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    match run(&cfg) {
        Ok(report) => {
            for p in &report.phases {
                println!(
                    "{:<13} {:>8.0} req/s   rtt p50 {:>8.1} us  p99 {:>8.1} us   \
                     svc p50 {:>7.1} us  p99 {:>7.1} us   hits {}   errors {}",
                    p.label,
                    p.throughput_rps,
                    p.rtt.p50_us,
                    p.rtt.p99_us,
                    p.service.p50_us,
                    p.service.p99_us,
                    p.cache_hits,
                    p.protocol_errors,
                );
            }
            for s in &report.saturation {
                println!(
                    "saturation {:>9.0} offered req/s -> {:>9.0} achieved   \
                     rtt p50 {:>8.1} us  p99 {:>8.1} us   conns {}   errors {}",
                    s.offered_rps,
                    s.achieved_rps,
                    s.rtt.p50_us,
                    s.rtt.p99_us,
                    s.conns,
                    s.protocol_errors,
                );
            }
            if let Some(s) = report.speedup {
                println!("cache speedup: {s:.2}x");
            }
            if let Some(s) = report.speedup_miss {
                println!("cache speedup (miss-heavy): {s:.2}x");
            }
            if let Some(s) = report.table_speedup {
                println!("table speedup: {s:.2}x");
            }
            if let Some(s) = report.table_speedup_miss {
                println!("table speedup (miss-heavy): {s:.2}x");
            }
            if let Some(identical) = report.d_star_identical {
                println!(
                    "d_star streams: {}",
                    if identical { "bit-identical" } else { "DIFFER" }
                );
            }
            if let Some(t) = &report.fleet_trace {
                println!(
                    "fleet trace: {} events over {:.1} s   gap p50 {:.3} s  p95 {:.3} s   \
                     burstiness {:.2}",
                    t.events, t.span_s, t.p50_gap_s, t.p95_gap_s, t.burstiness,
                );
            }
            if let Some(out) = &cfg.out {
                println!("report written to {}", out.display());
            }
        }
        Err(e @ (LoadgenError::Io(_) | LoadgenError::Protocol(_))) => {
            eprintln!("skyferry-loadgen: {e}");
            std::process::exit(1);
        }
        Err(e @ LoadgenError::CheckFailed(_)) => {
            eprintln!("skyferry-loadgen: {e}");
            std::process::exit(1);
        }
    }
}
