//! The reproduction harness CLI.
//!
//! ```text
//! repro [--quick] [--seed N] [--threads N] [--out DIR] [--json]
//!       [--trace FILE] [--deterministic] [EXPERIMENT...]
//! repro --list
//! repro --verify [--quick] [--seed N] [--threads N] [EXPERIMENT...]
//! repro --bench-parallel FILE [--quick] [--seed N] [--threads N]
//! repro --compile-policy FILE [--quick] [--seed N] [--threads N]
//! repro --verify-policy FILE
//! repro --export-fleet-trace FILE [--quick] [--seed N]
//! ```
//!
//! With no experiment arguments, runs everything in the registry's paper
//! order and prints per-experiment wall-clock timing, sharing one
//! [`CampaignStore`] so repeated campaigns simulate once. `--threads N`
//! caps the deterministic worker pool (`0` = one worker per hardware
//! thread); output is bit-identical at any setting. `--list` prints the
//! registry (id, title, campaign dependencies). `--verify` regenerates
//! the selected tables and diffs them cell by cell against the goldens
//! under `results/` (`results/quick/` with `--quick`), exiting 1 on any
//! difference. `--bench-parallel FILE` times the replication-heavy
//! figures serially and at the configured thread count and writes the
//! comparison as JSON. `--trace FILE` records the whole run as one span
//! tree (`repro` → per-experiment → per-task) — compact JSONL when the
//! path ends in `.jsonl`, Chrome `trace_event` JSON (Perfetto-loadable)
//! otherwise; with `--deterministic` the span timestamps come from the
//! virtual tick clock, making the trace byte-identical across runs and
//! `--threads` settings.

use std::path::Path;
use std::process::ExitCode;

use skyferry_bench::cli::{self, CliArgs, CliError};
use skyferry_bench::experiments::{self, REGISTRY};
use skyferry_bench::policy;
use skyferry_bench::report::ReproConfig;
use skyferry_bench::store::CampaignStore;
use skyferry_bench::verify::verify_report;
use skyferry_sim::parallel::{max_threads, set_max_threads};
use skyferry_stats::json::Json;
use skyferry_trace as trace;
use skyferry_trace::clock::monotonic_ns;

fn usage() {
    eprintln!(
        "usage: repro [--quick] [--seed N] [--threads N] [--out DIR] [--json] \
         [--trace FILE] [--deterministic] [EXPERIMENT...]\n\
         \x20      repro --list\n\
         \x20      repro --verify [--quick] [--seed N] [--threads N] [EXPERIMENT...]\n\
         \x20      repro --bench-parallel FILE [--quick] [--seed N] [--threads N]\n\
         \x20      repro --compile-policy FILE [--quick] [--seed N] [--threads N]\n\
         \x20      repro --verify-policy FILE\n\
         \x20      repro --export-fleet-trace FILE [--quick] [--seed N]\n\
         experiments: {} (default: all)",
        experiments::ids().join(" ")
    );
}

/// The figures timed by `--bench-parallel`: the ones the issue calls
/// out as replication- or sweep-dominated.
const BENCH_FIGURES: [&str; 4] = ["fig1", "fig4", "fig8", "fig9"];

/// Time one experiment end to end on a fresh store, returning seconds.
fn time_experiment(id: &str, cfg: &ReproConfig) -> f64 {
    let mut store = CampaignStore::new(cfg.quick);
    let t0 = monotonic_ns();
    let report = experiments::run(id, cfg, &mut store).expect("known experiment");
    let secs = monotonic_ns().saturating_sub(t0) as f64 / 1e9;
    std::hint::black_box(report.tables.len());
    secs
}

/// Run the serial-vs-parallel comparison and render it as JSON.
fn bench_parallel(cfg: &ReproConfig, threads: usize) -> String {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for id in BENCH_FIGURES {
        set_max_threads(1);
        let serial = time_experiment(id, cfg);
        set_max_threads(threads);
        let parallel = time_experiment(id, cfg);
        // A degenerate denominator (an experiment too fast for the clock)
        // yields no speedup claim rather than an infinite one.
        let speedup = if parallel > 1e-9 {
            Json::Fixed(serial / parallel, 4)
        } else {
            Json::Null
        };
        match &speedup {
            Json::Fixed(s, _) => eprintln!(
                "{id}: serial {serial:.3} s, parallel ({} workers) {parallel:.3} s, speedup {s:.2}x",
                max_threads(),
            ),
            _ => eprintln!(
                "{id}: serial {serial:.3} s, parallel ({} workers) {parallel:.3} s, speedup n/a",
                max_threads(),
            ),
        }
        rows.push(Json::obj([
            ("figure", Json::str(id)),
            ("serial_s", Json::Fixed(serial, 6)),
            ("parallel_s", Json::Fixed(parallel, 6)),
            ("speedup", speedup),
        ]));
    }
    set_max_threads(0);
    Json::obj([
        ("bench", Json::str("repro --bench-parallel")),
        ("quick", Json::Bool(cfg.quick)),
        ("seed", Json::Int(cfg.seed as i64)),
        (
            "threads",
            Json::Int(if threads == 0 { hw } else { threads } as i64),
        ),
        ("hardware_threads", Json::Int(hw as i64)),
        ("figures", Json::Arr(rows)),
    ])
    .render_pretty()
}

/// Print the registry: id, title, campaign dependencies.
fn list_experiments() {
    for e in REGISTRY {
        let deps = if e.deps().is_empty() {
            "-".to_string()
        } else {
            e.deps().join(", ")
        };
        println!(
            "{:<11} {}\n{:<11} campaigns: {}",
            e.id(),
            e.title(),
            "",
            deps
        );
    }
}

fn run(args: CliArgs) -> ExitCode {
    let cfg = args.to_config();
    set_max_threads(args.threads);

    if args.list {
        list_experiments();
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.bench_parallel {
        let json = bench_parallel(&cfg, args.threads);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    if let Some(out) = &args.compile_policy {
        if args.trace.is_some() {
            trace::install(if args.deterministic {
                trace::TraceConfig::deterministic()
            } else {
                trace::TraceConfig::default()
            });
        }
        let result = policy::compile_policy(out, args.quick, args.seed);
        if let Some(path) = &args.trace {
            let records = trace::drain();
            if let Err(e) = trace::sink::write_file(path, &records) {
                eprintln!("error: could not write trace {}: {e}", path.display());
            }
        }
        return match result {
            Ok(s) => {
                eprintln!(
                    "compiled {} cells ({} bytes) in {:.2} s to {} (manifest {})",
                    s.cells,
                    s.bytes,
                    s.wall_s,
                    out.display(),
                    s.manifest_path.display(),
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(path) = &args.export_fleet_trace {
        let jsonl = experiments::fleet::export_trace(&cfg);
        let events = jsonl.lines().count();
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("error: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {events} fleet request events to {}", path.display());
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.verify_policy {
        return match policy::verify_policy(path) {
            Ok(s) => {
                eprintln!(
                    "verify-policy: {} — {} cells, {} re-solved bitwise-equal, \
                     {} interpolation probes (max relative loss {:.4} ≤ {})",
                    path.display(),
                    s.cells,
                    s.sampled,
                    s.interp_probes,
                    s.max_interp_loss,
                    skyferry_bench::policy::INTERP_LOSS_BOUND,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let wanted: Vec<String> = if args.experiments.is_empty() {
        experiments::ids().iter().map(|s| s.to_string()).collect()
    } else {
        args.experiments.clone()
    };

    // Resolve every id up front so a typo fails before hours of sim time.
    let mut selected = Vec::new();
    for id in &wanted {
        match experiments::find(id) {
            Ok(e) => selected.push(e),
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        }
    }

    if args.trace.is_some() {
        trace::install(if args.deterministic {
            trace::TraceConfig::deterministic()
        } else {
            trace::TraceConfig::default()
        });
    }

    let golden_dir = if cfg.quick {
        Path::new("results/quick")
    } else {
        Path::new("results")
    };
    let mut store = CampaignStore::new(cfg.quick);
    let mut mismatches = Vec::new();
    {
        // Root span: every experiment (and its task spans) nests under
        // it, so the trace's critical path covers the whole run.
        let _root = trace::span!("repro", quick = cfg.quick, seed = cfg.seed);
        for e in selected {
            let _span = trace::span!("experiment", id = e.id());
            let t0 = monotonic_ns();
            let report = e.run(&cfg, &mut store);
            println!("{}", report.render());
            eprintln!(
                "[{}: {:.3} s]",
                e.id(),
                monotonic_ns().saturating_sub(t0) as f64 / 1e9
            );
            if args.verify {
                mismatches.extend(verify_report(&report, golden_dir));
            }
            if let Err(err) = report.write_csv(&cfg) {
                eprintln!("warning: could not write CSV for {}: {err}", e.id());
            }
        }
    }
    if let Some(path) = &args.trace {
        let records = trace::drain();
        match trace::sink::write_file(path, &records) {
            Ok(()) => eprintln!(
                "wrote {} trace records to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("error: could not write trace {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("{}", store.summary());
    if args.json {
        // One machine-readable footer line on stdout, after the tables.
        println!("{}", store.summary_json().render());
    }

    if args.verify {
        if mismatches.is_empty() {
            eprintln!("verify: all tables match {}", golden_dir.display());
        } else {
            eprintln!(
                "verify: {} difference(s) against {}:",
                mismatches.len(),
                golden_dir.display()
            );
            for m in &mismatches {
                eprintln!("  {m}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match cli::parse(std::env::args().skip(1)) {
        Ok(args) => run(args),
        Err(CliError::HelpRequested) => {
            usage();
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::from(2)
        }
    }
}
