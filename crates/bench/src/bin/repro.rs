//! The reproduction harness CLI.
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] [EXPERIMENT...]
//! ```
//!
//! With no experiment arguments, runs everything in paper order.
//! Experiments: table1 fig1 fig4 fig5 fig6 fig7 fig8 fig9 fits mdata.

use std::process::ExitCode;

use skyferry_bench::experiments;
use skyferry_bench::report::ReproConfig;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--seed N] [--out DIR] [EXPERIMENT...]\n\
         experiments: {} (default: all)",
        experiments::ALL.join(" ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ReproConfig::default();
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                cfg.seed = v;
            }
            "--out" => {
                let Some(dir) = args.next() else { usage() };
                cfg.out_dir = Some(dir.into());
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    for id in &wanted {
        match experiments::run(id, &cfg) {
            Some(report) => {
                println!("{}", report.render());
                if let Err(e) = report.write_csv(&cfg) {
                    eprintln!("warning: could not write CSV for {id}: {e}");
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                usage();
            }
        }
    }
    ExitCode::SUCCESS
}
