//! The reproduction harness CLI.
//!
//! ```text
//! repro [--quick] [--seed N] [--threads N] [--out DIR] [EXPERIMENT...]
//! repro --bench-parallel FILE [--quick] [--seed N] [--threads N]
//! ```
//!
//! With no experiment arguments, runs everything in paper order and
//! prints per-experiment wall-clock timing. `--threads N` caps the
//! deterministic worker pool (`0` = one worker per hardware thread);
//! output is bit-identical at any setting. `--bench-parallel FILE`
//! times the campaign-heavy figures serially and at the configured
//! thread count and writes the comparison as JSON.

use std::process::ExitCode;
use std::time::Instant;

use skyferry_bench::experiments;
use skyferry_bench::report::ReproConfig;
use skyferry_sim::parallel::{max_threads, set_max_threads};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--seed N] [--threads N] [--out DIR] [EXPERIMENT...]\n\
         \x20      repro --bench-parallel FILE [--quick] [--seed N] [--threads N]\n\
         experiments: {} (default: all)",
        experiments::ALL.join(" ")
    );
    std::process::exit(2);
}

/// The figures timed by `--bench-parallel`: the ones the issue calls
/// out as replication- or sweep-dominated.
const BENCH_FIGURES: [&str; 4] = ["fig1", "fig4", "fig8", "fig9"];

/// Time one experiment end to end, returning seconds.
fn time_experiment(id: &str, cfg: &ReproConfig) -> f64 {
    let t = Instant::now();
    let report = experiments::run(id, cfg).expect("known experiment");
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(report.tables.len());
    secs
}

/// Run the serial-vs-parallel comparison and render it as JSON.
fn bench_parallel(cfg: &ReproConfig, threads: usize) -> String {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for id in BENCH_FIGURES {
        set_max_threads(1);
        let serial = time_experiment(id, cfg);
        set_max_threads(threads);
        let parallel = time_experiment(id, cfg);
        eprintln!(
            "{id}: serial {serial:.3} s, parallel ({} workers) {parallel:.3} s, speedup {:.2}x",
            max_threads(),
            serial / parallel
        );
        rows.push(format!(
            "    {{\"figure\": \"{id}\", \"serial_s\": {serial:.6}, \
             \"parallel_s\": {parallel:.6}, \"speedup\": {:.4}}}",
            serial / parallel
        ));
    }
    set_max_threads(0);
    format!(
        "{{\n  \"bench\": \"repro --bench-parallel\",\n  \"quick\": {},\n  \
         \"seed\": {},\n  \"threads\": {},\n  \"hardware_threads\": {hw},\n  \
         \"figures\": [\n{}\n  ]\n}}\n",
        cfg.quick,
        cfg.seed,
        if threads == 0 { hw } else { threads },
        rows.join(",\n")
    )
}

fn main() -> ExitCode {
    let mut cfg = ReproConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut threads = 0usize;
    let mut bench_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                cfg.seed = v;
            }
            "--threads" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    usage();
                };
                threads = v;
            }
            "--out" => {
                let Some(dir) = args.next() else { usage() };
                cfg.out_dir = Some(dir.into());
            }
            "--bench-parallel" => {
                let Some(path) = args.next() else { usage() };
                bench_out = Some(path);
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    set_max_threads(threads);

    if let Some(path) = bench_out {
        let json = bench_parallel(&cfg, threads);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        return ExitCode::SUCCESS;
    }

    if wanted.is_empty() {
        wanted = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    for id in &wanted {
        let t = Instant::now();
        match experiments::run(id, &cfg) {
            Some(report) => {
                println!("{}", report.render());
                eprintln!("[{id}: {:.3} s]", t.elapsed().as_secs_f64());
                if let Err(e) = report.write_csv(&cfg) {
                    eprintln!("warning: could not write CSV for {id}: {e}");
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                usage();
            }
        }
    }
    ExitCode::SUCCESS
}
