//! A dependency-free microbenchmark harness.
//!
//! The workspace builds fully offline, so the benches under `benches/`
//! run on this small wall-clock harness instead of Criterion: warm up,
//! then run batches of iterations until a time budget is spent, and
//! report the per-iteration median over batches. That is robust enough
//! to compare kernels and thread counts on the same machine; it does not
//! attempt Criterion's statistical machinery.

use std::hint::black_box;
use std::time::Duration;

use skyferry_trace::clock::monotonic_ns;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, e.g. `optimizer/airplane-baseline`.
    pub name: String,
    /// Median per-iteration time over batches.
    pub median: Duration,
    /// Mean per-iteration time over the whole run.
    pub mean: Duration,
    /// Total iterations executed (excluding warm-up).
    pub iters: u64,
}

impl Measurement {
    /// Render as `name  median  (mean, iters)`.
    pub fn render(&self) -> String {
        format!(
            "{:<44} {:>12}  (mean {}, n={})",
            self.name,
            fmt_duration(self.median),
            fmt_duration(self.mean),
            self.iters
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The harness: collects measurements and prints them as they finish.
pub struct Harness {
    /// Substring filter from the command line (cargo bench passes the
    /// filter argument through).
    filter: Option<String>,
    /// Time budget per benchmark.
    budget: Duration,
    /// Completed measurements.
    results: Vec<Measurement>,
}

impl Harness {
    /// Build from `std::env::args`: the first non-flag argument is a
    /// substring filter; `--bench` (passed by cargo) is ignored.
    pub fn from_env() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        let budget_ms = std::env::var("SKYFERRY_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Harness {
            filter,
            budget: Duration::from_millis(budget_ms),
            results: Vec::new(),
        }
    }

    /// Time `f`, printing the result immediately.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up and batch sizing: aim for ~20 batches in the budget.
        let warm = monotonic_ns();
        black_box(f());
        let once_ns = (monotonic_ns() - warm).max(1) as u128;
        let per_batch = self.budget.as_nanos() / 20;
        let batch = (per_batch / once_ns).clamp(1, 1 << 20) as u64;

        let mut batch_means: Vec<Duration> = Vec::new();
        let mut iters = 0u64;
        let start = monotonic_ns();
        let mut total = Duration::ZERO;
        while monotonic_ns() - start < self.budget.as_nanos() as u64 || batch_means.is_empty() {
            let t = monotonic_ns();
            for _ in 0..batch {
                black_box(f());
            }
            let el = Duration::from_nanos(monotonic_ns() - t);
            total += el;
            iters += batch;
            batch_means.push(el / batch as u32);
        }
        batch_means.sort();
        let m = Measurement {
            name: name.to_string(),
            median: batch_means[batch_means.len() / 2],
            mean: total / iters.max(1) as u32,
            iters,
        };
        println!("{}", m.render());
        self.results.push(m);
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Print a closing summary line.
    pub fn finish(self) {
        println!("\n{} benchmark(s) run.", self.results.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = Harness {
            filter: None,
            budget: Duration::from_millis(20),
            results: Vec::new(),
        };
        let mut x = 0u64;
        h.bench("spin", || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].iters > 0);
        assert!(h.results()[0].median > Duration::ZERO);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("match-me".into()),
            budget: Duration::from_millis(5),
            results: Vec::new(),
        };
        h.bench("other", || 1);
        assert!(h.results().is_empty());
        h.bench("yes/match-me", || 1);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
