//! # skyferry-units
//!
//! Zero-cost dimensional newtypes for the quantities the delayed-
//! gratification model juggles: metres, seconds, speeds, data rates,
//! batch sizes, decibels and energies. Every type wraps a single `f64`
//! (`#[repr(transparent)]`), so the optimised code is bit-identical to
//! bare floats — but a `Mdata/s(d)` pipeline that feeds a Mb/s value
//! where bit/s is expected now fails to *compile* instead of silently
//! corrupting a figure table.
//!
//! ## Dimensional arithmetic
//!
//! The cross-unit `Mul`/`Div` impls encode exactly the identities the
//! model of Eq. (1)–(2) needs:
//!
//! * [`Meters`] ÷ [`MetersPerSec`] = [`Seconds`] — shipping time
//!   `Tship = (d0 − d)/v`;
//! * [`Bytes`] ÷ [`BitsPerSec`] = [`Seconds`] — transmission time
//!   `Ttx = Mdata/s(d)` (the ×8 bytes→bits conversion lives *here*, in
//!   one audited place);
//! * [`MetersPerSec`] × [`Seconds`] = [`Meters`] and
//!   [`Meters`] ÷ [`Seconds`] = [`MetersPerSec`];
//! * [`BitsPerSec`] × [`Seconds`] = [`Bytes`].
//!
//! Same-unit addition/subtraction, scaling by a dimensionless `f64`, and
//! same-unit division (yielding a dimensionless ratio) are provided for
//! every type.
//!
//! Mixing units is a compile error:
//!
//! ```compile_fail
//! use skyferry_units::{Meters, Seconds};
//! // metres + seconds has no meaning — rejected at compile time.
//! let _ = Meters::new(1.0) + Seconds::new(1.0);
//! ```
//!
//! ```compile_fail
//! use skyferry_units::{Bytes, MetersPerSec};
//! // Ttx needs a data *rate*; dividing by a speed is rejected.
//! let _ = Bytes::new(28e6) / MetersPerSec::new(10.0);
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $symbol:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[repr(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Wrap a raw `f64` expressed in this unit's base scale.
            #[inline]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw `f64` value in this unit's base scale.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// The smaller of two values (NaN-propagating like `f64::min`
            /// is NaN-*ignoring*; this matches `f64::min`).
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// The larger of two values (semantics of `f64::max`).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the wrapped value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Same-unit division yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Respect an explicit precision (`{:.2}`), default to the
                // shortest roundtrip representation.
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $symbol),
                    None => write!(f, "{} {}", self.0, $symbol),
                }
            }
        }
    };
}

unit!(
    /// A distance in metres.
    Meters,
    "m"
);

unit!(
    /// A duration in seconds.
    Seconds,
    "s"
);

unit!(
    /// A speed in metres per second.
    MetersPerSec,
    "m/s"
);

unit!(
    /// A data rate in bits per second.
    BitsPerSec,
    "bit/s"
);

unit!(
    /// A data quantity in bytes (decimal multiples, as the paper uses).
    Bytes,
    "B"
);

unit!(
    /// A logarithmic power quantity or ratio in decibels. Used for both
    /// absolute levels (dBm — decibels relative to a milliwatt) and
    /// relative gains/losses (dB); adding a dB gain to a dBm level is a
    /// dBm level, which is why one type covers both.
    Db,
    "dB"
);

unit!(
    /// An energy in joules.
    Joules,
    "J"
);

// ---------------------------------------------------------------------------
// Cross-dimension arithmetic: exactly the identities the model needs.
// ---------------------------------------------------------------------------

impl Div<MetersPerSec> for Meters {
    type Output = Seconds;
    /// `Tship = distance / speed`.
    #[inline]
    fn div(self, rhs: MetersPerSec) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Meters {
    type Output = MetersPerSec;
    /// Mean speed over a leg.
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSec {
        MetersPerSec(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for MetersPerSec {
    type Output = Meters;
    /// Distance covered at a constant speed.
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

impl Mul<MetersPerSec> for Seconds {
    type Output = Meters;
    /// Distance covered at a constant speed (commuted form).
    #[inline]
    fn mul(self, rhs: MetersPerSec) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

/// Bits per byte. The single audited home of the ×8 conversion that the
/// bare-`f64` pipeline repeated at every call site.
pub const BITS_PER_BYTE: f64 = 8.0;

impl Div<BitsPerSec> for Bytes {
    type Output = Seconds;
    /// `Ttx = Mdata / s(d)` — bytes over a bit rate, converting to bits
    /// exactly once, here.
    #[inline]
    fn div(self, rhs: BitsPerSec) -> Seconds {
        Seconds(self.0 * BITS_PER_BYTE / rhs.0)
    }
}

impl Mul<Seconds> for BitsPerSec {
    type Output = Bytes;
    /// Data volume delivered at a constant rate.
    #[inline]
    fn mul(self, rhs: Seconds) -> Bytes {
        Bytes(self.0 * rhs.0 / BITS_PER_BYTE)
    }
}

impl Mul<BitsPerSec> for Seconds {
    type Output = Bytes;
    /// Data volume delivered at a constant rate (commuted form).
    #[inline]
    fn mul(self, rhs: BitsPerSec) -> Bytes {
        Bytes(self.0 * rhs.0 / BITS_PER_BYTE)
    }
}

// ---------------------------------------------------------------------------
// Unit-specific constructors and conversions.
// ---------------------------------------------------------------------------

impl Meters {
    /// From kilometres.
    #[inline]
    pub const fn from_km(km: f64) -> Self {
        Meters(km * 1e3)
    }
}

impl Seconds {
    /// From milliseconds.
    #[inline]
    pub const fn from_millis(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// From microseconds.
    #[inline]
    pub const fn from_micros(us: f64) -> Self {
        Seconds(us * 1e-6)
    }
}

impl BitsPerSec {
    /// From megabits per second (decimal, as the paper's fits are quoted).
    #[inline]
    pub const fn from_mbps(mbps: f64) -> Self {
        BitsPerSec(mbps * 1e6)
    }

    /// As megabits per second.
    #[inline]
    pub const fn mbps(self) -> f64 {
        self.0 / 1e6
    }
}

impl Bytes {
    /// From decimal megabytes (the paper quotes `Mdata` in MB).
    #[inline]
    pub const fn from_mb(mb: f64) -> Self {
        Bytes(mb * 1e6)
    }

    /// As decimal megabytes.
    #[inline]
    pub const fn megabytes(self) -> f64 {
        self.0 / 1e6
    }

    /// The quantity in bits.
    #[inline]
    pub const fn bits(self) -> f64 {
        self.0 * BITS_PER_BYTE
    }
}

impl Db {
    /// A linear power ratio as decibels.
    ///
    /// # Panics
    /// Panics if `ratio` is not strictly positive.
    #[inline]
    pub fn from_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "linear power ratio must be positive");
        Db(10.0 * ratio.log10())
    }

    /// The linear power ratio this decibel value represents.
    #[inline]
    pub fn ratio(self) -> f64 {
        10.0_f64.powf(self.0 / 10.0)
    }
}

impl Joules {
    /// Mean power (in watts, as a raw `f64`) expended over a duration.
    #[inline]
    pub fn mean_power_w(self, over: Seconds) -> f64 {
        self.0 / over.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_unit_arithmetic() {
        let a = Meters::new(300.0);
        let b = Meters::new(40.0);
        assert_eq!((a - b).get(), 260.0);
        assert_eq!((a + b).get(), 340.0);
        assert_eq!((-b).get(), -40.0);
        assert_eq!((a * 2.0).get(), 600.0);
        assert_eq!((2.0 * a).get(), 600.0);
        assert_eq!((a / 2.0).get(), 150.0);
        assert_eq!(a / b, 7.5); // dimensionless ratio
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut t = Seconds::new(1.0);
        t += Seconds::new(2.0);
        t -= Seconds::new(0.5);
        t *= 4.0;
        t /= 2.0;
        assert_eq!(t.get(), 5.0);
        let total: Seconds = [1.0, 2.0, 3.0].iter().map(|&s| Seconds::new(s)).sum();
        assert_eq!(total.get(), 6.0);
    }

    #[test]
    fn shipping_time_identity() {
        // Tship = (d0 − d)/v: the airplane baseline at d = 100 m.
        let t = (Meters::new(300.0) - Meters::new(100.0)) / MetersPerSec::new(10.0);
        assert_eq!(t, Seconds::new(20.0));
    }

    #[test]
    fn transmission_time_identity() {
        // Ttx = Mdata/s(d): 28 MB at 12 Mb/s is 28e6·8/12e6 ≈ 18.67 s.
        let t = Bytes::from_mb(28.0) / BitsPerSec::from_mbps(12.0);
        assert!((t.get() - 28e6 * 8.0 / 12e6).abs() < 1e-12);
    }

    #[test]
    fn speed_distance_roundtrip() {
        let v = Meters::new(90.0) / Seconds::new(20.0);
        assert_eq!(v, MetersPerSec::new(4.5));
        assert_eq!(v * Seconds::new(20.0), Meters::new(90.0));
        assert_eq!(Seconds::new(20.0) * v, Meters::new(90.0));
    }

    #[test]
    fn rate_volume_roundtrip() {
        let delivered = BitsPerSec::from_mbps(12.0) * Seconds::new(10.0);
        assert_eq!(delivered, Bytes::new(15e6));
        assert_eq!(Seconds::new(10.0) * BitsPerSec::from_mbps(12.0), delivered);
    }

    #[test]
    fn byte_conversions() {
        let m = Bytes::from_mb(56.2);
        assert_eq!(m.get(), 56.2e6);
        assert!((m.megabytes() - 56.2).abs() < 1e-12);
        assert_eq!(m.bits(), 56.2e6 * 8.0);
    }

    #[test]
    fn rate_conversions() {
        let r = BitsPerSec::from_mbps(24.97);
        assert!((r.get() - 24.97e6).abs() < 1e-9);
        assert!((r.mbps() - 24.97).abs() < 1e-12);
    }

    #[test]
    fn db_ratio_roundtrip() {
        for &db in &[-30.0, 0.0, 3.0, 20.0] {
            let d = Db::new(db);
            assert!((Db::from_ratio(d.ratio()).get() - db).abs() < 1e-12);
        }
        assert!((Db::new(3.0).ratio() - 1.995).abs() < 0.01);
        // Gains add in log domain.
        assert_eq!(Db::new(16.0) + Db::new(2.0) - Db::new(3.0), Db::new(15.0));
    }

    #[test]
    #[should_panic]
    fn db_from_nonpositive_ratio_panics() {
        let _ = Db::from_ratio(0.0);
    }

    #[test]
    fn joules_mean_power() {
        assert_eq!(Joules::new(600.0).mean_power_w(Seconds::new(60.0)), 10.0);
    }

    #[test]
    fn ordering_and_helpers() {
        let a = Seconds::new(-2.0);
        assert_eq!(a.abs(), Seconds::new(2.0));
        assert!(Seconds::new(1.0) < Seconds::new(2.0));
        assert_eq!(Seconds::new(1.0).max(Seconds::new(2.0)), Seconds::new(2.0));
        assert_eq!(Seconds::new(1.0).min(Seconds::new(2.0)), Seconds::new(1.0));
        assert_eq!(
            Seconds::new(5.0).clamp(Seconds::ZERO, Seconds::new(3.0)),
            Seconds::new(3.0)
        );
        assert!(Seconds::new(1.0).is_finite());
        assert!(!Seconds::new(f64::INFINITY).is_finite());
        assert_eq!(Seconds::default(), Seconds::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Meters::new(20.0)), "20 m");
        assert_eq!(format!("{:.2}", Seconds::new(1.234)), "1.23 s");
        assert_eq!(format!("{}", BitsPerSec::from_mbps(1.0)), "1000000 bit/s");
        assert_eq!(format!("{:.1}", Db::new(-91.98)), "-92.0 dB");
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(Meters::from_km(1.5), Meters::new(1500.0));
        assert_eq!(Seconds::from_millis(250.0), Seconds::new(0.25));
        assert_eq!(Seconds::from_micros(4.0), Seconds::new(4.0e-6));
    }

    #[test]
    fn zero_cost_layout() {
        // The newtypes must stay transparent wrappers — same size and
        // alignment as f64 — so hot paths pay nothing for the safety.
        assert_eq!(std::mem::size_of::<Meters>(), std::mem::size_of::<f64>());
        assert_eq!(std::mem::align_of::<Db>(), std::mem::align_of::<f64>());
    }
}
