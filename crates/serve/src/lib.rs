//! # skyferry-serve
//!
//! The serving subsystem: `skyferryd` turns the Eq. (2) optimizer into a
//! long-running decision service, and `skyferry-loadgen` hammers it and
//! measures it.
//!
//! A UAV (or a planner acting for one) asks, over a TCP connection,
//! "given `(d0, Mdata, ρ, v, platform)`, transmit now or ferry closer?"
//! and gets the solved optimum back. The interesting systems work is in
//! between:
//!
//! * [`proto`] — the request/response vocabulary: decide and control
//!   requests, typed error kinds, deterministic JSON rendering;
//!   malformed input becomes a typed `bad-request` response, never a
//!   panic;
//! * [`framing`] — incremental frame extraction over both wire codecs:
//!   newline-delimited JSON and the length-prefixed `bin1` binary
//!   codec a connection can negotiate mid-stream
//!   (`{"cmd":"codec","v":"bin1"}`);
//! * [`engine`] — batch decision evaluation with
//!   *sequential-equivalent* cache semantics: responses, hit flags
//!   and eviction order are bit-identical to one-at-a-time serving, at
//!   any worker count and any batch partitioning;
//! * [`cache`] — a deterministic LRU keyed on quantized parameter
//!   buckets ([`skyferry_core::request::Quantizer`]), mirroring the
//!   repro harness's `CampaignStore` economics at per-request scale;
//! * [`metrics`] — lock-free atomic counters plus a streaming
//!   log-bucket latency histogram (p50/p95/p99), kept per shard and
//!   merged (with a per-shard breakdown) by the `stats` control
//!   request;
//! * [`policy`] — serving state for a compiled
//!   [`skyferry_core::policy`] table: O(1) lock-free lookups on the
//!   shard threads, exact-engine fallback for out-of-range requests;
//! * [`shard`] — the event loops: each shard owns a `poll(2)` reactor
//!   ([`skyferry_reactor`]), its connections, a private engine+cache,
//!   and its metrics slice; decide requests route to the shard owning
//!   their quantized key via lock-free mailboxes, and pipelined
//!   frames are answered as engine batches;
//! * [`server`] — the TCP front end: one accept thread dealing
//!   connections to the shard loops round-robin, graceful
//!   ack-then-drain shutdown on a control message;
//! * [`bounded`] — a bounded MPSC job queue with backpressure,
//!   retained as a standalone utility (the sharded server's backlog
//!   control is the per-shard atomic reservation in [`shard`]);
//! * [`loadgen`] — closed-loop, open-loop (fixed-rate) and
//!   many-connection open-loop (reactor-multiplexed `--conns`)
//!   workload driver with a seeded `DetRng` request mix,
//!   cache/table/no-cache comparison, rtt/service/connect latency
//!   decomposition, `--saturation` latency-under-load sweeps, and
//!   `BENCH_serve.json` output.
//!
//! Real wall-clock timing is confined to this crate (and `bench`) by
//! the `wall-clock` lint rule: a latency histogram is the one place the
//! workspace *wants* `Instant`.

#![forbid(unsafe_code)]

pub mod bounded;
pub mod cache;
pub mod engine;
pub mod framing;
pub mod loadgen;
pub mod metrics;
pub mod policy;
pub mod proto;
pub mod server;
pub mod shard;
