//! # skyferry-serve
//!
//! The serving subsystem: `skyferryd` turns the Eq. (2) optimizer into a
//! long-running decision service, and `skyferry-loadgen` hammers it and
//! measures it.
//!
//! A UAV (or a planner acting for one) asks, over a TCP connection,
//! "given `(d0, Mdata, ρ, v, platform)`, transmit now or ferry closer?"
//! and gets the solved optimum back. The interesting systems work is in
//! between:
//!
//! * [`proto`] — newline-delimited JSON framing (one request per line,
//!   one response per line, in order), reusing `stats::json` for both
//!   directions; malformed input becomes a typed `bad-request`
//!   response, never a panic;
//! * [`bounded`] — a bounded MPSC job queue with backpressure: when it
//!   is full the connection thread answers `overloaded` immediately
//!   (503-style) instead of queueing unboundedly;
//! * [`engine`] — batch decision evaluation on `sim::parallel` workers
//!   with *sequential-equivalent* cache semantics: responses, hit flags
//!   and eviction order are bit-identical to one-at-a-time serving, at
//!   any worker count and any batch partitioning;
//! * [`cache`] — a deterministic LRU keyed on quantized parameter
//!   buckets ([`skyferry_core::request::Quantizer`]), mirroring the
//!   repro harness's `CampaignStore` economics at per-request scale;
//! * [`metrics`] — lock-free atomic counters plus a streaming
//!   log-bucket latency histogram (p50/p95/p99) served by the `STATS`
//!   control request;
//! * [`policy`] — serving state for a compiled
//!   [`skyferry_core::policy`] table: O(1) lock-free lookups on the
//!   reader threads, exact-engine fallback for out-of-range requests;
//! * [`server`] — the TCP front end: reader/writer threads per
//!   connection, a single dispatcher owning engine and cache, graceful
//!   shutdown on a control message;
//! * [`loadgen`] — open-loop (fixed-rate) and closed-loop
//!   (fixed-concurrency) workload driver with a seeded `DetRng` request
//!   mix, cache-vs-no-cache comparison, and `BENCH_serve.json` output.
//!
//! Real wall-clock timing is confined to this crate (and `bench`) by
//! the `wall-clock` lint rule: a latency histogram is the one place the
//! workspace *wants* `Instant`.

#![forbid(unsafe_code)]

pub mod bounded;
pub mod cache;
pub mod engine;
pub mod loadgen;
pub mod metrics;
pub mod policy;
pub mod proto;
pub mod server;
