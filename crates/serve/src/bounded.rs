//! A bounded multi-producer job queue with explicit backpressure.
//!
//! Connection threads `try_push`; the dispatcher drains in batches.
//! There is deliberately no blocking push: when the queue is full the
//! connection answers `overloaded` immediately (the 503 of this
//! protocol) rather than letting latency pile up invisibly in an
//! unbounded buffer. Depth 0 is a valid configuration that rejects
//! every job — the tests use it to exercise the overflow path without
//! timing races.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused (the job comes back to the caller so it can
/// answer the client).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// At capacity; the caller should shed load.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. `capacity` is fixed at construction.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The configured depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking; refuses when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue up to `max` jobs, blocking until at least one is
    /// available. Returns an empty vector only when the queue is closed
    /// *and* fully drained — the dispatcher's exit signal.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if !s.items.is_empty() {
                let n = s.items.len().min(max.max(1));
                return s.items.drain(..n).collect();
            }
            if s.closed {
                return Vec::new();
            }
            s = self.available.wait(s).expect("queue lock poisoned");
        }
    }

    /// Close the queue: pending jobs still drain, new pushes are
    /// refused, blocked consumers wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }

    /// Has [`close`](BoundedQueue::close) been called?
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("capacity 8");
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(10), vec![3, 4]);
    }

    #[test]
    fn overflow_returns_the_job() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("room");
        q.try_push(2).expect("room");
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        // Depth 0 rejects everything.
        let z: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(z.try_push(9), Err(PushError::Full(9)));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push('a').expect("room");
        q.close();
        assert_eq!(q.try_push('b'), Err(PushError::Closed('b')));
        assert_eq!(q.pop_batch(4), vec!['a']);
        assert_eq!(q.pop_batch(4), Vec::<char>::new());
        assert!(q.is_closed());
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                let batch = q2.pop_batch(2);
                if batch.is_empty() {
                    return got;
                }
                got.extend(batch);
            }
        });
        for i in 0..6 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().expect("consumer finishes");
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }
}
