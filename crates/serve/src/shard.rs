//! Sharded event loops: the multiplexed heart of `skyferryd`.
//!
//! The server runs N **shards**, each a single thread owning a
//! [`Poller`], a private [`Engine`] (quantized LRU cache included), and
//! the connections assigned to it. Connections are distributed
//! round-robin by the acceptor; *decide requests* are routed by the
//! FNV-1a hash of their quantized cache key, so every key lives in
//! exactly one shard's cache and the hot path takes **no shared lock**
//! — a shard touches only its own engine and its own counters.
//!
//! ## Message passing
//!
//! Cross-shard traffic rides per-shard inboxes (a mutex'd `VecDeque`
//! drained in FIFO order — the mutex guards a queue of *messages*, never
//! the decision path itself) paired with a [`Waker`] that interrupts the
//! target's `poll(2)` wait:
//!
//! * [`Msg::Remote`] — a decide whose key hashes to another shard; the
//!   owning shard solves it in its own batch and sends
//!   [`Msg::RemoteDone`] back to the origin, which renders the response
//!   in the codec tagged at parse time.
//! * [`Msg::Control`] — `reset`/`cache` broadcasts. Each shard flushes
//!   its in-flight batch (the same barrier semantics the old dispatcher
//!   had), applies the op, and decrements a countdown; the last shard
//!   acks to the origin. The origin enqueues the broadcast *before*
//!   parsing the next frame, and inboxes are FIFO, so a decide sent
//!   after a `reset` on the same connection always observes the reset.
//!
//! ## Sequential equivalence, per shard
//!
//! A shard feeds its engine the decides it owns **in arrival order**
//! (inbox first, then the frames parsed this iteration) and the
//! engine's three-pass batch serve is bit-identical to one-at-a-time
//! serving of that subsequence. Because a key's solve depends only on
//! its snapped parameters, the `d_star` stream a client observes is
//! identical across shard *counts* too; hit/miss totals are identical
//! whenever the working set fits the cache (each unique key lives in
//! exactly one shard), which is what the loadgen `--expect-identical`
//! phases pin down at 1/2/8 shards.
//!
//! ## Ordering
//!
//! Responses leave each connection in request order: every frame gets a
//! sequence number at parse, rendered responses park in a per-
//! connection `BTreeMap` reorder buffer, and bytes ship strictly in
//! sequence. A response renders in the codec that was in effect when
//! its request was parsed, so codec negotiation is a clean seam even
//! mid-pipeline.
//!
//! This module's event-loop functions are reactor callbacks: the
//! `blocking-in-reader` lint rule holds them to no sleeps, no file I/O
//! and no cross-shard lock acquisition beyond the FIFO inbox push.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::BytesMut;
use skyferry_core::request::DecisionParams;
use skyferry_reactor::{Event, Interest, Poller, Token, WakeReceiver, Waker};
use skyferry_stats::json::Json;
use skyferry_trace as trace;
use skyferry_trace::clock::monotonic_ns;

use crate::cache::{CacheStats, Key};
use crate::engine::{Engine, EngineConfig};
use crate::framing::{self, Codec, Frame, FrameDecoder, FrameError};
use crate::metrics::{LatencyHistogram, Metrics};
use crate::policy::PolicyState;
use crate::proto::{
    ack_response, decision_response, error_response, parse_request, Decision, ErrorKind, Request,
};

/// Token 0 is every shard's waker; connection tokens start at 1.
const WAKER_TOKEN: Token = Token(0);
/// How long a draining shard keeps flushing after shutdown triggers.
const DRAIN_NS: u64 = 1_000_000_000;

/// Route a quantized cache key to its owning shard: FNV-1a folded over
/// the five key words (word-at-a-time — the key is already integer
/// words, byte granularity buys nothing). Pure and total, so request
/// routing is reproducible across runs and shard restarts.
pub fn route_shard(key: &Key, nshards: usize) -> usize {
    debug_assert!(nshards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in key {
        h ^= *w;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % nshards as u64) as usize
}

/// Mirror of a shard's cache counters, published by the owning shard
/// after every batch so `{"cmd":"stats"}` can be served from any shard
/// without touching another shard's engine.
#[derive(Debug, Default)]
pub(crate) struct CacheMirror {
    pub enabled: AtomicBool,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub len: AtomicU64,
    pub capacity: AtomicU64,
}

impl CacheMirror {
    fn publish(&self, s: &CacheStats, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        self.hits.store(s.hits, Ordering::Relaxed);
        self.misses.store(s.misses, Ordering::Relaxed);
        self.evictions.store(s.evictions, Ordering::Relaxed);
        self.len.store(s.len as u64, Ordering::Relaxed);
        self.capacity.store(s.capacity as u64, Ordering::Relaxed);
    }
}

/// The externally visible half of one shard: its inbox, waker and
/// counters. Everything else (engine, poller, connections) is private
/// to the shard thread.
pub(crate) struct ShardShared {
    pub id: usize,
    pub inbox: Mutex<VecDeque<Msg>>,
    pub waker: Waker,
    /// Decides queued for this shard (inbox + current batch), bounded
    /// by `queue_depth`; reservation happens at the *sending* side so a
    /// full shard sheds `overloaded` before any cross-shard traffic.
    pub backlog: AtomicUsize,
    pub metrics: Metrics,
    /// Connections currently owned (gauge; `metrics.connections` is the
    /// cumulative accept counter).
    pub open_conns: AtomicU64,
    pub cache: CacheMirror,
}

impl ShardShared {
    pub fn new(id: usize) -> std::io::Result<(ShardShared, WakeReceiver)> {
        let (waker, receiver) = Waker::pair()?;
        Ok((
            ShardShared {
                id,
                inbox: Mutex::new(VecDeque::new()),
                waker,
                backlog: AtomicUsize::new(0),
                metrics: Metrics::new(),
                open_conns: AtomicU64::new(0),
                cache: CacheMirror::default(),
            },
            receiver,
        ))
    }

    /// Enqueue a message and wake the shard's loop.
    pub fn send(&self, msg: Msg) {
        self.inbox
            .lock()
            .expect("shard inbox poisoned")
            .push_back(msg);
        self.waker.wake();
    }
}

/// Server-wide state shared by the acceptor, every shard, and the
/// [`crate::server::ServerHandle`].
pub(crate) struct ServerState {
    pub shards: Vec<ShardShared>,
    pub policy: Option<PolicyState>,
    pub deterministic: bool,
    pub queue_depth: usize,
    pub max_batch: usize,
    pub shutdown: AtomicBool,
    /// Decides routed cross-shard whose responses have not yet reached
    /// their origin — part of the drain condition on shutdown.
    pub remote_inflight: AtomicUsize,
    pub addr: Mutex<Option<SocketAddr>>,
}

impl ServerState {
    pub fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            for shard in &self.shards {
                shard.waker.wake();
            }
            // Unblock the blocking accept loop with a throwaway
            // connection.
            if let Some(addr) = *self.addr.lock().expect("addr lock poisoned") {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
            }
        }
    }
}

/// A control broadcast op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtlOp {
    Reset,
    Cache(bool),
}

impl CtlOp {
    fn ack_name(&self) -> &'static str {
        match self {
            CtlOp::Reset => "reset",
            CtlOp::Cache(_) => "cache",
        }
    }
}

/// A decide routed to the shard owning its key.
#[derive(Debug)]
pub(crate) struct RemoteDecide {
    pub params: DecisionParams,
    pub origin: usize,
    pub conn: u64,
    pub seq: u64,
    pub codec: Codec,
    pub t_recv_ns: u64,
    pub t_parsed_ns: u64,
    pub req_id: u64,
}

/// A solved decide returning to its origin shard.
#[derive(Debug)]
pub(crate) struct RemoteDone {
    pub conn: u64,
    pub seq: u64,
    pub codec: Codec,
    pub decision: Decision,
    pub us_served: u64,
}

/// A control broadcast: apply the op, count down, last one acks.
#[derive(Debug, Clone)]
pub(crate) struct ControlMsg {
    pub op: CtlOp,
    pub remaining: Arc<AtomicUsize>,
    pub origin: usize,
    pub conn: u64,
    pub seq: u64,
    pub codec: Codec,
}

/// Everything that can land in a shard's inbox.
pub(crate) enum Msg {
    NewConn(TcpStream),
    Remote(RemoteDecide),
    RemoteDone(RemoteDone),
    Control(ControlMsg),
    ControlDone {
        conn: u64,
        seq: u64,
        codec: Codec,
        op: CtlOp,
    },
}

/// One decide awaiting this shard's next engine batch.
struct BatchJob {
    params: DecisionParams,
    origin: usize,
    conn: u64,
    seq: u64,
    codec: Codec,
    t_recv_ns: u64,
    t_parsed_ns: u64,
    req_id: u64,
}

/// Why a connection's frame parsing is paused.
///
/// The blocking server's dispatcher made every control request a
/// barrier; the sharded server keeps the same per-connection
/// *read-your-writes* semantics by gating the frame parser instead:
/// bytes keep accumulating in the decoder, but no later frame is acted
/// on until the gate lifts. Only the one connection waits — every
/// shard keeps serving everyone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Parse freely.
    Open,
    /// A reset/cache broadcast from this connection is still being
    /// applied on peer shards; lifts when the ack delivers.
    Control,
    /// A stats request is waiting for this connection's in-flight
    /// decides to drain, so the snapshot it renders includes them.
    Stats { seq: u64, codec: Codec },
}

/// One connection owned by a shard.
struct Conn {
    stream: TcpStream,
    token: Token,
    decoder: FrameDecoder,
    /// Rendered responses waiting for their turn (seq → bytes).
    pending: BTreeMap<u64, Vec<u8>>,
    /// In-order bytes ready for the socket; `out_pos` already written.
    out: Vec<u8>,
    out_pos: usize,
    next_seq: u64,
    next_write: u64,
    /// Decides awaiting a decision (response still to be rendered).
    inflight: usize,
    /// Peer closed its write half; serve what is owed, then close.
    read_closed: bool,
    /// Fatal framing error: stop parsing, flush, close.
    closing: bool,
    /// Socket is dead (hangup / write error): close immediately.
    broken: bool,
    /// Currently registered for write readiness too.
    want_write: bool,
    /// Ordering gate for pipelined control traffic.
    gate: Gate,
    /// Re-entrancy guard: `parse_frames` is a no-op while already
    /// parsing this connection (a gate can lift mid-parse).
    parsing: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: Token) -> Conn {
        Conn {
            stream,
            token,
            decoder: FrameDecoder::new(),
            pending: BTreeMap::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            inflight: 0,
            read_closed: false,
            closing: false,
            broken: false,
            want_write: false,
            gate: Gate::Open,
            parsing: false,
        }
    }

    fn out_done(&self) -> bool {
        self.out_pos >= self.out.len() && self.pending.is_empty()
    }

    /// Nothing further will be produced or written: safe to close.
    fn finished(&self) -> bool {
        self.broken || ((self.read_closed || self.closing) && self.inflight == 0 && self.out_done())
    }
}

fn render_decision(codec: Codec, d: &Decision, us_served: u64) -> Vec<u8> {
    match codec {
        Codec::Ndjson => {
            let mut v = decision_response(d, us_served).into_bytes();
            v.push(b'\n');
            v
        }
        Codec::Bin1 => {
            let mut b = BytesMut::new();
            framing::encode_decision_frame(d, us_served, &mut b);
            b[..].to_vec()
        }
    }
}

fn render_json(codec: Codec, line: &str) -> Vec<u8> {
    match codec {
        Codec::Ndjson => {
            let mut v = line.as_bytes().to_vec();
            v.push(b'\n');
            v
        }
        Codec::Bin1 => {
            let mut b = BytesMut::new();
            framing::encode_json_response_frame(line, &mut b);
            b[..].to_vec()
        }
    }
}

/// Reserve one backlog slot against `cap`; `false` means shed.
fn try_reserve(backlog: &AtomicUsize, cap: usize) -> bool {
    backlog
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
            (v < cap).then_some(v + 1)
        })
        .is_ok()
}

enum Pulled {
    Frame(Frame),
    Dry,
    Fatal(FrameError),
}

/// The per-thread state of one shard's event loop.
pub(crate) struct ShardLoop {
    state: Arc<ServerState>,
    id: usize,
    receiver: WakeReceiver,
    engine: Engine,
    poller: Poller,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    batch: Vec<BatchJob>,
}

impl ShardLoop {
    pub fn new(
        state: Arc<ServerState>,
        id: usize,
        receiver: WakeReceiver,
        engine_cfg: EngineConfig,
    ) -> ShardLoop {
        ShardLoop {
            state,
            id,
            receiver,
            engine: Engine::new(engine_cfg),
            poller: Poller::new(),
            conns: BTreeMap::new(),
            next_conn: 1,
            batch: Vec::new(),
        }
    }

    fn me(&self) -> &ShardShared {
        &self.state.shards[self.id]
    }

    fn nshards(&self) -> usize {
        self.state.shards.len()
    }

    /// The event loop. One iteration = wait, drain inbox, handle socket
    /// events, flush the engine batch, flush writes, reap finished
    /// connections.
    pub fn run(mut self) {
        self.poller
            .register(self.receiver.fd(), WAKER_TOKEN, Interest::READ);
        self.me()
            .cache
            .publish(&self.engine.cache_stats(), self.engine.cache_enabled());
        let mut events: Vec<Event> = Vec::new();
        let mut drain_deadline: Option<u64> = None;
        loop {
            let timeout = if self.state.shutdown.load(Ordering::SeqCst) {
                Some(10)
            } else {
                None
            };
            let _ = self.poller.wait(&mut events, timeout);
            self.receiver.drain();
            self.drain_inbox();
            for &ev in events.iter() {
                if ev.token != WAKER_TOKEN {
                    self.handle_event(ev);
                }
            }
            // A lifting gate can resume parsing mid-flush and feed the
            // batch again — keep flushing until it is genuinely empty,
            // or the next `wait` could block on work already accepted.
            while !self.batch.is_empty() {
                self.flush_batch();
            }
            self.flush_writes();
            self.reap();
            if self.state.shutdown.load(Ordering::SeqCst) {
                let inbox_empty = self
                    .me()
                    .inbox
                    .lock()
                    .expect("shard inbox poisoned")
                    .is_empty();
                let idle = inbox_empty
                    && self.batch.is_empty()
                    && self.state.remote_inflight.load(Ordering::SeqCst) == 0
                    && self.conns.values().all(Conn::out_done);
                let now = monotonic_ns();
                let deadline = *drain_deadline.get_or_insert(now.saturating_add(DRAIN_NS));
                if idle || now >= deadline {
                    break;
                }
            }
        }
        // Teardown: deregister and drop every connection.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    fn drain_inbox(&mut self) {
        loop {
            let msg = self
                .me()
                .inbox
                .lock()
                .expect("shard inbox poisoned")
                .pop_front();
            let Some(msg) = msg else { break };
            match msg {
                Msg::NewConn(stream) => self.add_conn(stream),
                Msg::Remote(r) => self.batch.push(BatchJob {
                    params: r.params,
                    origin: r.origin,
                    conn: r.conn,
                    seq: r.seq,
                    codec: r.codec,
                    t_recv_ns: r.t_recv_ns,
                    t_parsed_ns: r.t_parsed_ns,
                    req_id: r.req_id,
                }),
                Msg::RemoteDone(d) => {
                    self.state.remote_inflight.fetch_sub(1, Ordering::SeqCst);
                    self.finish_decide(
                        d.conn,
                        d.seq,
                        render_decision(d.codec, &d.decision, d.us_served),
                    );
                }
                Msg::Control(c) => self.apply_control(c),
                Msg::ControlDone {
                    conn,
                    seq,
                    codec,
                    op,
                } => {
                    self.deliver(conn, seq, render_json(codec, &ack_response(op.ack_name())));
                    self.lift_control_gate(conn);
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = self.next_conn;
        self.next_conn += 1;
        self.poller
            .register(stream.as_raw_fd(), Token(id), Interest::READ);
        self.me().open_conns.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(id, Conn::new(stream, Token(id)));
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            self.poller.deregister(conn.token);
            self.me().open_conns.fetch_sub(1, Ordering::Relaxed);
            // `conn.stream` drops here, closing the fd *after* the
            // deregistration above.
        }
    }

    fn handle_event(&mut self, ev: Event) {
        let id = ev.token.0;
        if !self.conns.contains_key(&id) {
            return;
        }
        if ev.readable {
            self.read_conn(id);
        }
        if ev.writable {
            self.write_conn(id);
        }
        if ev.hangup && !ev.readable {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.broken = true;
            }
        }
    }

    /// Drain the socket into the frame decoder, then parse and handle
    /// every complete frame it holds — the pipelining step.
    fn read_conn(&mut self, id: u64) {
        let mut buf = [0u8; 64 * 1024];
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.closing || conn.broken {
                return;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => conn.decoder.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.broken = true;
                        return;
                    }
                }
            }
        }
        self.parse_frames(id);
    }

    /// Handle every complete frame buffered for `id`, stopping at the
    /// first gap, fatal framing error, or closed gate. Also the resume
    /// point when a [`Gate`] lifts: gated bytes stay in the decoder and
    /// are parsed from here once the barrier completes.
    fn parse_frames(&mut self, id: u64) {
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.parsing {
                return;
            }
            conn.parsing = true;
        }
        loop {
            let pulled = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                if conn.closing || conn.gate != Gate::Open {
                    break;
                }
                match conn.decoder.next_frame() {
                    Ok(Some(f)) => Pulled::Frame(f),
                    Ok(None) => Pulled::Dry,
                    Err(e) => Pulled::Fatal(e),
                }
            };
            match pulled {
                Pulled::Frame(frame) => self.handle_frame(id, frame),
                Pulled::Dry => break,
                Pulled::Fatal(e) => {
                    // Framing is unrecoverable: answer once, flush what
                    // is owed, close.
                    let (codec, seq) = {
                        let conn = self.conns.get_mut(&id).expect("conn checked above");
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.closing = true;
                        (conn.decoder.codec(), seq)
                    };
                    let me = self.me();
                    me.metrics.requests.fetch_add(1, Ordering::Relaxed);
                    me.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                    self.deliver(
                        id,
                        seq,
                        render_json(
                            codec,
                            &error_response(ErrorKind::BadRequest, &e.to_string()),
                        ),
                    );
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.parsing = false;
        }
    }

    /// Parse and route one frame. Every frame that is not an empty
    /// NDJSON line gets a sequence slot and exactly one response.
    fn handle_frame(&mut self, id: u64, frame: Frame) {
        let t_recv_ns = monotonic_ns();
        if matches!(&frame, Frame::Line(l) if l.trim().is_empty()) {
            return;
        }
        self.me().metrics.requests.fetch_add(1, Ordering::Relaxed);
        let (codec, seq) = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            (conn.decoder.codec(), seq)
        };
        let parsed = match &frame {
            Frame::Line(l) => parse_request(l.trim()),
            Frame::Bin(p) => framing::decode_request_frame(p),
        };
        let request = match parsed {
            Ok(r) => r,
            Err(e) => {
                return self.send_err(id, seq, codec, ErrorKind::BadRequest, &e.to_string());
            }
        };
        match request {
            Request::Decide(params) => self.handle_decide(id, seq, codec, params, t_recv_ns),
            Request::Stats => {
                self.mark_control();
                // Read-your-writes: flush the local batch, and if this
                // connection still has decides in flight on other
                // shards, gate until they drain so the snapshot
                // includes every decide sent before the stats request.
                self.flush_batch();
                let gated = match self.conns.get_mut(&id) {
                    Some(conn) if conn.inflight > 0 => {
                        conn.gate = Gate::Stats { seq, codec };
                        true
                    }
                    Some(_) => false,
                    None => return,
                };
                if !gated {
                    let body = stats_json(&self.state).render();
                    self.deliver(id, seq, render_json(codec, &body));
                }
            }
            Request::Reset => {
                if let Some(policy) = self.state.policy.as_ref() {
                    policy.reset();
                }
                self.broadcast_control(id, seq, codec, CtlOp::Reset);
            }
            Request::Cache { enabled } => {
                self.broadcast_control(id, seq, codec, CtlOp::Cache(enabled));
            }
            Request::Policy { enabled } => match self.state.policy.as_ref() {
                Some(policy) => {
                    self.mark_control();
                    policy.set_enabled(enabled);
                    self.deliver(id, seq, render_json(codec, &ack_response("policy")));
                }
                None => self.send_err(
                    id,
                    seq,
                    codec,
                    ErrorKind::BadRequest,
                    "no policy table loaded (start with --policy FILE)",
                ),
            },
            Request::Codec { v } => match Codec::from_wire(&v) {
                Some(new_codec) => {
                    self.mark_control();
                    // Ack in the *old* codec, then switch: the client
                    // may speak the new framing only after the ack.
                    self.deliver(id, seq, render_json(codec, &ack_response("codec")));
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.decoder.set_codec(new_codec);
                    }
                }
                None => self.send_err(
                    id,
                    seq,
                    codec,
                    ErrorKind::BadRequest,
                    &format!("unknown codec '{v}' (ndjson|bin1)"),
                ),
            },
            Request::Shutdown => {
                self.mark_control();
                self.deliver(id, seq, render_json(codec, &ack_response("shutdown")));
                self.state.trigger_shutdown();
            }
        }
    }

    fn handle_decide(
        &mut self,
        id: u64,
        seq: u64,
        codec: Codec,
        params: DecisionParams,
        t_recv_ns: u64,
    ) {
        let params = match params.validated() {
            Ok(p) => p,
            Err(e) => {
                return self.send_err(
                    id,
                    seq,
                    codec,
                    ErrorKind::BadRequest,
                    &format!("invalid parameters: {e}"),
                );
            }
        };
        let req_id = self
            .me()
            .metrics
            .decide_requests
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        let t_parsed_ns = monotonic_ns();

        // Compiled-policy fast path: in-range requests are answered
        // right here on the parsing shard — one O(1) lookup, no routing.
        if let Some(policy) = self.state.policy.as_ref().filter(|p| p.enabled()) {
            if let Some(decision) = policy.decide(&params) {
                let t_done_ns = monotonic_ns();
                let dt_us = t_done_ns.saturating_sub(t_parsed_ns) as f64 / 1e3;
                let us_served = if self.state.deterministic {
                    0
                } else {
                    dt_us.round() as u64
                };
                policy.record_served(dt_us);
                let me = self.me();
                me.metrics.decisions.fetch_add(1, Ordering::Relaxed);
                me.metrics.latency.record(dt_us);
                self.deliver(id, seq, render_decision(codec, &decision, us_served));
                if trace::enabled() {
                    let t_respond_ns = monotonic_ns();
                    let span = trace::manual_span("request");
                    if span.live() {
                        span.finish_tree(
                            t_recv_ns,
                            t_respond_ns,
                            trace::fields!(
                                req = req_id,
                                shard = self.id,
                                cache_hit = decision.cache_hit,
                                policy_hit = true,
                                endpoint = "decide"
                            ),
                            &[
                                ("parse", t_recv_ns, t_parsed_ns),
                                ("policy-lookup", t_parsed_ns, t_done_ns),
                                ("respond", t_done_ns, t_respond_ns),
                            ],
                        );
                    }
                }
                return;
            }
            policy.record_fallback();
        }

        if self.state.shutdown.load(Ordering::SeqCst) {
            return self.send_err(
                id,
                seq,
                codec,
                ErrorKind::ShuttingDown,
                "server is draining; reconnect later",
            );
        }
        let key = self.engine.quantizer().key(&params);
        let target = route_shard(&key, self.nshards());
        if !try_reserve(&self.state.shards[target].backlog, self.state.queue_depth) {
            return self.send_err(
                id,
                seq,
                codec,
                ErrorKind::Overloaded,
                &format!("queue full (depth {})", self.state.queue_depth),
            );
        }
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.inflight += 1;
        }
        if target == self.id {
            self.batch.push(BatchJob {
                params,
                origin: self.id,
                conn: id,
                seq,
                codec,
                t_recv_ns,
                t_parsed_ns,
                req_id,
            });
        } else {
            self.state.remote_inflight.fetch_add(1, Ordering::SeqCst);
            self.state.shards[target].send(Msg::Remote(RemoteDecide {
                params,
                origin: self.id,
                conn: id,
                seq,
                codec,
                t_recv_ns,
                t_parsed_ns,
                req_id,
            }));
        }
    }

    /// Apply a control broadcast: flush (barrier), apply, count down,
    /// and — if last — ack to the origin connection.
    fn apply_control(&mut self, c: ControlMsg) {
        self.flush_batch();
        match c.op {
            CtlOp::Reset => {
                self.engine.reset();
                self.me().metrics.clear();
            }
            CtlOp::Cache(enabled) => self.engine.set_cache_enabled(enabled),
        }
        self.me()
            .cache
            .publish(&self.engine.cache_stats(), self.engine.cache_enabled());
        if c.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            if c.origin == self.id {
                self.deliver(
                    c.conn,
                    c.seq,
                    render_json(c.codec, &ack_response(c.op.ack_name())),
                );
            } else {
                self.state.shards[c.origin].send(Msg::ControlDone {
                    conn: c.conn,
                    seq: c.seq,
                    codec: c.codec,
                    op: c.op,
                });
            }
        }
    }

    /// Start a reset/cache broadcast from a frame on this shard.
    fn broadcast_control(&mut self, id: u64, seq: u64, codec: Codec, op: CtlOp) {
        self.mark_control();
        let remaining = Arc::new(AtomicUsize::new(self.nshards()));
        let msg = ControlMsg {
            op,
            remaining: Arc::clone(&remaining),
            origin: self.id,
            conn: id,
            seq,
            codec,
        };
        // Broadcast to the peers *before* parsing any later frame from
        // this connection: their FIFO inboxes then order the op ahead
        // of any decide this connection sends afterwards.
        for shard in &self.state.shards {
            if shard.id != self.id {
                shard.send(Msg::Control(msg.clone()));
            }
        }
        self.apply_control(msg);
        // Peers still applying: gate this connection until the last one
        // acks, so a pipelined `reset → stats` (or decide) observes the
        // op on every shard. The ack delivery lifts the gate.
        if remaining.load(Ordering::SeqCst) > 0 {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.gate = Gate::Control;
            }
        }
    }

    /// Solve everything accumulated this iteration as engine batches
    /// (chunked to `max_batch`), in arrival order.
    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let jobs = std::mem::take(&mut self.batch);
        for chunk in jobs.chunks(self.state.max_batch.max(1)) {
            self.flush_chunk(chunk);
        }
        self.me()
            .cache
            .publish(&self.engine.cache_stats(), self.engine.cache_enabled());
    }

    fn flush_chunk(&mut self, jobs: &[BatchJob]) {
        let params: Vec<DecisionParams> = jobs.iter().map(|j| j.params).collect();
        let (served, timing) = self.engine.serve_batch_timed(&params);
        let dt_us = timing.t_done_ns.saturating_sub(timing.t_start_ns) as f64 / 1e3;
        let us_served = if self.state.deterministic {
            0
        } else {
            dt_us.round() as u64
        };
        {
            let me = self.me();
            me.metrics
                .decisions
                .fetch_add(served.len() as u64, Ordering::Relaxed);
            for _ in &served {
                me.metrics.latency.record(dt_us);
            }
            me.backlog.fetch_sub(jobs.len(), Ordering::SeqCst);
        }
        for (job, decision) in jobs.iter().zip(&served) {
            if job.origin == self.id {
                self.finish_decide(
                    job.conn,
                    job.seq,
                    render_decision(job.codec, decision, us_served),
                );
            } else {
                // `send` wakes per message; wakes coalesce, so the
                // duplicate wakes for a big batch cost one pipe byte.
                self.state.shards[job.origin].send(Msg::RemoteDone(RemoteDone {
                    conn: job.conn,
                    seq: job.seq,
                    codec: job.codec,
                    decision: *decision,
                    us_served,
                }));
            }
        }
        if trace::enabled() {
            let t_respond_ns = monotonic_ns();
            for (job, decision) in jobs.iter().zip(&served) {
                let span = trace::manual_span("request");
                if !span.live() {
                    continue;
                }
                span.finish_tree(
                    job.t_recv_ns,
                    t_respond_ns,
                    trace::fields!(
                        req = job.req_id,
                        shard = self.id,
                        cache_hit = decision.cache_hit,
                        endpoint = "decide"
                    ),
                    &[
                        ("parse", job.t_recv_ns, job.t_parsed_ns),
                        ("queue", job.t_parsed_ns, timing.t_start_ns),
                        ("cache", timing.t_start_ns, timing.t_cache_ns),
                        ("compute", timing.t_cache_ns, timing.t_done_ns),
                        ("respond", timing.t_done_ns, t_respond_ns),
                    ],
                );
            }
        }
    }

    fn mark_control(&self) {
        self.me()
            .metrics
            .control_requests
            .fetch_add(1, Ordering::Relaxed);
    }

    fn send_err(&mut self, id: u64, seq: u64, codec: Codec, kind: ErrorKind, msg: &str) {
        {
            let me = self.me();
            let counter = match kind {
                ErrorKind::BadRequest => &me.metrics.bad_requests,
                ErrorKind::Overloaded => &me.metrics.overloaded,
                ErrorKind::ShuttingDown => &me.metrics.shed_on_shutdown,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        self.deliver(id, seq, render_json(codec, &error_response(kind, msg)));
    }

    /// Deliver a decide response: settle the connection's inflight
    /// count, hand the bytes to the reorder buffer, and release a
    /// stats request that was waiting for this connection to drain.
    fn finish_decide(&mut self, id: u64, seq: u64, body: Vec<u8>) {
        let release = match self.conns.get_mut(&id) {
            Some(conn) => {
                conn.inflight = conn.inflight.saturating_sub(1);
                match conn.gate {
                    Gate::Stats { seq, codec } if conn.inflight == 0 => {
                        conn.gate = Gate::Open;
                        Some((seq, codec))
                    }
                    _ => None,
                }
            }
            None => None,
        };
        self.deliver(id, seq, body);
        if let Some((stats_seq, codec)) = release {
            let stats = stats_json(&self.state).render();
            self.deliver(id, stats_seq, render_json(codec, &stats));
            self.parse_frames(id);
        }
    }

    /// Lift a [`Gate::Control`] after its broadcast acked, and resume
    /// parsing whatever the connection pipelined behind the barrier.
    fn lift_control_gate(&mut self, id: u64) {
        if let Some(conn) = self.conns.get_mut(&id) {
            if conn.gate == Gate::Control {
                conn.gate = Gate::Open;
                self.parse_frames(id);
            }
        }
    }

    /// Park a rendered response in the reorder buffer and promote every
    /// contiguous response into the connection's write queue.
    fn deliver(&mut self, id: u64, seq: u64, body: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return; // connection closed while the response was in flight
        };
        conn.pending.insert(seq, body);
        while let Some(b) = conn.pending.remove(&conn.next_write) {
            conn.out.extend_from_slice(&b);
            conn.next_write += 1;
        }
    }

    /// Push every connection's buffered bytes toward its socket,
    /// adjusting write-interest registration to match what is left.
    fn flush_writes(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.write_conn(id);
        }
    }

    fn write_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while conn.out_pos < conn.out.len() && !conn.broken {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => conn.broken = true,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => conn.broken = true,
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        }
        let want_write = conn.out_pos < conn.out.len();
        if want_write != conn.want_write {
            conn.want_write = want_write;
            let interest = if want_write {
                Interest::READ_WRITE
            } else {
                Interest::READ
            };
            self.poller.modify(conn.token, interest);
        }
    }

    /// Close connections with nothing left to do.
    fn reap(&mut self) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.finished())
            .map(|(id, _)| *id)
            .collect();
        for id in done {
            self.close_conn(id);
        }
    }
}

/// Build the `{"cmd":"stats"}` body: the legacy top-level shape (sums
/// over shards, so existing clients keep working) plus the per-shard
/// breakdown. A pure function of the shared atomics, callable from any
/// shard — unit tests pin merged totals == per-shard sums.
pub(crate) fn stats_json(state: &ServerState) -> Json {
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed) as i64;
    let mut totals = [0i64; 13];
    let mut latency = LatencyHistogram::new();
    let mut shards_json = Vec::new();

    for shard in &state.shards {
        let m = &shard.metrics;
        let c = &shard.cache;
        let backlog = shard.backlog.load(Ordering::SeqCst) as i64;
        let snap = m.latency.snapshot();
        let row = [
            load(&m.connections),
            load(&m.requests),
            load(&m.decisions),
            load(&m.bad_requests),
            load(&m.decide_requests),
            load(&m.control_requests),
            load(&m.overloaded),
            load(&m.shed_on_shutdown),
            backlog,
            load(&c.hits),
            load(&c.misses),
            load(&c.evictions),
            load(&c.len),
        ];
        for (t, v) in totals.iter_mut().zip(row) {
            *t += v;
        }
        latency.merge(&snap);
        shards_json.push(Json::obj([
            ("shard", Json::Int(shard.id as i64)),
            ("connections", Json::Int(row[0])),
            (
                "open_conns",
                Json::Int(shard.open_conns.load(Ordering::Relaxed) as i64),
            ),
            ("requests", Json::Int(row[1])),
            ("decisions", Json::Int(row[2])),
            ("bad_requests", Json::Int(row[3])),
            ("overloaded", Json::Int(row[6])),
            ("queue_len", Json::Int(backlog)),
            (
                "cache",
                Json::obj([
                    ("enabled", Json::Bool(c.enabled.load(Ordering::Relaxed))),
                    ("hits", Json::Int(row[9])),
                    ("misses", Json::Int(row[10])),
                    ("evictions", Json::Int(row[11])),
                    ("len", Json::Int(row[12])),
                    ("capacity", Json::Int(load(&c.capacity))),
                ]),
            ),
            ("latency", snap.to_json()),
        ]));
    }

    let capacity: i64 = state.shards.iter().map(|s| load(&s.cache.capacity)).sum();
    let cache_enabled = state.shards[0].cache.enabled.load(Ordering::Relaxed);
    Json::obj([
        ("connections", Json::Int(totals[0])),
        ("requests", Json::Int(totals[1])),
        ("decisions", Json::Int(totals[2])),
        ("bad_requests", Json::Int(totals[3])),
        (
            "endpoints",
            Json::obj([
                ("decide", Json::Int(totals[4])),
                ("control", Json::Int(totals[5])),
            ]),
        ),
        ("overloaded", Json::Int(totals[6])),
        ("shed_on_shutdown", Json::Int(totals[7])),
        ("queue_len", Json::Int(totals[8])),
        (
            "cache",
            Json::obj([
                ("enabled", Json::Bool(cache_enabled)),
                ("hits", Json::Int(totals[9])),
                ("misses", Json::Int(totals[10])),
                ("evictions", Json::Int(totals[11])),
                ("len", Json::Int(totals[12])),
                ("capacity", Json::Int(capacity)),
            ]),
        ),
        (
            "policy",
            state
                .policy
                .as_ref()
                .map(PolicyState::to_json)
                .unwrap_or_else(|| Json::obj([("loaded", Json::Bool(false))])),
        ),
        ("latency", latency.to_json()),
        ("shard_count", Json::Int(state.shards.len() as i64)),
        ("shards", Json::Arr(shards_json)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(nshards: usize) -> ServerState {
        let shards = (0..nshards)
            .map(|i| ShardShared::new(i).expect("waker pair").0)
            .collect();
        ServerState {
            shards,
            policy: None,
            deterministic: true,
            queue_depth: 16,
            max_batch: 64,
            shutdown: AtomicBool::new(false),
            remote_inflight: AtomicUsize::new(0),
            addr: Mutex::new(None),
        }
    }

    #[test]
    fn route_shard_is_deterministic_and_in_range() {
        let key: Key = [3, 1500, 42, 7, 0];
        for n in 1..=16 {
            let s = route_shard(&key, n);
            assert!(s < n);
            assert_eq!(s, route_shard(&key, n), "routing must be pure");
        }
        assert_eq!(route_shard(&key, 1), 0);
    }

    #[test]
    fn route_shard_spreads_distinct_keys() {
        // 64 distinct keys over 8 shards: no shard may end up empty —
        // FNV over the key words should spread far better than that.
        let mut seen = [false; 8];
        for i in 0..64u64 {
            let key: Key = [i, i * 31 + 1, i * 7, 2, i % 5];
            seen[route_shard(&key, 8)] = true;
        }
        assert!(seen.iter().all(|s| *s), "some shard got no keys: {seen:?}");
    }

    #[test]
    fn merged_stats_equal_per_shard_sums() {
        let state = test_state(3);
        // Distinct primes per shard so any mis-merge shows up.
        for (i, shard) in state.shards.iter().enumerate() {
            let k = (i as u64 + 1) * 10;
            shard.metrics.connections.store(k + 1, Ordering::Relaxed);
            shard.metrics.requests.store(k + 2, Ordering::Relaxed);
            shard.metrics.decisions.store(k + 3, Ordering::Relaxed);
            shard.metrics.bad_requests.store(k + 4, Ordering::Relaxed);
            shard
                .metrics
                .decide_requests
                .store(k + 5, Ordering::Relaxed);
            shard
                .metrics
                .control_requests
                .store(k + 6, Ordering::Relaxed);
            shard.metrics.overloaded.store(k + 7, Ordering::Relaxed);
            shard
                .metrics
                .shed_on_shutdown
                .store(k + 8, Ordering::Relaxed);
            shard.backlog.store(i + 2, Ordering::SeqCst);
            shard.cache.hits.store(k + 9, Ordering::Relaxed);
            shard.cache.misses.store(k + 10, Ordering::Relaxed);
            shard.cache.evictions.store(k + 11, Ordering::Relaxed);
            shard.cache.len.store(k + 12, Ordering::Relaxed);
            shard.cache.capacity.store(1024, Ordering::Relaxed);
            shard.cache.enabled.store(true, Ordering::Relaxed);
            shard.metrics.latency.record((i as f64 + 1.0) * 100.0);
        }
        let json = stats_json(&state);
        let get = |path: &[&str]| -> i64 {
            let mut v = &json;
            for p in path {
                v = v.get(p).expect("stats key");
            }
            v.as_i64().expect("int stats value")
        };
        // Merged totals are exactly the per-shard sums.
        assert_eq!(get(&["connections"]), 11 + 21 + 31);
        assert_eq!(get(&["requests"]), 12 + 22 + 32);
        assert_eq!(get(&["decisions"]), 13 + 23 + 33);
        assert_eq!(get(&["bad_requests"]), 14 + 24 + 34);
        assert_eq!(get(&["endpoints", "decide"]), 15 + 25 + 35);
        assert_eq!(get(&["endpoints", "control"]), 16 + 26 + 36);
        assert_eq!(get(&["overloaded"]), 17 + 27 + 37);
        assert_eq!(get(&["shed_on_shutdown"]), 18 + 28 + 38);
        assert_eq!(get(&["queue_len"]), 2 + 3 + 4);
        assert_eq!(get(&["cache", "hits"]), 19 + 29 + 39);
        assert_eq!(get(&["cache", "misses"]), 20 + 30 + 40);
        assert_eq!(get(&["cache", "evictions"]), 21 + 31 + 41);
        assert_eq!(get(&["cache", "len"]), 22 + 32 + 42);
        assert_eq!(get(&["cache", "capacity"]), 3 * 1024);
        assert_eq!(get(&["shard_count"]), 3);
        // The per-shard array carries each shard's own numbers and sums
        // back to the merged totals.
        let shards = match json.get("shards") {
            Some(Json::Arr(a)) => a,
            other => panic!("shards array missing: {other:?}"),
        };
        assert_eq!(shards.len(), 3);
        let sum: i64 = shards
            .iter()
            .map(|s| s.get("requests").and_then(Json::as_i64).expect("requests"))
            .sum();
        assert_eq!(sum, get(&["requests"]));
        let lat_total: i64 = shards
            .iter()
            .map(|s| {
                s.get("latency")
                    .and_then(|l| l.get("count"))
                    .and_then(Json::as_i64)
                    .expect("latency count")
            })
            .sum();
        assert_eq!(get(&["latency", "count"]), lat_total);
        assert_eq!(lat_total, 3);
    }

    #[test]
    fn try_reserve_respects_capacity() {
        let backlog = AtomicUsize::new(0);
        assert!(try_reserve(&backlog, 2));
        assert!(try_reserve(&backlog, 2));
        assert!(!try_reserve(&backlog, 2), "third reservation must shed");
        backlog.fetch_sub(1, Ordering::SeqCst);
        assert!(try_reserve(&backlog, 2));
        // Depth 0 sheds everything — the `--queue-depth 0` contract.
        let zero = AtomicUsize::new(0);
        assert!(!try_reserve(&zero, 0));
    }
}
