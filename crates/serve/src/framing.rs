//! Pipelined framing and the `bin1` binary codec.
//!
//! A [`FrameDecoder`] accumulates raw socket bytes and yields complete
//! frames — as many per readable event as the buffer holds, which is
//! what makes pipelining work: a client may write a hundred requests in
//! one burst and the shard parses them all from a single `read`.
//!
//! Two codecs share the decoder:
//!
//! * **NDJSON** (the default): one JSON object per `\n`-terminated
//!   line, exactly the [`crate::proto`] grammar. Lines longer than
//!   [`MAX_LINE_BYTES`] are a framing error.
//! * **`bin1`** (negotiated via `{"cmd":"codec","v":"bin1"}`): each
//!   frame is a little-endian `u32` payload length followed by the
//!   payload. Payloads longer than [`MAX_BIN_FRAME_BYTES`] are a
//!   framing error. The first payload byte is a tag:
//!
//!   | dir      | tag | layout                                                            |
//!   |----------|-----|-------------------------------------------------------------------|
//!   | request  | 0   | platform `u8`, then `f64`×4: `d0_m`, `mdata_bytes`, `rho_per_m`, `v_mps` |
//!   | request  | 1   | UTF-8 JSON object (control requests; same grammar as a line)      |
//!   | response | 0   | `f64`×3: `d_star`, `utility`, `cdelay_s`; flags `u8` (bit 0 `transmit_now`, bit 1 `cache_hit`, bit 2 `policy_hit`); `us_served` `u64` |
//!   | response | 1   | UTF-8 JSON object (errors, acks, stats)                           |
//!
//! Decision parameters travel as raw `f64` bits, so a `bin1` decide is
//! bit-identical to the `DecisionParams` the client built — there is no
//! decimal round-trip on the hot path, which is both the speed and the
//! determinism argument for the codec.
//!
//! Framing errors are **connection-fatal**: an oversized or truncated
//! frame means the stream can no longer be trusted to resynchronise, so
//! the server answers one final `bad-request` and closes. Byte-level
//! encode/decode goes through the vendored `bytes` (`skyferry-bufs`)
//! `Buf`/`BufMut` traits — the raw-endian conventions the
//! `raw-endian-bytes` lint rule pins stay in one crate.

use bytes::{Buf, BufMut, BytesMut};
use skyferry_core::request::{DecisionParams, Platform};

use crate::proto::{Decision, Request, RequestError};

/// Longest accepted NDJSON line (bytes, excluding the newline).
pub const MAX_LINE_BYTES: usize = 256 * 1024;
/// Longest accepted `bin1` payload (bytes, excluding the length prefix).
pub const MAX_BIN_FRAME_BYTES: usize = 1024 * 1024;

/// Wire name of the binary codec, as sent in `{"cmd":"codec","v":...}`.
pub const BIN1_WIRE_NAME: &str = "bin1";

const TAG_DECIDE: u8 = 0;
const TAG_JSON: u8 = 1;
const FLAG_TRANSMIT_NOW: u8 = 1 << 0;
const FLAG_CACHE_HIT: u8 = 1 << 1;
const FLAG_POLICY_HIT: u8 = 1 << 2;

/// Which framing a connection currently speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Newline-delimited JSON (the default until negotiated away).
    #[default]
    Ndjson,
    /// Length-prefixed binary frames.
    Bin1,
}

impl Codec {
    /// Parse a codec name from the negotiation request.
    pub fn from_wire(v: &str) -> Option<Codec> {
        match v {
            "ndjson" => Some(Codec::Ndjson),
            BIN1_WIRE_NAME => Some(Codec::Bin1),
            _ => None,
        }
    }

    /// The name this codec negotiates under.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Codec::Ndjson => "ndjson",
            Codec::Bin1 => BIN1_WIRE_NAME,
        }
    }
}

/// One complete frame extracted from the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An NDJSON line, newline (and any trailing `\r`) stripped.
    Line(String),
    /// A `bin1` payload, length prefix stripped.
    Bin(Vec<u8>),
}

/// Why the byte stream stopped making sense (connection-fatal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// More than [`MAX_LINE_BYTES`] buffered without a newline.
    OversizedLine(usize),
    /// A `bin1` length prefix exceeding [`MAX_BIN_FRAME_BYTES`].
    OversizedFrame(usize),
    /// An NDJSON line that is not UTF-8.
    InvalidUtf8,
    /// A `bin1` payload that does not decode (truncated, bad tag, …).
    BadFrame(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::OversizedLine(n) => {
                write!(f, "line exceeds {MAX_LINE_BYTES} bytes ({n} buffered)")
            }
            FrameError::OversizedFrame(n) => {
                write!(f, "frame length {n} exceeds {MAX_BIN_FRAME_BYTES} bytes")
            }
            FrameError::InvalidUtf8 => write!(f, "line is not valid UTF-8"),
            FrameError::BadFrame(m) => write!(f, "bad bin1 frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame extractor over an append-only byte buffer.
///
/// Feed it socket reads with [`extend_from_slice`](Self::extend_from_slice),
/// then drain complete frames with [`next_frame`](Self::next_frame) until
/// it returns `Ok(None)`. Consumed bytes are compacted away lazily so a
/// long-lived connection does not grow its buffer without bound.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `start` are consumed and awaiting compaction.
    start: usize,
    /// Newline scan high-water mark (absolute index, `>= start`).
    scanned: usize,
    codec: Codec,
}

impl FrameDecoder {
    /// A fresh decoder speaking NDJSON.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// The codec currently in effect.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Switch codecs (takes effect for the *next* frame; bytes already
    /// buffered are reinterpreted, which is exactly right: negotiation
    /// is acknowledged before the client may send binary frames).
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
        self.scanned = self.start;
    }

    /// Append freshly read socket bytes.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// `true` when a partial frame is pending — after EOF this means
    /// the peer disconnected mid-frame.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Extract the next complete frame, if one is fully buffered.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match self.codec {
            Codec::Ndjson => self.next_line(),
            Codec::Bin1 => self.next_bin(),
        }
    }

    fn next_line(&mut self) -> Result<Option<Frame>, FrameError> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                let nl = self.scanned + off;
                let mut line = &self.buf[self.start..nl];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let line = std::str::from_utf8(line)
                    .map_err(|_| FrameError::InvalidUtf8)?
                    .to_string();
                self.consume(nl + 1 - self.start);
                Ok(Some(Frame::Line(line)))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buffered() > MAX_LINE_BYTES {
                    return Err(FrameError::OversizedLine(self.buffered()));
                }
                Ok(None)
            }
        }
    }

    fn next_bin(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let mut head = &self.buf[self.start..self.start + 4];
        let len = head.get_u32_le() as usize;
        if len > MAX_BIN_FRAME_BYTES {
            return Err(FrameError::OversizedFrame(len));
        }
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[self.start + 4..self.start + 4 + len].to_vec();
        self.consume(4 + len);
        Ok(Some(Frame::Bin(payload)))
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        self.scanned = self.start;
        // Compact once the dead prefix dominates; amortised O(1) per byte.
        if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
    }
}

fn platform_tag(p: Platform) -> u8 {
    match p {
        Platform::Airplane => 0,
        Platform::Quadrocopter => 1,
    }
}

fn platform_from_tag(t: u8) -> Option<Platform> {
    match t {
        0 => Some(Platform::Airplane),
        1 => Some(Platform::Quadrocopter),
        _ => None,
    }
}

fn put_frame(out: &mut BytesMut, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_BIN_FRAME_BYTES);
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
}

/// Encode a `bin1` decide request (length prefix included).
pub fn encode_decide_frame(p: &DecisionParams, out: &mut BytesMut) {
    let mut payload = BytesMut::with_capacity(34);
    payload.put_u8(TAG_DECIDE);
    payload.put_u8(platform_tag(p.platform));
    payload.put_f64_le(p.d0_m);
    payload.put_f64_le(p.mdata_bytes);
    payload.put_f64_le(p.rho_per_m);
    payload.put_f64_le(p.v_mps);
    put_frame(out, &payload);
}

/// Encode a `bin1` JSON-escape request frame carrying a control line.
pub fn encode_json_request_frame(line: &str, out: &mut BytesMut) {
    let mut payload = BytesMut::with_capacity(1 + line.len());
    payload.put_u8(TAG_JSON);
    payload.put_slice(line.as_bytes());
    put_frame(out, &payload);
}

/// Decode a `bin1` request payload into the same [`Request`] the NDJSON
/// parser yields, so everything downstream of framing is codec-blind.
pub fn decode_request_frame(payload: &[u8]) -> Result<Request, RequestError> {
    let mut buf = payload;
    if buf.remaining() < 1 {
        return Err(RequestError::Malformed("bin1: empty payload".into()));
    }
    match buf.get_u8() {
        TAG_DECIDE => {
            if buf.remaining() != 33 {
                return Err(RequestError::Malformed(format!(
                    "bin1: decide payload must be 34 bytes, got {}",
                    payload.len()
                )));
            }
            let platform = platform_from_tag(buf.get_u8())
                .ok_or_else(|| RequestError::UnknownPlatform(format!("bin1 tag {}", payload[1])))?;
            let mut params = DecisionParams::baseline(platform);
            params.d0_m = buf.get_f64_le();
            params.mdata_bytes = buf.get_f64_le();
            params.rho_per_m = buf.get_f64_le();
            params.v_mps = buf.get_f64_le();
            Ok(Request::Decide(params))
        }
        TAG_JSON => {
            let line = std::str::from_utf8(buf)
                .map_err(|_| RequestError::Malformed("bin1: JSON escape is not UTF-8".into()))?;
            crate::proto::parse_request(line)
        }
        other => Err(RequestError::Malformed(format!(
            "bin1: unknown request tag {other}"
        ))),
    }
}

/// Encode a `bin1` decision response (length prefix included).
pub fn encode_decision_frame(d: &Decision, us_served: u64, out: &mut BytesMut) {
    let mut payload = BytesMut::with_capacity(34);
    payload.put_u8(TAG_DECIDE);
    payload.put_f64_le(d.transfer.d_opt);
    payload.put_f64_le(d.transfer.utility);
    payload.put_f64_le(d.transfer.cdelay_s());
    let mut flags = 0u8;
    if d.transmit_now {
        flags |= FLAG_TRANSMIT_NOW;
    }
    if d.cache_hit {
        flags |= FLAG_CACHE_HIT;
    }
    if d.policy_hit {
        flags |= FLAG_POLICY_HIT;
    }
    payload.put_u8(flags);
    payload.put_u64_le(us_served);
    put_frame(out, &payload);
}

/// Encode a `bin1` JSON-escape response frame (errors, acks, stats).
pub fn encode_json_response_frame(line: &str, out: &mut BytesMut) {
    encode_json_request_frame(line, out);
}

/// A decoded `bin1` decision response (client side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinDecision {
    /// Optimal transfer distance `d*` in metres.
    pub d_star: f64,
    /// Achieved Eq. (2) utility.
    pub utility: f64,
    /// Communication delay (ship + transmit) in seconds.
    pub cdelay_s: f64,
    /// Optimum is to transmit from the current position.
    pub transmit_now: bool,
    /// Served by the decision cache.
    pub cache_hit: bool,
    /// Served by the compiled policy table.
    pub policy_hit: bool,
    /// Server-side service time in microseconds.
    pub us_served: u64,
}

/// A decoded `bin1` response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum BinResponse {
    /// A solved decision.
    Decision(BinDecision),
    /// A JSON-escape payload (error, ack, or stats object).
    Json(String),
}

/// Decode a `bin1` response payload (client side).
pub fn decode_response_frame(payload: &[u8]) -> Result<BinResponse, FrameError> {
    let mut buf = payload;
    if buf.remaining() < 1 {
        return Err(FrameError::BadFrame("empty payload".into()));
    }
    match buf.get_u8() {
        TAG_DECIDE => {
            if buf.remaining() != 33 {
                return Err(FrameError::BadFrame(format!(
                    "decision payload must be 34 bytes, got {}",
                    payload.len()
                )));
            }
            let d_star = buf.get_f64_le();
            let utility = buf.get_f64_le();
            let cdelay_s = buf.get_f64_le();
            let flags = buf.get_u8();
            let us_served = buf.get_u64_le();
            Ok(BinResponse::Decision(BinDecision {
                d_star,
                utility,
                cdelay_s,
                transmit_now: flags & FLAG_TRANSMIT_NOW != 0,
                cache_hit: flags & FLAG_CACHE_HIT != 0,
                policy_hit: flags & FLAG_POLICY_HIT != 0,
                us_served,
            }))
        }
        TAG_JSON => {
            let line = std::str::from_utf8(buf)
                .map_err(|_| FrameError::BadFrame("JSON escape is not UTF-8".into()))?;
            Ok(BinResponse::Json(line.to_string()))
        }
        other => Err(FrameError::BadFrame(format!(
            "unknown response tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decision_response, Decision};
    use skyferry_core::optimizer::OptimalTransfer;
    use skyferry_sim::rng::DetRng;

    fn sample_params() -> DecisionParams {
        let mut p = DecisionParams::baseline(Platform::Quadrocopter);
        p.d0_m = 123.25;
        p.mdata_bytes = 56.2e6;
        p.rho_per_m = 2.46e-4;
        p.v_mps = 4.5;
        p
    }

    fn sample_decision() -> Decision {
        Decision {
            transfer: OptimalTransfer {
                d_opt: 164.5,
                utility: 0.0125,
                survival: 0.98,
                ship_s: 13.5,
                tx_s: 21.0,
            },
            transmit_now: false,
            cache_hit: true,
            policy_hit: false,
        }
    }

    #[test]
    fn ndjson_split_reads_and_batched_lines() {
        let mut dec = FrameDecoder::new();
        dec.extend_from_slice(b"{\"cmd\":\"sta");
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(dec.mid_frame());
        dec.extend_from_slice(b"ts\"}\n{\"a\":1}\r\n{\"b\":2}\n{\"tail");
        assert_eq!(
            dec.next_frame(),
            Ok(Some(Frame::Line("{\"cmd\":\"stats\"}".into())))
        );
        assert_eq!(dec.next_frame(), Ok(Some(Frame::Line("{\"a\":1}".into()))));
        assert_eq!(dec.next_frame(), Ok(Some(Frame::Line("{\"b\":2}".into()))));
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(dec.mid_frame());
        dec.extend_from_slice(b"\"}\n");
        assert_eq!(dec.next_frame(), Ok(Some(Frame::Line("{\"tail\"}".into()))));
        assert!(!dec.mid_frame());
    }

    #[test]
    fn oversized_line_is_fatal() {
        let mut dec = FrameDecoder::new();
        dec.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 1]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::OversizedLine(_))
        ));
    }

    #[test]
    fn bin_frames_across_fragmented_reads() {
        let mut out = BytesMut::new();
        encode_decide_frame(&sample_params(), &mut out);
        encode_json_request_frame("{\"cmd\":\"stats\"}", &mut out);
        let wire: &[u8] = &out;

        // Feed the two frames one byte at a time; the decoder must
        // yield exactly two frames, in order, regardless of fragmentation.
        let mut dec = FrameDecoder::new();
        dec.set_codec(Codec::Bin1);
        let mut frames = Vec::new();
        for &b in wire {
            dec.extend_from_slice(&[b]);
            while let Some(f) = dec.next_frame().expect("clean stream") {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            decode_request_frame(match &frames[0] {
                Frame::Bin(p) => p,
                f => panic!("expected bin frame, got {f:?}"),
            }),
            Ok(Request::Decide(sample_params()))
        );
        assert_eq!(
            decode_request_frame(match &frames[1] {
                Frame::Bin(p) => p,
                f => panic!("expected bin frame, got {f:?}"),
            }),
            Ok(Request::Stats)
        );
    }

    #[test]
    fn seeded_fragmentation_loop_reassembles_both_codecs() {
        // 200 requests per codec, split at DetRng-chosen boundaries:
        // every fragmentation of the same byte stream must yield the
        // same frame sequence.
        for codec in [Codec::Ndjson, Codec::Bin1] {
            let mut wire = BytesMut::new();
            let mut want = 0usize;
            for i in 0..200u32 {
                let mut p = sample_params();
                p.d0_m = 50.0 + f64::from(i);
                match codec {
                    Codec::Ndjson => {
                        wire.put_slice(
                            format!(
                                "{{\"platform\":\"quadrocopter\",\"d0\":{}}}\n",
                                50.0 + f64::from(i)
                            )
                            .as_bytes(),
                        );
                    }
                    Codec::Bin1 => encode_decide_frame(&p, &mut wire),
                }
                want += 1;
            }
            let wire: &[u8] = &wire;
            let mut rng = DetRng::seed(0x5eed_f2a6);
            for _trial in 0..20 {
                let mut dec = FrameDecoder::new();
                dec.set_codec(codec);
                let mut got = 0usize;
                let mut pos = 0usize;
                while pos < wire.len() {
                    let chunk = 1 + (rng.next_u64() as usize) % 37;
                    let end = (pos + chunk).min(wire.len());
                    dec.extend_from_slice(&wire[pos..end]);
                    pos = end;
                    while let Some(frame) = dec.next_frame().expect("clean stream") {
                        match (&frame, codec) {
                            (Frame::Line(l), Codec::Ndjson) => {
                                assert!(matches!(
                                    crate::proto::parse_request(l),
                                    Ok(Request::Decide(_))
                                ));
                            }
                            (Frame::Bin(p), Codec::Bin1) => {
                                assert!(matches!(decode_request_frame(p), Ok(Request::Decide(_))));
                            }
                            (f, c) => panic!("frame {f:?} under codec {c:?}"),
                        }
                        got += 1;
                    }
                }
                assert_eq!(got, want, "codec {codec:?}");
                assert!(!dec.mid_frame(), "stream consumed exactly");
            }
        }
    }

    #[test]
    fn bin_oversized_and_truncated_frames() {
        let mut dec = FrameDecoder::new();
        dec.set_codec(Codec::Bin1);
        let mut out = BytesMut::new();
        out.put_u32_le((MAX_BIN_FRAME_BYTES + 1) as u32);
        dec.extend_from_slice(&out);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::OversizedFrame(MAX_BIN_FRAME_BYTES + 1))
        );

        // A mid-frame disconnect: header promises 34 bytes, stream ends
        // after 10. The decoder reports a pending partial frame.
        let mut dec = FrameDecoder::new();
        dec.set_codec(Codec::Bin1);
        let mut out = BytesMut::new();
        out.put_u32_le(34);
        out.put_slice(&[0u8; 10]);
        dec.extend_from_slice(&out);
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(dec.mid_frame());

        assert!(matches!(
            decode_request_frame(&[TAG_DECIDE, 0, 1, 2]),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            decode_request_frame(&[9]),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            decode_response_frame(&[TAG_DECIDE, 0]),
            Err(FrameError::BadFrame(_))
        ));
    }

    #[test]
    fn decide_roundtrip_is_bit_identical() {
        let mut p = sample_params();
        // Adversarial bit patterns survive: negative zero and subnormals.
        p.rho_per_m = f64::from_bits(1); // smallest subnormal
        p.d0_m = -0.0;
        let mut out = BytesMut::new();
        encode_decide_frame(&p, &mut out);
        let mut dec = FrameDecoder::new();
        dec.set_codec(Codec::Bin1);
        dec.extend_from_slice(&out);
        let Ok(Some(Frame::Bin(payload))) = dec.next_frame() else {
            panic!("expected one frame");
        };
        let Ok(Request::Decide(back)) = decode_request_frame(&payload) else {
            panic!("expected decide");
        };
        assert_eq!(back.d0_m.to_bits(), p.d0_m.to_bits());
        assert_eq!(back.mdata_bytes.to_bits(), p.mdata_bytes.to_bits());
        assert_eq!(back.rho_per_m.to_bits(), p.rho_per_m.to_bits());
        assert_eq!(back.v_mps.to_bits(), p.v_mps.to_bits());
        assert_eq!(back.platform, p.platform);
    }

    #[test]
    fn decision_roundtrip_matches_json_rendering() {
        let d = sample_decision();
        let mut out = BytesMut::new();
        encode_decision_frame(&d, 42, &mut out);
        let mut dec = FrameDecoder::new();
        dec.set_codec(Codec::Bin1);
        dec.extend_from_slice(&out);
        let Ok(Some(Frame::Bin(payload))) = dec.next_frame() else {
            panic!("expected one frame");
        };
        let BinResponse::Decision(b) = decode_response_frame(&payload).expect("decodes") else {
            panic!("expected decision");
        };
        assert_eq!(b.d_star.to_bits(), d.transfer.d_opt.to_bits());
        assert_eq!(b.utility.to_bits(), d.transfer.utility.to_bits());
        assert_eq!(b.cdelay_s.to_bits(), d.transfer.cdelay_s().to_bits());
        assert!(!b.transmit_now);
        assert!(b.cache_hit);
        assert!(!b.policy_hit);
        assert_eq!(b.us_served, 42);
        // The fields agree with what the NDJSON renderer would say.
        let line = decision_response(&d, 42);
        assert!(line.contains("\"cache_hit\":true"));

        let mut out = BytesMut::new();
        encode_json_response_frame("{\"ok\":\"reset\"}", &mut out);
        let mut dec = FrameDecoder::new();
        dec.set_codec(Codec::Bin1);
        dec.extend_from_slice(&out);
        let Ok(Some(Frame::Bin(payload))) = dec.next_frame() else {
            panic!("expected one frame");
        };
        assert_eq!(
            decode_response_frame(&payload),
            Ok(BinResponse::Json("{\"ok\":\"reset\"}".into()))
        );
    }

    #[test]
    fn codec_negotiation_switches_mid_stream() {
        let mut dec = FrameDecoder::new();
        dec.extend_from_slice(b"{\"cmd\":\"codec\",\"v\":\"bin1\"}\n");
        let Ok(Some(Frame::Line(line))) = dec.next_frame() else {
            panic!("expected the negotiation line");
        };
        assert_eq!(
            crate::proto::parse_request(&line),
            Ok(Request::Codec { v: "bin1".into() })
        );
        dec.set_codec(Codec::Bin1);
        let mut out = BytesMut::new();
        encode_decide_frame(&sample_params(), &mut out);
        dec.extend_from_slice(&out);
        assert!(matches!(dec.next_frame(), Ok(Some(Frame::Bin(_)))));
        assert_eq!(Codec::from_wire("bin1"), Some(Codec::Bin1));
        assert_eq!(Codec::from_wire("ndjson"), Some(Codec::Ndjson));
        assert_eq!(Codec::from_wire("bin2"), None);
    }

    #[test]
    fn long_stream_compacts_buffer() {
        // 50k short lines through one decoder: the internal buffer must
        // stay bounded by compaction, not grow with total throughput.
        let mut dec = FrameDecoder::new();
        let line = b"{\"platform\":\"airplane\"}\n";
        for _ in 0..50_000 {
            dec.extend_from_slice(line);
            assert!(matches!(dec.next_frame(), Ok(Some(Frame::Line(_)))));
        }
        assert!(dec.buf.capacity() < 1024 * 1024, "buffer stayed bounded");
    }
}
