//! Deterministic LRU cache for solved decisions.
//!
//! The map and the recency index are both `BTreeMap`s over plain
//! integer keys — no hashing anywhere — so iteration order, eviction
//! order and therefore every counter the server reports are a pure
//! function of the request stream. (The `CampaignStore` memoizer in the
//! repro harness made whole-campaign cells reusable; this is the same
//! economics at per-request granularity, plus bounded capacity.)
//!
//! ## Pending slots and batch parallelism
//!
//! The engine serves requests in batches: a sequential bookkeeping pass
//! calls [`DecisionCache::lookup_or_reserve`] for every request *in
//! stream order*, then the unique misses are solved in parallel, then
//! [`DecisionCache::fulfill`] publishes the results. The `Pending`
//! reservation is what makes that equivalent to one-at-a-time serving:
//! a second request for a key whose first requester is still being
//! solved observes [`Lookup::SharedMiss`] (it will not pay for compute
//! — a sequential server would have had the value by then), and
//! eviction decisions happen at reservation time, so they cannot depend
//! on how the stream was chopped into batches or how many workers
//! solved the misses.
//!
//! Pending slots never outlive a `serve_batch` call; the engine
//! fulfills (or evicts) every reservation it makes before returning.

use std::collections::BTreeMap;

use skyferry_core::optimizer::OptimalTransfer;
use skyferry_core::request::Quantizer;

/// A cache key: platform tag plus four per-dimension words (bucket
/// index or raw `f64` bits, chosen per dimension by the [`Quantizer`]).
pub type Key = [u64; 5];

/// What a lookup found (and did).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lookup {
    /// The key is resident with a solved value.
    Hit(OptimalTransfer),
    /// The key was reserved earlier in the current batch and its value
    /// is being computed; the caller shares it without solving again.
    SharedMiss,
    /// New key. A `Pending` slot has been reserved (possibly evicting
    /// the least-recently-used entry); the caller must solve and
    /// [`DecisionCache::fulfill`] it.
    Miss,
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Ready(OptimalTransfer),
    Pending,
}

/// Hit/miss/eviction counters, snapshotted into `STATS` responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident value ([`Lookup::Hit`]) or a
    /// same-batch reservation ([`Lookup::SharedMiss`]) — either way the
    /// request skipped the golden-section search.
    pub hits: u64,
    /// Lookups that had to solve ([`Lookup::Miss`]).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Resident entries right now.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// The LRU itself. All state transitions happen in the caller's
/// (sequential) bookkeeping pass; nothing here is thread-aware.
#[derive(Debug)]
pub struct DecisionCache {
    capacity: usize,
    quant: Quantizer,
    slots: BTreeMap<Key, (u64, Slot)>,
    /// Recency index: insertion tick → key. The smallest tick is the
    /// least-recently-used entry.
    recency: BTreeMap<u64, Key>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DecisionCache {
    /// An empty cache. `capacity` is the maximum number of resident
    /// entries; `0` disables caching entirely (every lookup misses and
    /// nothing is stored).
    pub fn new(capacity: usize, quant: Quantizer) -> DecisionCache {
        DecisionCache {
            capacity,
            quant,
            slots: BTreeMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The quantizer whose buckets key this cache.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quant
    }

    /// Counter/occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.slots.len(),
            capacity: self.capacity,
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drop every entry and zero the counters (the `reset` control
    /// request, between load-generator comparison phases).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.recency.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        // `tick` deliberately keeps counting: recency ordering spans
        // resets, and restarting it would let a stale tick collide.
    }

    fn touch(&mut self, key: Key, old_tick: u64) -> u64 {
        self.recency.remove(&old_tick);
        let t = self.tick;
        self.tick += 1;
        self.recency.insert(t, key);
        t
    }

    /// Look `key` up, refreshing its recency on a hit and reserving a
    /// `Pending` slot on a miss (evicting the LRU entry if the cache is
    /// full). Counters update here, so they — like the eviction order —
    /// depend only on the stream order of lookups.
    pub fn lookup_or_reserve(&mut self, key: Key) -> Lookup {
        if self.capacity == 0 {
            self.misses += 1;
            return Lookup::Miss;
        }
        if let Some(&(old_tick, slot)) = self.slots.get(&key) {
            let t = self.touch(key, old_tick);
            // Entry exists: refresh recency in place.
            if let Some(entry) = self.slots.get_mut(&key) {
                entry.0 = t;
            }
            self.hits += 1;
            return match slot {
                Slot::Ready(v) => Lookup::Hit(v),
                Slot::Pending => Lookup::SharedMiss,
            };
        }
        self.misses += 1;
        if self.slots.len() >= self.capacity {
            // Evict the least-recently-used entry (smallest tick).
            if let Some((&lru_tick, &lru_key)) = self.recency.iter().next() {
                self.recency.remove(&lru_tick);
                self.slots.remove(&lru_key);
                self.evictions += 1;
            }
        }
        let t = self.tick;
        self.tick += 1;
        self.recency.insert(t, key);
        self.slots.insert(key, (t, Slot::Pending));
        Lookup::Miss
    }

    /// Publish the solved value for a reservation made by
    /// [`lookup_or_reserve`](DecisionCache::lookup_or_reserve). A no-op
    /// if the reservation was evicted in the meantime (the batch keeps
    /// its own copy of computed values, so nothing is lost) or the slot
    /// is already `Ready`.
    pub fn fulfill(&mut self, key: Key, value: OptimalTransfer) {
        if let Some(entry) = self.slots.get_mut(&key) {
            if matches!(entry.1, Slot::Pending) {
                entry.1 = Slot::Ready(value);
            }
        }
    }

    /// `true` while any reservation is unfulfilled (only ever between
    /// an engine's bookkeeping and fulfil passes; used by debug
    /// assertions and tests).
    pub fn has_pending(&self) -> bool {
        self.slots.values().any(|(_, s)| matches!(s, Slot::Pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_core::request::{DecisionParams, Platform};
    use skyferry_sim::rng::DetRng;

    fn v(d: f64) -> OptimalTransfer {
        OptimalTransfer {
            d_opt: d,
            utility: 1.0,
            survival: 1.0,
            ship_s: 0.0,
            tx_s: 1.0,
        }
    }

    fn k(i: u64) -> Key {
        [0, i, 0, 0, 0]
    }

    #[test]
    fn hit_after_fulfill_returns_the_value() {
        let mut c = DecisionCache::new(4, Quantizer::exact());
        assert_eq!(c.lookup_or_reserve(k(1)), Lookup::Miss);
        assert_eq!(c.lookup_or_reserve(k(1)), Lookup::SharedMiss);
        c.fulfill(k(1), v(10.0));
        assert_eq!(c.lookup_or_reserve(k(1)), Lookup::Hit(v(10.0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recent_and_respects_touch() {
        let mut c = DecisionCache::new(3, Quantizer::exact());
        for i in 1..=3 {
            assert_eq!(c.lookup_or_reserve(k(i)), Lookup::Miss);
            c.fulfill(k(i), v(i as f64));
        }
        // Touch key 1 so key 2 becomes the LRU.
        assert!(matches!(c.lookup_or_reserve(k(1)), Lookup::Hit(_)));
        assert_eq!(c.lookup_or_reserve(k(4)), Lookup::Miss);
        c.fulfill(k(4), v(4.0));
        // Key 2 was evicted; 1, 3, 4 remain.
        assert!(matches!(c.lookup_or_reserve(k(1)), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_reserve(k(3)), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_reserve(k(4)), Lookup::Hit(_)));
        assert_eq!(c.lookup_or_reserve(k(2)), Lookup::Miss);
        assert_eq!(c.stats().evictions, 2); // key 2 out for key 4, then key...
        assert_eq!(c.stats().len, 3);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = DecisionCache::new(0, Quantizer::exact());
        assert_eq!(c.lookup_or_reserve(k(1)), Lookup::Miss);
        c.fulfill(k(1), v(1.0));
        assert_eq!(c.lookup_or_reserve(k(1)), Lookup::Miss);
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn clear_resets_counters_but_not_ticks() {
        let mut c = DecisionCache::new(2, Quantizer::exact());
        c.lookup_or_reserve(k(1));
        c.fulfill(k(1), v(1.0));
        c.clear();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 0, 0));
        assert_eq!(c.lookup_or_reserve(k(1)), Lookup::Miss);
    }

    // Satellite 3(c): capacity/eviction invariants under seeded churn.
    #[test]
    fn churn_preserves_lru_invariants() {
        let mut rng = DetRng::seed(0xC4C4_0001);
        let capacity = 16;
        let mut c = DecisionCache::new(capacity, Quantizer::exact());
        let mut resident_model: Vec<u64> = Vec::new(); // MRU at the back
        for step in 0..5000u64 {
            let key_id = rng.index(64) as u64;
            let got = c.lookup_or_reserve(k(key_id));
            match got {
                Lookup::Hit(_) | Lookup::SharedMiss => {
                    let pos = resident_model
                        .iter()
                        .position(|&x| x == key_id)
                        .expect("model says resident");
                    resident_model.remove(pos);
                    resident_model.push(key_id);
                }
                Lookup::Miss => {
                    assert!(
                        !resident_model.contains(&key_id),
                        "cache missed a key the model holds (step {step})"
                    );
                    if resident_model.len() == capacity {
                        resident_model.remove(0); // evict model LRU
                    }
                    resident_model.push(key_id);
                    c.fulfill(k(key_id), v(key_id as f64));
                }
            }
            assert!(c.len() <= capacity, "capacity exceeded");
            assert_eq!(c.len(), resident_model.len());
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 5000);
        assert_eq!(
            s.evictions,
            s.misses - s.len as u64,
            "every miss either occupies a slot or displaced someone"
        );
        // The reference model and the cache agree on exactly which keys
        // survived the churn.
        for &key_id in &resident_model {
            assert!(matches!(c.lookup_or_reserve(k(key_id)), Lookup::Hit(_)));
        }
    }

    #[test]
    fn quantized_keys_coalesce_neighbouring_params() {
        let q = Quantizer::default_buckets();
        let mut c = DecisionCache::new(8, q);
        let mut a = DecisionParams::baseline(Platform::Airplane);
        let mut b = a;
        a.d0_m = 299.0;
        b.d0_m = 301.0;
        let (qa, qb) = (*c.quantizer(), *c.quantizer());
        assert_eq!(c.lookup_or_reserve(qa.key(&a)), Lookup::Miss);
        c.fulfill(qa.key(&a), v(1.0));
        assert_eq!(c.lookup_or_reserve(qb.key(&b)), Lookup::Hit(v(1.0)));
    }
}
