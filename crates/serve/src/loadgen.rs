//! The load generator behind `skyferry-loadgen`.
//!
//! Drives a running `skyferryd` with a seeded, reproducible request mix
//! and measures it from the client side:
//!
//! * **closed-loop** (default): `concurrency` connections, each keeping
//!   `window` requests in flight (pipelined — an initial burst, then
//!   read-one-send-one), so throughput is bounded by the server, not by
//!   round trips;
//! * **open-loop** (`--rate R`): requests are launched on a fixed
//!   schedule split across the connections, so latency includes queue
//!   buildup when the server cannot keep up;
//! * **many-connection open-loop** (`--conns N --rate R`): one reactor
//!   ([`skyferry_reactor`]) event loop multiplexes N mostly-idle
//!   connections — the fleet-of-UAVs shape — and requests fire on a
//!   single global schedule round-robin across them. The same engine
//!   drives `--saturation R1,R2,...`, which sweeps offered load and
//!   records a latency-under-load curve in the report.
//!
//! Latency is reported three ways, because a pipelined client's raw
//! round trip is *not* comparable to the server's per-request service
//! time (that mismatch — ~4.2 ms client p50 vs ~29 µs server p50 — is
//! pure client-side pipeline queueing, not server work):
//!
//! * **rtt**: send (open loop: *scheduled* send, so coordinated
//!   omission is not hidden) to response — what a caller experiences,
//!   including time queued behind the rest of the pipeline window;
//! * **service**: the in-order decomposition
//!   `service_i = T_i − max(sent_i, T_{i−1})` (T = response arrival on
//!   the same connection) — the interval the server alone contributes
//!   to response `i`, directly comparable to the server-side histogram;
//! * **connect**: TCP connection setup, separated out instead of
//!   polluting the first request's latency.
//!
//! The mix comes from a `DetRng` stream: a `pool` of distinct parameter
//! tuples is drawn once, then each request either repeats a pool entry
//! or (with probability `unique_frac`) draws fresh parameters. The same
//! seed therefore replays byte-identical request lines — which is what
//! makes `--compare` meaningful: phase 1 runs with the decision cache
//! enabled, phase 2 disables it (`cache`/`reset` control requests),
//! same workload, and the report carries the throughput ratio plus a
//! per-request `d_star` comparison (bit-exact when the server runs in
//! exactness mode).
//!
//! `--codec bin1` negotiates the length-prefixed binary codec on every
//! measured connection before the clock starts; decide requests then
//! travel as raw `f64` bits, so `--expect-identical` holds across
//! codecs too.
//!
//! Two extensions exercise the paths a warm 64-key pool never touches:
//!
//! * `--miss-heavy` repeats every phase with a second, fully unique
//!   workload (`unique_frac = 1`), reported as `<label>-miss` — the
//!   uncached-optimizer floor and the table path under realistic churn;
//! * `--policy-compare` (against a `skyferryd --policy` server) runs
//!   three phases — `table` (policy on), `cache` (policy off, cache
//!   on), `no-cache` (both off) — and reports `table_speedup`;
//! * `--grid quick|full` draws requests *on* the compiled policy grid's
//!   cell centres, so table, cache and exact phases all solve
//!   bit-identical parameters and the `d_star` streams can be compared
//!   bitwise across all three.
//!
//! `--fleet-trace FILE` replaces the random mix with a recorded fleet
//! request stream (`repro --export-fleet-trace` JSONL): each line's
//! contended-equivalent `(platform, d0, mdata, rho, speed)` tuple is
//! replayed in arrival order, so a generic `skyferryd` solves exactly
//! the d\* the fleet campaign computed. The report gains the stream's
//! inter-arrival statistics (p50/p95 gap, burstiness = the gaps'
//! coefficient of variation — ~0 for a uniform schedule, >1 for the
//! fleet's bursty waves), and `--compare --expect-identical` gates the
//! replayed d\* streams bitwise across phases exactly as for the
//! uniform-pool workload.
//!
//! Client-side percentiles use the exact `stats::quantile` over the raw
//! latency samples; the report also embeds the server's own `STATS`
//! snapshot, and everything lands in `BENCH_serve.json` /
//! `BENCH_policy.json`.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use skyferry_core::policy::PolicyGrid;
use skyferry_core::request::DecisionParams;
use skyferry_reactor::{Event, Interest, Poller, Token};
use skyferry_sim::rng::{DetRng, SeedStream};
use skyferry_stats::json::{self, Json};
use skyferry_stats::quantile::quantile;
use skyferry_trace::clock::monotonic_ns;

use crate::framing::{self, BinResponse, Codec, Frame, FrameDecoder, FrameError};
use crate::proto::{self, Request};

/// Which compiled-policy grid the workload should align to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridMode {
    /// [`PolicyGrid::quick`] — the CI grid.
    Quick,
    /// [`PolicyGrid::full`] — the production grid.
    Full,
}

impl GridMode {
    /// The grid this mode names.
    pub fn grid(&self) -> PolicyGrid {
        match self {
            GridMode::Quick => PolicyGrid::quick(),
            GridMode::Full => PolicyGrid::full(),
        }
    }
}

impl std::str::FromStr for GridMode {
    type Err = String;
    fn from_str(s: &str) -> Result<GridMode, String> {
        match s {
            "quick" => Ok(GridMode::Quick),
            "full" => Ok(GridMode::Full),
            other => Err(format!("unknown grid '{other}' (quick|full)")),
        }
    }
}

/// Knobs of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4517`.
    pub addr: String,
    /// Total requests per phase.
    pub requests: usize,
    /// Concurrent connections (closed-loop / split-rate mode).
    pub concurrency: usize,
    /// Pipelining window per connection (closed loop) / outstanding cap
    /// (open loop).
    pub window: usize,
    /// Open-loop request rate in req/s; `None` = closed loop. With
    /// `conns > 0` the rate is a single global schedule over the
    /// reactor-multiplexed connections, otherwise it is split across
    /// `concurrency` threads.
    pub rate: Option<f64>,
    /// Reactor-multiplexed connections for the many-connection open
    /// loop; `0` keeps the thread-per-connection driver.
    pub conns: usize,
    /// Offered-load sweep (req/s points) appended to the report as a
    /// latency-under-load saturation curve.
    pub saturation: Vec<f64>,
    /// Wire codec every measured connection negotiates up front.
    pub codec: Codec,
    /// Workload seed.
    pub seed: u64,
    /// Distinct parameter tuples in the repeated pool.
    pub pool: usize,
    /// Probability a request draws fresh parameters instead of reusing
    /// the pool.
    pub unique_frac: f64,
    /// Align the request mix to a compiled policy grid's cell centres.
    pub grid: Option<GridMode>,
    /// Replay a recorded fleet request stream (`repro
    /// --export-fleet-trace` JSONL) instead of the random mix.
    pub fleet_trace: Option<PathBuf>,
    /// Run a second phase with the cache disabled and report speedup.
    pub compare: bool,
    /// Run `table` / `cache` / `no-cache` phases against a server with a
    /// compiled policy table (implies the `policy` control toggles).
    pub policy_compare: bool,
    /// Repeat every phase with a fully unique (`unique_frac = 1`)
    /// workload, reported as `<label>-miss`.
    pub miss_heavy: bool,
    /// With `--check`: fail unless cached/uncached throughput ratio
    /// reaches this.
    pub min_speedup: Option<f64>,
    /// With `--check`: fail unless table/uncached throughput ratio
    /// (miss-heavy variant when present) reaches this.
    pub min_table_speedup: Option<f64>,
    /// With `--compare`: require bit-identical `d_star` streams across
    /// phases (valid against a server in exactness mode).
    pub expect_identical: bool,
    /// Gate the exit code on the checks (protocol errors, p99,
    /// speedup, identity).
    pub check: bool,
    /// Where to write the JSON report.
    pub out: Option<PathBuf>,
    /// Send a `shutdown` control request when done.
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            requests: 2000,
            concurrency: 4,
            window: 32,
            rate: None,
            conns: 0,
            saturation: Vec::new(),
            codec: Codec::Ndjson,
            seed: 0x5AFE_5EED,
            pool: 64,
            unique_frac: 0.0,
            grid: None,
            fleet_trace: None,
            compare: false,
            policy_compare: false,
            miss_heavy: false,
            min_speedup: None,
            min_table_speedup: None,
            expect_identical: false,
            check: false,
            out: None,
            shutdown_after: false,
        }
    }
}

/// A failed run (I/O trouble or a failed `--check` gate).
#[derive(Debug)]
pub enum LoadgenError {
    /// Socket-level failure talking to the server.
    Io(std::io::Error),
    /// The server answered something the protocol does not allow here.
    Protocol(String),
    /// A `--check` gate failed; the report is still returned alongside.
    CheckFailed(String),
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Io(e) => write!(f, "i/o: {e}"),
            LoadgenError::Protocol(m) => write!(f, "protocol: {m}"),
            LoadgenError::CheckFailed(m) => write!(f, "check failed: {m}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

impl From<std::io::Error> for LoadgenError {
    fn from(e: std::io::Error) -> Self {
        LoadgenError::Io(e)
    }
}

impl From<FrameError> for LoadgenError {
    fn from(e: FrameError) -> Self {
        LoadgenError::Protocol(format!("framing: {e}"))
    }
}

/// Render one random decision-request line. With a grid, the request is
/// drawn *on* a random cell centre ([`PolicyGrid::request_of`] wire
/// values), so the server's snapped parameters land bit-exactly on the
/// cell and the compiled table serves every request.
fn random_request_line(rng: &mut DetRng, grid: Option<&PolicyGrid>) -> String {
    if let Some(g) = grid {
        let (platform, [d0, mdata, rho, speed]) = g.request_of(rng.index(g.cells()));
        return Json::obj([
            ("platform", Json::str(platform.id())),
            ("d0", Json::Num(d0)),
            ("mdata", Json::Num(mdata)),
            ("rho", Json::Num(rho)),
            ("speed", Json::Num(speed)),
        ])
        .render();
    }
    let airplane = rng.chance(0.5);
    let (platform, d0_lo, d0_hi) = if airplane {
        ("airplane", 50.0, 300.0)
    } else {
        ("quadrocopter", 30.0, 100.0)
    };
    Json::obj([
        ("platform", Json::str(platform)),
        ("d0", Json::Num(rng.uniform_range(d0_lo, d0_hi))),
        ("mdata", Json::Num(rng.uniform_range(1.0, 60.0))),
        ("rho", Json::Num(rng.uniform_range(5e-5, 5e-4))),
        ("speed", Json::Num(rng.uniform_range(2.0, 12.0))),
    ])
    .render()
}

/// The per-connection request streams for one run: `lines[t]` is
/// connection `t`'s exact byte sequence. Pure function of the config,
/// so a second phase replays the identical workload.
pub fn build_workload(cfg: &LoadgenConfig) -> Vec<Vec<String>> {
    build_workload_unique(cfg, cfg.unique_frac)
}

/// Same streams with `unique_frac` overridden — the miss-heavy phases
/// replay the identical RNG schedule over a fully fresh mix.
fn build_workload_unique(cfg: &LoadgenConfig, unique_frac: f64) -> Vec<Vec<String>> {
    let grid = cfg.grid.map(|g| g.grid());
    let grid = grid.as_ref();
    let stream = SeedStream::new(cfg.seed);
    let mut pool_rng = stream.rng("loadgen-pool");
    let pool: Vec<String> = (0..cfg.pool.max(1))
        .map(|_| random_request_line(&mut pool_rng, grid))
        .collect();

    let threads = cfg.concurrency.max(1);
    (0..threads)
        .map(|t| {
            let mut rng = stream.rng_indexed("loadgen-mix", t as u64);
            let share = cfg.requests / threads + usize::from(t < cfg.requests % threads);
            (0..share)
                .map(|_| {
                    if rng.chance(unique_frac) {
                        random_request_line(&mut rng, grid)
                    } else {
                        pool[rng.index(pool.len())].clone()
                    }
                })
                .collect()
        })
        .collect()
}

/// A parsed fleet trace: decide-request lines in arrival order plus the
/// arrival times that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTraceWorkload {
    /// Request lines, sorted by arrival time.
    pub lines: Vec<String>,
    /// Arrival offsets, seconds (parallel to `lines`, non-decreasing).
    pub arrivals_s: Vec<f64>,
}

/// Parse a `repro --export-fleet-trace` JSONL stream into replayable
/// request lines. Each event's `(platform, d0, mdata, rho, speed)`
/// tuple is re-rendered as a plain decide request — provenance keys
/// (`uav`, `station`, `contenders`) are dropped so the server sees the
/// ordinary wire grammar. Events are sorted by `t` defensively.
pub fn parse_fleet_trace(text: &str) -> Result<FleetTraceWorkload, String> {
    let mut events: Vec<(f64, String)> = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("fleet trace line {}: {e}", n + 1))?;
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .filter(|x| x.is_finite())
                .ok_or_else(|| format!("fleet trace line {}: missing numeric '{key}'", n + 1))
        };
        let platform = v
            .get("platform")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("fleet trace line {}: missing 'platform'", n + 1))?
            .to_string();
        let t = num("t")?;
        let request = Json::obj([
            ("platform", Json::str(&platform)),
            ("d0", Json::Num(num("d0")?)),
            ("mdata", Json::Num(num("mdata")?)),
            ("rho", Json::Num(num("rho")?)),
            ("speed", Json::Num(num("speed")?)),
        ])
        .render();
        events.push((t, request));
    }
    if events.is_empty() {
        return Err("fleet trace has no events".to_string());
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite arrival times"));
    let (arrivals_s, lines) = events.into_iter().unzip();
    Ok(FleetTraceWorkload { lines, arrivals_s })
}

/// Inter-arrival statistics of a replayed request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Events in the stream.
    pub events: usize,
    /// First-to-last arrival span, seconds.
    pub span_s: f64,
    /// Median inter-arrival gap, seconds.
    pub p50_gap_s: f64,
    /// 95th-percentile inter-arrival gap, seconds.
    pub p95_gap_s: f64,
    /// Coefficient of variation of the gaps (`std/mean`): ~0 for a
    /// uniform schedule, ~1 for Poisson, >1 for bursty waves.
    pub burstiness: f64,
}

/// Compute [`TraceStats`] over sorted arrival offsets.
pub fn trace_stats(arrivals_s: &[f64]) -> TraceStats {
    let gaps: Vec<f64> = arrivals_s.windows(2).map(|w| w[1] - w[0]).collect();
    let span_s = match (arrivals_s.first(), arrivals_s.last()) {
        (Some(a), Some(b)) => b - a,
        _ => 0.0,
    };
    let mean = if gaps.is_empty() {
        0.0
    } else {
        gaps.iter().sum::<f64>() / gaps.len() as f64
    };
    let var = if gaps.len() < 2 {
        0.0
    } else {
        gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64
    };
    TraceStats {
        events: arrivals_s.len(),
        span_s,
        p50_gap_s: quantile(&gaps, 0.50).unwrap_or(0.0),
        p95_gap_s: quantile(&gaps, 0.95).unwrap_or(0.0),
        burstiness: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

impl TraceStats {
    fn to_json(self) -> Json {
        Json::obj([
            ("events", Json::Int(self.events as i64)),
            ("span_s", Json::Fixed(self.span_s, 3)),
            ("p50_gap_s", Json::Fixed(self.p50_gap_s, 4)),
            ("p95_gap_s", Json::Fixed(self.p95_gap_s, 4)),
            ("burstiness", Json::Fixed(self.burstiness, 3)),
        ])
    }
}

/// Split a global request stream into per-connection slices, preserving
/// order within each slice (the same contiguous split
/// [`build_workload`] uses for its per-thread shares).
fn split_stream(lines: &[String], threads: usize) -> Vec<Vec<String>> {
    let threads = threads.max(1);
    let mut rest = lines;
    (0..threads)
        .map(|t| {
            let share = lines.len() / threads + usize::from(t < lines.len() % threads);
            let (head, tail) = rest.split_at(share);
            rest = tail;
            head.to_vec()
        })
        .collect()
}

/// Per-kind tally of `{"error": ...}` responses, keyed by the closed
/// set of wire tags in [`crate::proto::ErrorKind`]. An undifferentiated
/// error count hides whether a run tripped over its own request
/// generator (`bad-request`), queue sizing (`overloaded`) or a race
/// with a drain (`shutting-down`); the tally keeps the kinds apart.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ErrorTally {
    /// `"bad-request"`: the request itself was rejected.
    pub bad_request: u64,
    /// `"overloaded"`: the server shed load (retryable).
    pub overloaded: u64,
    /// `"shutting-down"`: the request raced a drain.
    pub shutting_down: u64,
    /// Any tag outside the known set — protocol drift.
    pub unknown: u64,
}

impl ErrorTally {
    /// Classify one wire error tag into the tally.
    fn record(&mut self, tag: Option<&str>) {
        match tag {
            Some("bad-request") => self.bad_request += 1,
            Some("overloaded") => self.overloaded += 1,
            Some("shutting-down") => self.shutting_down += 1,
            _ => self.unknown += 1,
        }
    }

    fn merge(&mut self, other: &ErrorTally) {
        self.bad_request += other.bad_request;
        self.overloaded += other.overloaded;
        self.shutting_down += other.shutting_down;
        self.unknown += other.unknown;
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("bad_request", Json::Int(self.bad_request as i64)),
            ("overloaded", Json::Int(self.overloaded as i64)),
            ("shutting_down", Json::Int(self.shutting_down as i64)),
            ("unknown", Json::Int(self.unknown as i64)),
        ])
    }

    /// `kind=count` pairs for the non-zero kinds, for error messages.
    fn describe(&self) -> String {
        [
            ("bad-request", self.bad_request),
            ("overloaded", self.overloaded),
            ("shutting-down", self.shutting_down),
            ("unknown", self.unknown),
        ]
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, n)| format!("{k}={n}"))
        .collect::<Vec<_>>()
        .join(", ")
    }
}

/// Exact p50/p95/p99 over one latency dimension, microseconds.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median, µs.
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
}

impl LatencySummary {
    fn from_samples(us: &[f64]) -> LatencySummary {
        let q = |p: f64| quantile(us, p).unwrap_or(0.0);
        LatencySummary {
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("p50", Json::Fixed(self.p50_us, 1)),
            ("p95", Json::Fixed(self.p95_us, 1)),
            ("p99", Json::Fixed(self.p99_us, 1)),
        ])
    }
}

/// Decompose one completion at `now_ns` into `(rtt, service)` µs.
///
/// `rtt` runs from the request's send stamp. `service` is the in-order
/// pipeline decomposition: a response cannot arrive before the previous
/// response on the same connection (`prev_done_ns`), so the server's own
/// contribution to this request is only the interval since the later of
/// its send and that previous arrival — the quantity comparable to the
/// server-side per-request histogram.
fn split_latency(now_ns: u64, sent_ns: u64, prev_done_ns: u64) -> (f64, f64) {
    let rtt = now_ns.saturating_sub(sent_ns) as f64 / 1e3;
    let service = now_ns.saturating_sub(sent_ns.max(prev_done_ns)) as f64 / 1e3;
    (rtt, service)
}

/// What a response frame means to the measurement loop.
enum Reply {
    /// A solved decision.
    Decision { d_star: f64, cache_hit: bool },
    /// A typed `{"error": ...}` response (wire tag attached).
    ErrorTag(Option<String>),
}

/// Interpret one response frame from either codec.
fn classify_frame(frame: Frame) -> Result<Reply, LoadgenError> {
    let line = match frame {
        Frame::Bin(payload) => match framing::decode_response_frame(&payload)? {
            BinResponse::Decision(d) => {
                return Ok(Reply::Decision {
                    d_star: d.d_star,
                    cache_hit: d.cache_hit,
                })
            }
            BinResponse::Json(line) => line,
        },
        Frame::Line(line) => line,
    };
    let value = json::parse(line.trim())
        .map_err(|e| LoadgenError::Protocol(format!("unparsable response: {e}")))?;
    if let Some(err) = value.get("error") {
        return Ok(Reply::ErrorTag(err.as_str().map(str::to_string)));
    }
    let d_star = value
        .get("d_star")
        .and_then(Json::as_f64)
        .ok_or_else(|| LoadgenError::Protocol("response lacks d_star".into()))?;
    Ok(Reply::Decision {
        d_star,
        cache_hit: value.get("cache_hit").and_then(Json::as_bool) == Some(true),
    })
}

/// Pull the next frame off a blocking stream, reading as needed.
fn read_frame_blocking(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
) -> Result<Frame, LoadgenError> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(frame) = decoder.next_frame()? {
            return Ok(frame);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(LoadgenError::Protocol(
                "server closed the connection mid-stream".into(),
            ));
        }
        decoder.extend_from_slice(&buf[..n]);
    }
}

/// Negotiate `codec` on a fresh connection (no-op for NDJSON). The ack
/// arrives in the old codec; only after it is checked does the decoder
/// switch, mirroring the server's parse-time seam.
fn negotiate_codec(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    codec: Codec,
) -> Result<(), LoadgenError> {
    if codec == Codec::Ndjson {
        return Ok(());
    }
    let line = format!("{{\"cmd\":\"codec\",\"v\":\"{}\"}}\n", codec.wire_name());
    stream.write_all(line.as_bytes())?;
    let Frame::Line(ack) = read_frame_blocking(stream, decoder)? else {
        return Err(LoadgenError::Protocol(
            "codec ack arrived in the new codec".into(),
        ));
    };
    let value = json::parse(ack.trim())
        .map_err(|e| LoadgenError::Protocol(format!("unparsable codec ack: {e}")))?;
    if let Some(err) = value.get("error") {
        return Err(LoadgenError::Protocol(format!(
            "codec {} rejected: {}",
            codec.wire_name(),
            err.render()
        )));
    }
    decoder.set_codec(codec);
    Ok(())
}

/// Encode one workload line in the negotiated codec. NDJSON sends the
/// line verbatim; `bin1` re-parses it into [`DecisionParams`] and ships
/// the raw `f64` bits, so both codecs solve bit-identical parameters.
fn encode_request(line: &str, codec: Codec, out: &mut BytesMut) -> Result<(), LoadgenError> {
    match codec {
        Codec::Ndjson => {
            out.put_slice(line.as_bytes());
            out.put_u8(b'\n');
        }
        Codec::Bin1 => {
            let params = workload_params(line)?;
            framing::encode_decide_frame(&params, out);
        }
    }
    Ok(())
}

fn workload_params(line: &str) -> Result<DecisionParams, LoadgenError> {
    match proto::parse_request(line) {
        Ok(Request::Decide(p)) => Ok(p),
        _ => Err(LoadgenError::Protocol(format!(
            "workload line is not a decide request: {line}"
        ))),
    }
}

/// What one connection measured.
#[derive(Debug, Default, Clone)]
struct ThreadResult {
    rtt_us: Vec<f64>,
    service_us: Vec<f64>,
    connect_us: Vec<f64>,
    d_stars: Vec<f64>,
    cache_hits: u64,
    protocol_errors: u64,
    error_tally: ErrorTally,
}

impl ThreadResult {
    fn record_reply(&mut self, reply: Reply) {
        match reply {
            Reply::Decision { d_star, cache_hit } => {
                self.d_stars.push(d_star);
                if cache_hit {
                    self.cache_hits += 1;
                }
            }
            Reply::ErrorTag(tag) => {
                self.protocol_errors += 1;
                self.error_tally.record(tag.as_deref());
                self.d_stars.push(f64::NAN);
            }
        }
    }
}

/// Drive one connection through its request lines.
fn drive_connection(
    addr: &str,
    lines: &[String],
    window: usize,
    rate_per_conn: Option<f64>,
    codec: Codec,
) -> Result<ThreadResult, LoadgenError> {
    let mut result = ThreadResult::default();
    if lines.is_empty() {
        return Ok(result);
    }
    let t_conn_ns = monotonic_ns();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    result
        .connect_us
        .push(monotonic_ns().saturating_sub(t_conn_ns) as f64 / 1e3);
    let mut decoder = FrameDecoder::new();
    negotiate_codec(&mut stream, &mut decoder, codec)?;

    let window = window.max(1);
    let mut send_times: VecDeque<u64> = VecDeque::with_capacity(window);
    let mut sent = 0usize;
    let mut done = 0usize;
    let mut prev_done_ns = 0u64;
    let started_ns = monotonic_ns();

    while done < lines.len() {
        // Send while the window allows (and, open loop, the schedule
        // says the next request is due).
        let mut burst = BytesMut::new();
        let mut burst_n = 0usize;
        while sent < lines.len() && sent - done < window {
            if let Some(rate) = rate_per_conn {
                let due_ns = started_ns + (sent as f64 / rate * 1e9) as u64;
                let now_ns = monotonic_ns();
                if now_ns < due_ns {
                    if burst_n == 0 && done == sent {
                        // Nothing in flight and nothing due: sleep.
                        std::thread::sleep(Duration::from_nanos(due_ns - now_ns));
                    } else {
                        break;
                    }
                }
            }
            encode_request(&lines[sent], codec, &mut burst)?;
            sent += 1;
            burst_n += 1;
            if rate_per_conn.is_some() {
                break; // open loop: one request per due tick
            }
        }
        if !burst.is_empty() {
            stream.write_all(&burst)?;
            let now_ns = monotonic_ns();
            for _ in 0..burst_n {
                send_times.push_back(now_ns);
            }
        }
        if done < sent {
            let frame = read_frame_blocking(&mut stream, &mut decoder)?;
            let t_sent_ns = send_times
                .pop_front()
                .ok_or_else(|| LoadgenError::Protocol("response without a request".into()))?;
            let now_ns = monotonic_ns();
            let (rtt, service) = split_latency(now_ns, t_sent_ns, prev_done_ns);
            result.rtt_us.push(rtt);
            result.service_us.push(service);
            prev_done_ns = now_ns;
            result.record_reply(classify_frame(frame)?);
            done += 1;
        }
    }
    Ok(result)
}

/// One reactor-multiplexed connection of the many-connection open loop.
struct OpenConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    inflight: VecDeque<(usize, u64)>,
    prev_done_ns: u64,
    want_write: bool,
}

impl OpenConn {
    /// Push buffered bytes until the socket would block.
    fn flush(&mut self) -> std::io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "server stopped reading",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Read until the socket would block; `Ok(true)` means EOF.
    fn read_ready(&mut self) -> std::io::Result<bool> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(true),
                Ok(n) => self.decoder.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// What the many-connection open loop measured.
struct OpenLoopOutcome {
    wall_s: f64,
    rtt_us: Vec<f64>,
    service_us: Vec<f64>,
    connect_us: Vec<f64>,
    /// Indexed by global schedule order, so `d_star` streams stay
    /// deterministic regardless of which connection answered first.
    d_stars: Vec<f64>,
    cache_hits: u64,
    protocol_errors: u64,
    error_tally: ErrorTally,
}

/// Fire `lines` on a single global open-loop schedule at `rate` req/s,
/// round-robin across `conns` reactor-multiplexed connections.
///
/// Send stamps are the *scheduled* fire times, not the actual write
/// times, so when the server (or this client) falls behind, the backlog
/// shows up as latency instead of silently stretching the schedule
/// (coordinated omission). The fleet-of-UAVs shape falls out of the
/// numbers: with thousands of connections and a modest rate, almost
/// every connection is idle at any instant, yet all stay registered
/// with the poller.
fn drive_open_loop(
    addr: &str,
    lines: &[String],
    conns: usize,
    rate: f64,
    codec: Codec,
) -> Result<OpenLoopOutcome, LoadgenError> {
    let total = lines.len();
    let nconns = conns.max(1);
    let mut outcome = OpenLoopOutcome {
        wall_s: 1e-9,
        rtt_us: Vec::with_capacity(total),
        service_us: Vec::with_capacity(total),
        connect_us: Vec::with_capacity(nconns),
        d_stars: vec![f64::NAN; total],
        cache_hits: 0,
        protocol_errors: 0,
        error_tally: ErrorTally::default(),
    };
    if total == 0 {
        return Ok(outcome);
    }
    let encoded: Vec<Vec<u8>> = lines
        .iter()
        .map(|l| {
            let mut b = BytesMut::new();
            encode_request(l, codec, &mut b)?;
            Ok(b[..].to_vec())
        })
        .collect::<Result<_, LoadgenError>>()?;

    let mut poller = Poller::new();
    let mut cs: Vec<OpenConn> = Vec::with_capacity(nconns);
    for i in 0..nconns {
        let t_conn_ns = monotonic_ns();
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        outcome
            .connect_us
            .push(monotonic_ns().saturating_sub(t_conn_ns) as f64 / 1e3);
        let mut decoder = FrameDecoder::new();
        negotiate_codec(&mut stream, &mut decoder, codec)?;
        stream.set_nonblocking(true)?;
        poller.register(stream.as_raw_fd(), Token(i as u64), Interest::READ);
        cs.push(OpenConn {
            stream,
            decoder,
            out: Vec::new(),
            out_pos: 0,
            inflight: VecDeque::new(),
            prev_done_ns: 0,
            want_write: false,
        });
    }

    let interval_ns = 1e9 / rate.max(1e-9);
    let t0_ns = monotonic_ns();
    let due_of = |i: usize| t0_ns + (i as f64 * interval_ns) as u64;
    let mut next = 0usize;
    let mut done = 0usize;
    let mut last_done_ns = t0_ns;
    let mut events: Vec<Event> = Vec::new();
    while done < total {
        // Launch everything the schedule says is due; a late wakeup
        // sends the whole backlog as one burst (open loop: the schedule
        // never stretches).
        let now_ns = monotonic_ns();
        while next < total && due_of(next) <= now_ns {
            let c = &mut cs[next % nconns];
            c.out.extend_from_slice(&encoded[next]);
            c.inflight.push_back((next, due_of(next)));
            next += 1;
        }
        for (i, c) in cs.iter_mut().enumerate() {
            if c.out_pos < c.out.len() {
                c.flush()?;
            }
            let want = c.out_pos < c.out.len();
            if want != c.want_write {
                let interest = if want {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                poller.modify(Token(i as u64), interest);
                c.want_write = want;
            }
        }
        let timeout = if next < total {
            let gap_ns = due_of(next).saturating_sub(monotonic_ns());
            Some((gap_ns.div_ceil(1_000_000)).max(1) as i32)
        } else {
            None
        };
        poller.wait(&mut events, timeout)?;
        for ev in events.iter() {
            let c = &mut cs[ev.token.0 as usize];
            if ev.writable && c.out_pos < c.out.len() {
                c.flush()?;
            }
            if !(ev.readable || ev.hangup) {
                continue;
            }
            let eof = c.read_ready()?;
            while let Some(frame) = c.decoder.next_frame()? {
                let (idx, due_ns) = c
                    .inflight
                    .pop_front()
                    .ok_or_else(|| LoadgenError::Protocol("response without a request".into()))?;
                let now_ns = monotonic_ns();
                let (rtt, service) = split_latency(now_ns, due_ns, c.prev_done_ns);
                outcome.rtt_us.push(rtt);
                outcome.service_us.push(service);
                c.prev_done_ns = now_ns;
                last_done_ns = now_ns;
                match classify_frame(frame)? {
                    Reply::Decision { d_star, cache_hit } => {
                        outcome.d_stars[idx] = d_star;
                        if cache_hit {
                            outcome.cache_hits += 1;
                        }
                    }
                    Reply::ErrorTag(tag) => {
                        outcome.protocol_errors += 1;
                        outcome.error_tally.record(tag.as_deref());
                    }
                }
                done += 1;
            }
            if eof && done < total {
                return Err(LoadgenError::Protocol(
                    "server closed the connection mid-stream".into(),
                ));
            }
        }
    }
    outcome.wall_s = (last_done_ns.saturating_sub(t0_ns) as f64 / 1e9).max(1e-9);
    Ok(outcome)
}

/// One control request over its own throwaway connection.
fn control(addr: &str, line: &str) -> Result<Json, LoadgenError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    write_half.write_all(line.as_bytes())?;
    write_half.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    json::parse(response.trim())
        .map_err(|e| LoadgenError::Protocol(format!("unparsable control response: {e}")))
}

/// A control request that must be acknowledged: an `{"error": ...}`
/// answer (e.g. a `policy` toggle against a server with no table loaded)
/// aborts the run instead of silently measuring the wrong path.
fn control_ok(addr: &str, line: &str) -> Result<Json, LoadgenError> {
    let response = control(addr, line)?;
    if let Some(err) = response.get("error") {
        return Err(LoadgenError::Protocol(format!(
            "control {line} rejected: {}",
            err.render()
        )));
    }
    Ok(response)
}

/// One measured phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// `"table"` / `"cache"` / `"no-cache"` / `"single"`, with a
    /// `-miss` suffix for the miss-heavy repeat of the same phase.
    pub label: &'static str,
    /// Wall-clock of the whole phase, seconds.
    pub wall_s: f64,
    /// Requests per second over the phase.
    pub throughput_rps: f64,
    /// Error responses received.
    pub protocol_errors: u64,
    /// The same errors classified by wire tag.
    pub errors_by_kind: ErrorTally,
    /// `cache_hit: true` responses.
    pub cache_hits: u64,
    /// Send-to-response round trip (includes pipeline queueing).
    pub rtt: LatencySummary,
    /// In-order service decomposition — comparable to the server-side
    /// per-request histogram.
    pub service: LatencySummary,
    /// TCP connection setup, kept out of the request latencies.
    pub connect: LatencySummary,
    /// The server's `STATS` snapshot taken right after the phase.
    pub server_stats: Json,
    /// Per-connection `d_star` streams (for cross-phase comparison).
    d_stars: Vec<Vec<f64>>,
}

impl PhaseReport {
    /// The phase's `d_star` stream as raw bits, per-connection streams
    /// concatenated in connection order — the unit of the
    /// `--expect-identical` comparison, exposed so integration tests
    /// can also compare it *across* runs (shard counts, codecs).
    pub fn d_star_bits(&self) -> Vec<u64> {
        self.d_stars.iter().flatten().map(|d| d.to_bits()).collect()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label)),
            ("wall_s", Json::Fixed(self.wall_s, 4)),
            ("throughput_rps", Json::Fixed(self.throughput_rps, 1)),
            ("protocol_errors", Json::Int(self.protocol_errors as i64)),
            ("errors_by_kind", self.errors_by_kind.to_json()),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            (
                "latency_us",
                Json::obj([
                    ("rtt", self.rtt.to_json()),
                    ("service", self.service.to_json()),
                    ("connect", self.connect.to_json()),
                ]),
            ),
            ("server", self.server_stats.clone()),
        ])
    }
}

/// One offered-load point of the saturation sweep.
#[derive(Debug, Clone)]
pub struct SatPoint {
    /// Scheduled load, req/s.
    pub offered_rps: f64,
    /// Completed load, req/s (diverges below offered past the knee).
    pub achieved_rps: f64,
    /// Reactor-multiplexed connections carrying the load.
    pub conns: usize,
    /// Requests fired at this point.
    pub requests: usize,
    /// Error responses (overload shedding shows up here, by design).
    pub protocol_errors: u64,
    /// The same errors classified by wire tag.
    pub errors_by_kind: ErrorTally,
    /// Schedule-to-response latency under this load.
    pub rtt: LatencySummary,
    /// In-order service decomposition under this load.
    pub service: LatencySummary,
}

impl SatPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("offered_rps", Json::Fixed(self.offered_rps, 1)),
            ("achieved_rps", Json::Fixed(self.achieved_rps, 1)),
            ("conns", Json::Int(self.conns as i64)),
            ("requests", Json::Int(self.requests as i64)),
            ("protocol_errors", Json::Int(self.protocol_errors as i64)),
            ("errors_by_kind", self.errors_by_kind.to_json()),
            (
                "latency_us",
                Json::obj([
                    ("rtt", self.rtt.to_json()),
                    ("service", self.service.to_json()),
                ]),
            ),
        ])
    }
}

/// The full run report (what `BENCH_serve.json` serialises).
#[derive(Debug, Clone)]
pub struct Report {
    /// Phases in execution order.
    pub phases: Vec<PhaseReport>,
    /// Latency-under-load curve (`--saturation`), in sweep order.
    pub saturation: Vec<SatPoint>,
    /// Cached/uncached throughput ratio on the warm workload.
    pub speedup: Option<f64>,
    /// Cached/uncached throughput ratio on the miss-heavy workload.
    pub speedup_miss: Option<f64>,
    /// Table/uncached throughput ratio on the warm workload
    /// (`--policy-compare` only).
    pub table_speedup: Option<f64>,
    /// Table/uncached throughput ratio on the miss-heavy workload.
    pub table_speedup_miss: Option<f64>,
    /// Were the `d_star` streams bit-identical across the phases of
    /// each workload (warm phases vs warm, miss vs miss)?
    pub d_star_identical: Option<bool>,
    /// Inter-arrival statistics of the replayed stream (`--fleet-trace`
    /// only).
    pub fleet_trace: Option<TraceStats>,
    /// FNV-1a digest of the replayed `d_star` bit stream (`--fleet-trace`
    /// only): equal digests across separate runs — e.g. against servers
    /// with different shard counts — prove bit-identical responses.
    pub d_star_digest: Option<String>,
    cfg: LoadgenConfig,
}

impl Report {
    /// Serialise for `BENCH_serve.json` / `BENCH_policy.json`.
    pub fn to_json(&self) -> Json {
        let ratio = |r: Option<f64>| r.map(|s| Json::Fixed(s, 2)).unwrap_or(Json::Null);
        Json::obj([
            (
                "workload",
                Json::obj([
                    ("requests", Json::Int(self.cfg.requests as i64)),
                    ("concurrency", Json::Int(self.cfg.concurrency as i64)),
                    ("window", Json::Int(self.cfg.window as i64)),
                    (
                        "mode",
                        Json::str(if self.cfg.conns > 0 && self.cfg.rate.is_some() {
                            "open-loop-conns"
                        } else if self.cfg.rate.is_some() {
                            "open-loop"
                        } else {
                            "closed-loop"
                        }),
                    ),
                    (
                        "rate_rps",
                        self.cfg.rate.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("conns", Json::Int(self.cfg.conns as i64)),
                    ("codec", Json::str(self.cfg.codec.wire_name())),
                    ("seed", Json::Int(self.cfg.seed as i64)),
                    ("pool", Json::Int(self.cfg.pool as i64)),
                    ("unique_frac", Json::Num(self.cfg.unique_frac)),
                    (
                        "grid",
                        match self.cfg.grid {
                            Some(GridMode::Quick) => Json::str("quick"),
                            Some(GridMode::Full) => Json::str("full"),
                            None => Json::Null,
                        },
                    ),
                    ("miss_heavy", Json::Bool(self.cfg.miss_heavy)),
                    ("policy_compare", Json::Bool(self.cfg.policy_compare)),
                    (
                        "fleet_trace",
                        self.cfg
                            .fleet_trace
                            .as_ref()
                            .map(|p| Json::str(p.display().to_string()))
                            .unwrap_or(Json::Null),
                    ),
                ]),
            ),
            (
                "fleet_trace_stats",
                self.fleet_trace
                    .map(TraceStats::to_json)
                    .unwrap_or(Json::Null),
            ),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseReport::to_json).collect()),
            ),
            (
                "saturation",
                Json::Arr(self.saturation.iter().map(SatPoint::to_json).collect()),
            ),
            ("speedup", ratio(self.speedup)),
            ("speedup_miss", ratio(self.speedup_miss)),
            ("table_speedup", ratio(self.table_speedup)),
            ("table_speedup_miss", ratio(self.table_speedup_miss)),
            (
                "d_star_identical",
                self.d_star_identical.map(Json::Bool).unwrap_or(Json::Null),
            ),
            (
                "d_star_digest",
                self.d_star_digest
                    .as_ref()
                    .map(Json::str)
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

/// FNV-1a (word-wise) over a phase's `d_star` bit stream. Reported in
/// `--fleet-trace` mode: equal digests from separate loadgen runs prove
/// the servers produced bit-identical decision streams.
fn d_star_stream_digest(phase: &PhaseReport) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in phase.d_star_bits() {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn run_phase(
    cfg: &LoadgenConfig,
    label: &'static str,
    workload: &[Vec<String>],
) -> Result<PhaseReport, LoadgenError> {
    if cfg.conns > 0 {
        if let Some(rate) = cfg.rate {
            return run_phase_open_loop(cfg, label, &workload[0], rate);
        }
    }
    let rate_per_conn = cfg.rate.map(|r| r / workload.len().max(1) as f64);
    let t0_ns = monotonic_ns();
    let results: Vec<Result<ThreadResult, LoadgenError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workload
            .iter()
            .map(|lines| {
                scope.spawn(|| {
                    drive_connection(&cfg.addr, lines, cfg.window, rate_per_conn, cfg.codec)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let wall_s = monotonic_ns().saturating_sub(t0_ns) as f64 / 1e9;

    let mut rtt_us = Vec::new();
    let mut service_us = Vec::new();
    let mut connect_us = Vec::new();
    let mut d_stars = Vec::new();
    let mut protocol_errors = 0;
    let mut errors_by_kind = ErrorTally::default();
    let mut cache_hits = 0;
    for r in results {
        let r = r?;
        rtt_us.extend(r.rtt_us);
        service_us.extend(r.service_us);
        connect_us.extend(r.connect_us);
        d_stars.push(r.d_stars);
        protocol_errors += r.protocol_errors;
        errors_by_kind.merge(&r.error_tally);
        cache_hits += r.cache_hits;
    }
    let server_stats = control(&cfg.addr, r#"{"cmd":"stats"}"#)?;
    Ok(PhaseReport {
        label,
        wall_s,
        throughput_rps: rtt_us.len() as f64 / wall_s.max(1e-9),
        protocol_errors,
        errors_by_kind,
        cache_hits,
        rtt: LatencySummary::from_samples(&rtt_us),
        service: LatencySummary::from_samples(&service_us),
        connect: LatencySummary::from_samples(&connect_us),
        server_stats,
        d_stars,
    })
}

/// The many-connection variant of [`run_phase`]: the whole workload is
/// one global stream fired open-loop across `cfg.conns` connections.
fn run_phase_open_loop(
    cfg: &LoadgenConfig,
    label: &'static str,
    lines: &[String],
    rate: f64,
) -> Result<PhaseReport, LoadgenError> {
    let o = drive_open_loop(&cfg.addr, lines, cfg.conns, rate, cfg.codec)?;
    let server_stats = control(&cfg.addr, r#"{"cmd":"stats"}"#)?;
    Ok(PhaseReport {
        label,
        wall_s: o.wall_s,
        throughput_rps: lines.len() as f64 / o.wall_s,
        protocol_errors: o.protocol_errors,
        errors_by_kind: o.error_tally,
        cache_hits: o.cache_hits,
        rtt: LatencySummary::from_samples(&o.rtt_us),
        service: LatencySummary::from_samples(&o.service_us),
        connect: LatencySummary::from_samples(&o.connect_us),
        server_stats,
        d_stars: vec![o.d_stars],
    })
}

/// The `-miss` variant of a phase label.
fn miss_label(base: &str) -> &'static str {
    match base {
        "table" => "table-miss",
        "cache" => "cache-miss",
        "no-cache" => "no-cache-miss",
        _ => "single-miss",
    }
}

/// Bitwise `d_star` identity across a group of phases that replayed
/// the same workload; `None` when there is nothing to compare.
fn d_stars_identical(group: &[&PhaseReport]) -> Option<bool> {
    if group.len() < 2 {
        return None;
    }
    let first: Vec<u64> = group[0]
        .d_stars
        .iter()
        .flatten()
        .map(|d| d.to_bits())
        .collect();
    Some(group.iter().skip(1).all(|p| {
        p.d_stars
            .iter()
            .flatten()
            .map(|d| d.to_bits())
            .eq(first.iter().copied())
    }))
}

/// Sweep the offered-load points of `cfg.saturation` over the
/// many-connection open loop and return the curve. One `reset` precedes
/// the sweep, so the first point pays the pool's cache misses and the
/// rest measure the warm serving path — the curve's knee is the
/// capacity number BENCH_serve.json is after.
fn run_saturation(cfg: &LoadgenConfig) -> Result<Vec<SatPoint>, LoadgenError> {
    if cfg.saturation.is_empty() {
        return Ok(Vec::new());
    }
    let conns = if cfg.conns > 0 { cfg.conns } else { 64 };
    let flat_cfg = LoadgenConfig {
        concurrency: 1,
        ..cfg.clone()
    };
    let lines = build_workload(&flat_cfg).pop().unwrap_or_default();
    control_ok(&cfg.addr, r#"{"cmd":"reset"}"#)?;
    let mut curve = Vec::with_capacity(cfg.saturation.len());
    for &rate in &cfg.saturation {
        let o = drive_open_loop(&cfg.addr, &lines, conns, rate, cfg.codec)?;
        curve.push(SatPoint {
            offered_rps: rate,
            achieved_rps: lines.len() as f64 / o.wall_s,
            conns,
            requests: lines.len(),
            protocol_errors: o.protocol_errors,
            errors_by_kind: o.error_tally,
            rtt: LatencySummary::from_samples(&o.rtt_us),
            service: LatencySummary::from_samples(&o.service_us),
        });
    }
    Ok(curve)
}

/// Run the configured workload; on success the report is also written
/// to `cfg.out` (pretty JSON) when set.
pub fn run(cfg: &LoadgenConfig) -> Result<Report, LoadgenError> {
    // The many-connection open loop consumes the workload as one global
    // stream; build it as a single deterministic sequence there.
    let open_loop = cfg.conns > 0 && cfg.rate.is_some();
    let wl_cfg = LoadgenConfig {
        concurrency: if open_loop { 1 } else { cfg.concurrency },
        ..cfg.clone()
    };
    let fleet = match &cfg.fleet_trace {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            Some(parse_fleet_trace(&text).map_err(LoadgenError::Protocol)?)
        }
        None => None,
    };
    let warm = match &fleet {
        Some(f) => split_stream(&f.lines, wl_cfg.concurrency),
        None => build_workload(&wl_cfg),
    };
    let miss = cfg.miss_heavy.then(|| build_workload_unique(&wl_cfg, 1.0));

    // One entry per server configuration: (base label, policy toggle,
    // cache toggle). Each runs the warm workload, then the miss-heavy
    // one when requested.
    let specs: Vec<(&'static str, Option<bool>, Option<bool>)> = if cfg.policy_compare {
        vec![
            ("table", Some(true), Some(true)),
            ("cache", Some(false), Some(true)),
            ("no-cache", Some(false), Some(false)),
        ]
    } else if cfg.compare {
        vec![("cache", None, Some(true)), ("no-cache", None, Some(false))]
    } else {
        vec![("single", None, None)]
    };
    let multi_phase = specs.len() > 1 || miss.is_some();

    let mut phases = Vec::new();
    for &(base, policy_on, cache_on) in &specs {
        if let Some(on) = cache_on {
            control_ok(&cfg.addr, &format!(r#"{{"cmd":"cache","enabled":{on}}}"#))?;
        }
        if let Some(on) = policy_on {
            control_ok(&cfg.addr, &format!(r#"{{"cmd":"policy","enabled":{on}}}"#))?;
        }
        let mut workloads: Vec<(&'static str, &Vec<Vec<String>>)> = vec![(base, &warm)];
        if let Some(m) = &miss {
            workloads.push((miss_label(base), m));
        }
        for (label, workload) in workloads {
            if multi_phase {
                control_ok(&cfg.addr, r#"{"cmd":"reset"}"#)?;
            }
            phases.push(run_phase(cfg, label, workload)?);
        }
    }
    // Restore the toggles the sweep changed.
    if cfg.policy_compare {
        control_ok(&cfg.addr, r#"{"cmd":"policy","enabled":true}"#)?;
    }
    if cfg.compare || cfg.policy_compare {
        control_ok(&cfg.addr, r#"{"cmd":"cache","enabled":true}"#)?;
    }

    let saturation = run_saturation(cfg)?;

    let rps = |label: &str| {
        phases
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.throughput_rps)
    };
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) => Some(n / d.max(1e-9)),
        _ => None,
    };
    let speedup = ratio(rps("cache"), rps("no-cache"));
    let speedup_miss = ratio(rps("cache-miss"), rps("no-cache-miss"));
    let table_speedup = ratio(rps("table"), rps("no-cache"));
    let table_speedup_miss = ratio(rps("table-miss"), rps("no-cache-miss"));

    let warm_group: Vec<&PhaseReport> = phases
        .iter()
        .filter(|p| !p.label.ends_with("-miss"))
        .collect();
    let miss_group: Vec<&PhaseReport> = phases
        .iter()
        .filter(|p| p.label.ends_with("-miss"))
        .collect();
    let d_star_identical = match (
        d_stars_identical(&warm_group),
        d_stars_identical(&miss_group),
    ) {
        (None, None) => None,
        (a, b) => Some(a.unwrap_or(true) && b.unwrap_or(true)),
    };

    let d_star_digest = fleet
        .as_ref()
        .and_then(|_| phases.first().map(d_star_stream_digest));
    let report = Report {
        phases,
        saturation,
        speedup,
        speedup_miss,
        table_speedup,
        table_speedup_miss,
        d_star_identical,
        fleet_trace: fleet.as_ref().map(|f| trace_stats(&f.arrivals_s)),
        d_star_digest,
        cfg: cfg.clone(),
    };

    if let Some(out) = &cfg.out {
        std::fs::write(out, report.to_json().render_pretty())?;
    }
    if cfg.shutdown_after {
        let _ = control(&cfg.addr, r#"{"cmd":"shutdown"}"#);
    }

    if cfg.check {
        let errors: u64 = report.phases.iter().map(|p| p.protocol_errors).sum();
        if errors > 0 {
            let mut by_kind = ErrorTally::default();
            for p in &report.phases {
                by_kind.merge(&p.errors_by_kind);
            }
            return Err(LoadgenError::CheckFailed(format!(
                "{errors} protocol error responses ({})",
                by_kind.describe()
            )));
        }
        if report.phases.iter().any(|p| p.rtt.p99_us <= 0.0) {
            return Err(LoadgenError::CheckFailed("p99 latency is zero".into()));
        }
        if let (Some(min), Some(got)) = (cfg.min_speedup, report.speedup) {
            if got < min {
                return Err(LoadgenError::CheckFailed(format!(
                    "cache speedup {got:.2}x below required {min:.2}x"
                )));
            }
        }
        if let Some(min) = cfg.min_table_speedup {
            let got = report
                .table_speedup_miss
                .or(report.table_speedup)
                .ok_or_else(|| {
                    LoadgenError::CheckFailed("--min-table-speedup needs --policy-compare".into())
                })?;
            if got < min {
                return Err(LoadgenError::CheckFailed(format!(
                    "table speedup {got:.2}x below required {min:.2}x"
                )));
            }
        }
        if cfg.expect_identical && report.d_star_identical == Some(false) {
            return Err(LoadgenError::CheckFailed(
                "d_star streams differ between phases of the same workload".into(),
            ));
        }
    }
    Ok(report)
}

/// Parse the `skyferry-loadgen` argument grammar (without the program
/// name). Kept here so it is unit-testable without spawning the binary.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<LoadgenConfig, String> {
    let mut cfg = LoadgenConfig::default();
    let mut args = args.into_iter();
    fn value<T: std::str::FromStr>(
        args: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String> {
        let raw = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        raw.parse()
            .map_err(|_| format!("{flag} got unparsable value '{raw}'"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = value(&mut args, "--addr")?,
            "--requests" => cfg.requests = value(&mut args, "--requests")?,
            "--concurrency" => cfg.concurrency = value(&mut args, "--concurrency")?,
            "--window" => cfg.window = value(&mut args, "--window")?,
            "--rate" => cfg.rate = Some(value(&mut args, "--rate")?),
            "--conns" => cfg.conns = value(&mut args, "--conns")?,
            "--saturation" => {
                let raw: String = value(&mut args, "--saturation")?;
                cfg.saturation = raw
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("--saturation got unparsable rate '{s}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--codec" => {
                let raw: String = value(&mut args, "--codec")?;
                cfg.codec = Codec::from_wire(&raw)
                    .ok_or_else(|| format!("unknown codec '{raw}' (ndjson|bin1)"))?;
            }
            "--seed" => cfg.seed = value(&mut args, "--seed")?,
            "--pool" => cfg.pool = value(&mut args, "--pool")?,
            "--unique-frac" => cfg.unique_frac = value(&mut args, "--unique-frac")?,
            "--grid" => cfg.grid = Some(value(&mut args, "--grid")?),
            "--fleet-trace" => {
                cfg.fleet_trace = Some(PathBuf::from(
                    args.next()
                        .ok_or("--fleet-trace needs a value".to_string())?,
                ))
            }
            "--min-speedup" => cfg.min_speedup = Some(value(&mut args, "--min-speedup")?),
            "--min-table-speedup" => {
                cfg.min_table_speedup = Some(value(&mut args, "--min-table-speedup")?)
            }
            "--out" => {
                cfg.out = Some(PathBuf::from(
                    args.next().ok_or("--out needs a value".to_string())?,
                ))
            }
            "--compare" => cfg.compare = true,
            "--policy-compare" => cfg.policy_compare = true,
            "--miss-heavy" => cfg.miss_heavy = true,
            "--expect-identical" => cfg.expect_identical = true,
            "--check" => cfg.check = true,
            "--shutdown-after" => cfg.shutdown_after = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if cfg.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if cfg.conns > 0 && cfg.rate.is_none() && cfg.saturation.is_empty() {
        return Err("--conns needs --rate or --saturation".to_string());
    }
    if cfg.fleet_trace.is_some() && (cfg.miss_heavy || cfg.grid.is_some()) {
        return Err("--fleet-trace replays a fixed stream; drop --miss-heavy/--grid".to_string());
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_tally_covers_every_wire_tag() {
        use crate::proto::ErrorKind;
        let mut tally = ErrorTally::default();
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::ShuttingDown,
        ] {
            tally.record(Some(kind.tag()));
        }
        tally.record(Some("not-a-known-tag"));
        tally.record(None);
        assert_eq!(
            tally,
            ErrorTally {
                bad_request: 1,
                overloaded: 1,
                shutting_down: 1,
                unknown: 2,
            }
        );
        assert_eq!(
            tally.describe(),
            "bad-request=1, overloaded=1, shutting-down=1, unknown=2"
        );
    }

    #[test]
    fn workload_is_deterministic_and_pool_heavy() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 100,
            concurrency: 3,
            pool: 8,
            unique_frac: 0.0,
            ..Default::default()
        };
        let a = build_workload(&cfg);
        let b = build_workload(&cfg);
        assert_eq!(a, b, "same seed, same bytes");
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 100);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 34); // 100 = 34 + 33 + 33
                                    // unique_frac 0 ⇒ every line is one of the 8 pool entries.
        let mut distinct: Vec<&String> = a.iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() <= 8);
        // Lines must parse as valid decision requests.
        for line in a.iter().flatten() {
            assert!(matches!(
                crate::proto::parse_request(line),
                Ok(crate::proto::Request::Decide(_))
            ));
        }
    }

    #[test]
    fn unique_fraction_diversifies_the_mix() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 200,
            concurrency: 1,
            pool: 4,
            unique_frac: 1.0,
            ..Default::default()
        };
        let lines = build_workload(&cfg);
        let mut distinct: Vec<&String> = lines.iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() > 150, "fresh params almost never collide");
    }

    #[test]
    fn split_latency_decomposes_pipelined_responses() {
        // Three requests sent together at t=0; responses arrive at
        // 10 µs, 20 µs, 30 µs. RTT accumulates the queueing (10/20/30)
        // while the service decomposition attributes 10 µs of server
        // work to each — which is what makes the client histogram
        // comparable to the server's.
        let mut prev = 0u64;
        let mut rtts = Vec::new();
        let mut services = Vec::new();
        for now in [10_000u64, 20_000, 30_000] {
            let (rtt, service) = split_latency(now, 0, prev);
            rtts.push(rtt);
            services.push(service);
            prev = now;
        }
        assert_eq!(rtts, vec![10.0, 20.0, 30.0]);
        assert_eq!(services, vec![10.0, 10.0, 10.0]);
        // An idle gap between responses is charged to neither stream
        // beyond the true interval: sent at 40 µs, answered at 45 µs.
        let (rtt, service) = split_latency(45_000, 40_000, prev);
        assert_eq!((rtt, service), (5.0, 5.0));
    }

    #[test]
    fn encode_request_bin1_round_trips_the_line() {
        let line = r#"{"platform":"quadrocopter","d0":42.5,"mdata":12,"rho":0.0002,"speed":7}"#;
        let mut out = BytesMut::new();
        encode_request(line, Codec::Bin1, &mut out).expect("encodable");
        let mut decoder = FrameDecoder::new();
        decoder.set_codec(Codec::Bin1);
        decoder.extend_from_slice(&out);
        let frame = decoder.next_frame().expect("frame").expect("complete");
        let Frame::Bin(payload) = frame else {
            panic!("bin1 encoding must yield a binary frame");
        };
        let decoded = match framing::decode_request_frame(&payload) {
            Ok(Request::Decide(p)) => p,
            other => panic!("expected decide, got {other:?}"),
        };
        let reference = workload_params(line).expect("reference params");
        assert_eq!(decoded.d0_m.to_bits(), reference.d0_m.to_bits());
        assert_eq!(decoded.v_mps.to_bits(), reference.v_mps.to_bits());
        // Control lines are not encodable as binary decides.
        let mut out = BytesMut::new();
        assert!(encode_request(r#"{"cmd":"stats"}"#, Codec::Bin1, &mut out).is_err());
    }

    #[test]
    fn args_parse_round_trip() {
        let cfg = parse_args(
            [
                "--addr",
                "127.0.0.1:9",
                "--requests",
                "500",
                "--concurrency",
                "2",
                "--window",
                "16",
                "--conns",
                "128",
                "--rate",
                "5000",
                "--saturation",
                "1000, 2000,4000",
                "--codec",
                "bin1",
                "--seed",
                "7",
                "--pool",
                "10",
                "--unique-frac",
                "0.25",
                "--grid",
                "quick",
                "--compare",
                "--policy-compare",
                "--miss-heavy",
                "--min-speedup",
                "5",
                "--min-table-speedup",
                "3",
                "--expect-identical",
                "--check",
                "--out",
                "BENCH_serve.json",
                "--shutdown-after",
            ]
            .into_iter()
            .map(String::from),
        )
        .expect("valid args");
        assert_eq!(cfg.addr, "127.0.0.1:9");
        assert_eq!(cfg.requests, 500);
        assert_eq!(cfg.concurrency, 2);
        assert_eq!(cfg.window, 16);
        assert_eq!(cfg.conns, 128);
        assert_eq!(cfg.rate, Some(5000.0));
        assert_eq!(cfg.saturation, vec![1000.0, 2000.0, 4000.0]);
        assert_eq!(cfg.codec, Codec::Bin1);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.pool, 10);
        assert_eq!(cfg.unique_frac, 0.25);
        assert_eq!(cfg.grid, Some(GridMode::Quick));
        assert!(cfg.compare && cfg.check && cfg.expect_identical && cfg.shutdown_after);
        assert!(cfg.policy_compare && cfg.miss_heavy);
        assert_eq!(cfg.min_speedup, Some(5.0));
        assert_eq!(cfg.min_table_speedup, Some(3.0));
        assert_eq!(
            cfg.out.as_deref(),
            Some(std::path::Path::new("BENCH_serve.json"))
        );

        assert!(
            parse_args(["--requests".into(), "5".into()]).is_err(),
            "addr required"
        );
        assert!(parse_args(["--frob".into()]).is_err());
        assert!(parse_args(["--addr".into()]).is_err());
        assert!(
            parse_args(["--addr".into(), "x".into(), "--grid".into(), "vast".into()]).is_err(),
            "grid names are quick|full"
        );
        assert!(
            parse_args(["--addr".into(), "x".into(), "--codec".into(), "cbor".into()]).is_err(),
            "codec names are ndjson|bin1"
        );
        assert!(
            parse_args(["--addr".into(), "x".into(), "--conns".into(), "8".into()]).is_err(),
            "--conns without --rate or --saturation has no driver"
        );
        assert!(parse_args([
            "--addr".into(),
            "x".into(),
            "--saturation".into(),
            "1000,fast".into()
        ])
        .is_err());
    }

    #[test]
    fn fleet_trace_parses_to_decide_requests_in_arrival_order() {
        let jsonl = "\
{\"t\":14.1,\"uav\":1,\"station\":0,\"contenders\":2,\"platform\":\"quadrocopter\",\
\"d0\":114.5,\"mdata\":20,\"rho\":0.0076,\"speed\":4.5}\n\
{\"t\":9.9,\"uav\":3,\"station\":2,\"contenders\":3,\"platform\":\"quadrocopter\",\
\"d0\":109.2,\"mdata\":30,\"rho\":0.015,\"speed\":4.5}\n\
\n\
{\"t\":63.0,\"uav\":0,\"station\":1,\"contenders\":1,\"platform\":\"airplane\",\
\"d0\":210.0,\"mdata\":10,\"rho\":0.0005,\"speed\":30}\n";
        let wl = parse_fleet_trace(jsonl).expect("valid trace");
        assert_eq!(wl.arrivals_s, vec![9.9, 14.1, 63.0], "sorted by t");
        assert_eq!(wl.lines.len(), 3);
        for line in &wl.lines {
            let params = match crate::proto::parse_request(line) {
                Ok(crate::proto::Request::Decide(p)) => p,
                other => panic!("trace line must replay as a decide request, got {other:?}"),
            };
            assert!(params.d0_m > 0.0);
        }
        // The contended-equivalent parameters survive the re-render.
        assert!(wl.lines[0].contains("\"mdata\":30"));
        assert!(wl.lines[0].contains("\"rho\":0.015"));

        assert!(parse_fleet_trace("").is_err(), "empty trace is an error");
        assert!(
            parse_fleet_trace("{\"t\":1.0,\"platform\":\"quadrocopter\"}").is_err(),
            "missing request fields are an error"
        );
        assert!(parse_fleet_trace("not json").is_err());
    }

    #[test]
    fn trace_stats_separate_uniform_from_bursty() {
        // Uniform schedule: every gap identical, burstiness ~0.
        let uniform: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let u = trace_stats(&uniform);
        assert_eq!(u.events, 40);
        assert!((u.span_s - 19.5).abs() < 1e-9);
        assert!((u.p50_gap_s - 0.5).abs() < 1e-9);
        assert!((u.p95_gap_s - 0.5).abs() < 1e-9);
        assert!(u.burstiness < 1e-9);

        // Bursty waves: tight clusters separated by long silences, the
        // fleet shape. p50 sees the in-wave gap, p95 the wave gap, and
        // the coefficient of variation is far above uniform.
        let mut bursty = Vec::new();
        for wave in 0..5 {
            for j in 0..8 {
                bursty.push(wave as f64 * 60.0 + j as f64 * 0.2);
            }
        }
        let b = trace_stats(&bursty);
        assert!((b.p50_gap_s - 0.2).abs() < 1e-9);
        assert!(b.p95_gap_s > 50.0);
        assert!(b.burstiness > 2.0, "waves must read as bursty");

        let empty = trace_stats(&[]);
        assert_eq!(empty.events, 0);
        assert_eq!(empty.burstiness, 0.0);
    }

    #[test]
    fn split_stream_preserves_order_and_balances_shares() {
        let lines: Vec<String> = (0..10).map(|i| format!("line-{i}")).collect();
        let split = split_stream(&lines, 3);
        assert_eq!(
            split.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let rejoined: Vec<String> = split.into_iter().flatten().collect();
        assert_eq!(rejoined, lines, "contiguous split preserves order");
        assert_eq!(split_stream(&lines, 1).len(), 1);
        assert_eq!(split_stream(&[], 4).iter().map(Vec::len).sum::<usize>(), 0);
    }

    #[test]
    fn fleet_trace_args() {
        let cfg = parse_args(
            ["--addr", "x", "--fleet-trace", "fleet.jsonl", "--compare"]
                .into_iter()
                .map(String::from),
        )
        .expect("valid args");
        assert_eq!(
            cfg.fleet_trace.as_deref(),
            Some(std::path::Path::new("fleet.jsonl"))
        );
        assert!(cfg.compare);
        assert!(
            parse_args(
                ["--addr", "x", "--fleet-trace", "f", "--miss-heavy"]
                    .into_iter()
                    .map(String::from)
            )
            .is_err(),
            "fleet trace replays a fixed stream"
        );
        assert!(parse_args(
            ["--addr", "x", "--fleet-trace", "f", "--grid", "quick"]
                .into_iter()
                .map(String::from)
        )
        .is_err());
        assert!(parse_args(["--addr".into(), "x".into(), "--fleet-trace".into()]).is_err());
    }

    #[test]
    fn grid_aligned_workload_lands_on_cell_centres() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 120,
            concurrency: 2,
            pool: 16,
            unique_frac: 0.5,
            grid: Some(GridMode::Quick),
            ..Default::default()
        };
        let grid = GridMode::Quick.grid();
        let lines = build_workload(&cfg);
        assert_eq!(lines.iter().map(Vec::len).sum::<usize>(), 120);
        for line in lines.iter().flatten() {
            let params = match crate::proto::parse_request(line) {
                Ok(crate::proto::Request::Decide(p)) => p,
                other => panic!("grid line must be a decide request, got {other:?}"),
            };
            let cell = grid
                .cell_of(&params)
                .unwrap_or_else(|| panic!("line off-grid: {line}"));
            // Wire round-trip must be bit-exact: the parsed parameters
            // ARE the cell centre, so the table serves this request.
            let centre = grid.params_at(cell);
            assert_eq!(params.platform, centre.platform);
            assert_eq!(params.d0_m.to_bits(), centre.d0_m.to_bits());
            assert_eq!(params.mdata_bytes.to_bits(), centre.mdata_bytes.to_bits());
            assert_eq!(params.rho_per_m.to_bits(), centre.rho_per_m.to_bits());
            assert_eq!(params.v_mps.to_bits(), centre.v_mps.to_bits());
        }
    }

    #[test]
    fn miss_workload_shares_schedule_but_diversifies() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 200,
            concurrency: 2,
            pool: 4,
            unique_frac: 0.0,
            ..Default::default()
        };
        let warm = build_workload(&cfg);
        let miss = build_workload_unique(&cfg, 1.0);
        assert_eq!(
            warm.iter().map(Vec::len).collect::<Vec<_>>(),
            miss.iter().map(Vec::len).collect::<Vec<_>>(),
            "same per-connection split"
        );
        let mut warm_distinct: Vec<&String> = warm.iter().flatten().collect();
        warm_distinct.sort();
        warm_distinct.dedup();
        assert!(warm_distinct.len() <= 4);
        let mut miss_distinct: Vec<&String> = miss.iter().flatten().collect();
        miss_distinct.sort();
        miss_distinct.dedup();
        assert!(miss_distinct.len() > 150, "miss mix is essentially unique");
    }

    #[test]
    fn phase_grouping_and_labels() {
        assert_eq!(miss_label("table"), "table-miss");
        assert_eq!(miss_label("cache"), "cache-miss");
        assert_eq!(miss_label("no-cache"), "no-cache-miss");
        assert_eq!(miss_label("single"), "single-miss");

        let mk = |label: &'static str, d: Vec<f64>| PhaseReport {
            label,
            wall_s: 1.0,
            throughput_rps: 1.0,
            protocol_errors: 0,
            errors_by_kind: ErrorTally::default(),
            cache_hits: 0,
            rtt: LatencySummary::default(),
            service: LatencySummary::default(),
            connect: LatencySummary::default(),
            server_stats: Json::Null,
            d_stars: vec![d],
        };
        let a = mk("table", vec![1.0, 2.0]);
        let b = mk("cache", vec![1.0, 2.0]);
        let c = mk("no-cache", vec![1.0, 2.5]);
        assert_eq!(d_stars_identical(&[&a]), None);
        assert_eq!(d_stars_identical(&[&a, &b]), Some(true));
        assert_eq!(d_stars_identical(&[&a, &b, &c]), Some(false));
    }

    #[test]
    fn report_json_carries_modes_and_saturation() {
        let mut cfg = LoadgenConfig {
            addr: "x".into(),
            ..Default::default()
        };
        cfg.rate = Some(100.0);
        cfg.conns = 256;
        cfg.codec = Codec::Bin1;
        let report = Report {
            phases: Vec::new(),
            saturation: vec![SatPoint {
                offered_rps: 1000.0,
                achieved_rps: 950.0,
                conns: 256,
                requests: 500,
                protocol_errors: 3,
                errors_by_kind: ErrorTally {
                    overloaded: 3,
                    ..Default::default()
                },
                rtt: LatencySummary {
                    p50_us: 80.0,
                    p95_us: 200.0,
                    p99_us: 400.0,
                },
                service: LatencySummary {
                    p50_us: 30.0,
                    p95_us: 60.0,
                    p99_us: 90.0,
                },
            }],
            speedup: None,
            speedup_miss: None,
            table_speedup: Some(7.25),
            table_speedup_miss: None,
            d_star_identical: None,
            fleet_trace: None,
            d_star_digest: None,
            cfg,
        };
        let j = report.to_json();
        let w = j.get("workload").expect("workload");
        assert_eq!(
            w.get("mode").and_then(Json::as_str),
            Some("open-loop-conns")
        );
        assert_eq!(w.get("rate_rps").and_then(Json::as_f64), Some(100.0));
        assert_eq!(w.get("conns").and_then(Json::as_f64), Some(256.0));
        assert_eq!(w.get("codec").and_then(Json::as_str), Some("bin1"));
        assert_eq!(w.get("grid"), Some(&Json::Null));
        assert_eq!(w.get("miss_heavy").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("speedup"), Some(&Json::Null));
        assert_eq!(
            j.get("table_speedup").and_then(Json::as_f64),
            Some(7.25),
            "ratio members survive the round trip"
        );
        let sat = match j.get("saturation") {
            Some(Json::Arr(points)) => points,
            other => panic!("saturation must be an array, got {other:?}"),
        };
        assert_eq!(sat.len(), 1);
        assert_eq!(
            sat[0].get("offered_rps").and_then(Json::as_f64),
            Some(1000.0)
        );
        assert_eq!(
            sat[0].get("achieved_rps").and_then(Json::as_f64),
            Some(950.0)
        );
        let lat = sat[0].get("latency_us").expect("latency_us");
        assert_eq!(
            lat.get("rtt")
                .and_then(|r| r.get("p50"))
                .and_then(Json::as_f64),
            Some(80.0)
        );
        assert_eq!(
            lat.get("service")
                .and_then(|r| r.get("p99"))
                .and_then(Json::as_f64),
            Some(90.0)
        );
        let errs = sat[0].get("errors_by_kind").expect("errors_by_kind");
        assert_eq!(errs.get("overloaded").and_then(Json::as_f64), Some(3.0));
    }
}
