//! The load generator behind `skyferry-loadgen`.
//!
//! Drives a running `skyferryd` with a seeded, reproducible request mix
//! and measures it from the client side:
//!
//! * **closed-loop** (default): `concurrency` connections, each keeping
//!   `window` requests in flight (pipelined — an initial burst, then
//!   read-one-send-one), so throughput is bounded by the server, not by
//!   round trips;
//! * **open-loop** (`--rate R`): requests are launched on a fixed
//!   schedule split across the connections, so latency includes queue
//!   buildup when the server cannot keep up.
//!
//! The mix comes from a `DetRng` stream: a `pool` of distinct parameter
//! tuples is drawn once, then each request either repeats a pool entry
//! or (with probability `unique_frac`) draws fresh parameters. The same
//! seed therefore replays byte-identical request lines — which is what
//! makes `--compare` meaningful: phase 1 runs with the decision cache
//! enabled, phase 2 disables it (`cache`/`reset` control requests),
//! same workload, and the report carries the throughput ratio plus a
//! per-request `d_star` comparison (bit-exact when the server runs in
//! exactness mode).
//!
//! Two extensions exercise the paths a warm 64-key pool never touches:
//!
//! * `--miss-heavy` repeats every phase with a second, fully unique
//!   workload (`unique_frac = 1`), reported as `<label>-miss` — the
//!   uncached-optimizer floor and the table path under realistic churn;
//! * `--policy-compare` (against a `skyferryd --policy` server) runs
//!   three phases — `table` (policy on), `cache` (policy off, cache
//!   on), `no-cache` (both off) — and reports `table_speedup`;
//! * `--grid quick|full` draws requests *on* the compiled policy grid's
//!   cell centres, so table, cache and exact phases all solve
//!   bit-identical parameters and the `d_star` streams can be compared
//!   bitwise across all three.
//!
//! Client-side percentiles use the exact `stats::quantile` over the raw
//! latency samples; the report also embeds the server's own `STATS`
//! snapshot, and everything lands in `BENCH_serve.json` /
//! `BENCH_policy.json`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use skyferry_core::policy::PolicyGrid;
use skyferry_sim::rng::{DetRng, SeedStream};
use skyferry_stats::json::{self, Json};
use skyferry_stats::quantile::quantile;
use skyferry_trace::clock::monotonic_ns;

/// Which compiled-policy grid the workload should align to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridMode {
    /// [`PolicyGrid::quick`] — the CI grid.
    Quick,
    /// [`PolicyGrid::full`] — the production grid.
    Full,
}

impl GridMode {
    /// The grid this mode names.
    pub fn grid(&self) -> PolicyGrid {
        match self {
            GridMode::Quick => PolicyGrid::quick(),
            GridMode::Full => PolicyGrid::full(),
        }
    }
}

impl std::str::FromStr for GridMode {
    type Err = String;
    fn from_str(s: &str) -> Result<GridMode, String> {
        match s {
            "quick" => Ok(GridMode::Quick),
            "full" => Ok(GridMode::Full),
            other => Err(format!("unknown grid '{other}' (quick|full)")),
        }
    }
}

/// Knobs of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4517`.
    pub addr: String,
    /// Total requests per phase.
    pub requests: usize,
    /// Concurrent connections.
    pub concurrency: usize,
    /// Pipelining window per connection (closed loop) / outstanding cap
    /// (open loop).
    pub window: usize,
    /// Open-loop request rate in req/s (split across connections);
    /// `None` = closed loop.
    pub rate: Option<f64>,
    /// Workload seed.
    pub seed: u64,
    /// Distinct parameter tuples in the repeated pool.
    pub pool: usize,
    /// Probability a request draws fresh parameters instead of reusing
    /// the pool.
    pub unique_frac: f64,
    /// Align the request mix to a compiled policy grid's cell centres.
    pub grid: Option<GridMode>,
    /// Run a second phase with the cache disabled and report speedup.
    pub compare: bool,
    /// Run `table` / `cache` / `no-cache` phases against a server with a
    /// compiled policy table (implies the `policy` control toggles).
    pub policy_compare: bool,
    /// Repeat every phase with a fully unique (`unique_frac = 1`)
    /// workload, reported as `<label>-miss`.
    pub miss_heavy: bool,
    /// With `--check`: fail unless cached/uncached throughput ratio
    /// reaches this.
    pub min_speedup: Option<f64>,
    /// With `--check`: fail unless table/uncached throughput ratio
    /// (miss-heavy variant when present) reaches this.
    pub min_table_speedup: Option<f64>,
    /// With `--compare`: require bit-identical `d_star` streams across
    /// phases (valid against a server in exactness mode).
    pub expect_identical: bool,
    /// Gate the exit code on the checks (protocol errors, p99,
    /// speedup, identity).
    pub check: bool,
    /// Where to write the JSON report.
    pub out: Option<PathBuf>,
    /// Send a `shutdown` control request when done.
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            requests: 2000,
            concurrency: 4,
            window: 32,
            rate: None,
            seed: 0x5AFE_5EED,
            pool: 64,
            unique_frac: 0.0,
            grid: None,
            compare: false,
            policy_compare: false,
            miss_heavy: false,
            min_speedup: None,
            min_table_speedup: None,
            expect_identical: false,
            check: false,
            out: None,
            shutdown_after: false,
        }
    }
}

/// A failed run (I/O trouble or a failed `--check` gate).
#[derive(Debug)]
pub enum LoadgenError {
    /// Socket-level failure talking to the server.
    Io(std::io::Error),
    /// The server answered something the protocol does not allow here.
    Protocol(String),
    /// A `--check` gate failed; the report is still returned alongside.
    CheckFailed(String),
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Io(e) => write!(f, "i/o: {e}"),
            LoadgenError::Protocol(m) => write!(f, "protocol: {m}"),
            LoadgenError::CheckFailed(m) => write!(f, "check failed: {m}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

impl From<std::io::Error> for LoadgenError {
    fn from(e: std::io::Error) -> Self {
        LoadgenError::Io(e)
    }
}

/// Render one random decision-request line. With a grid, the request is
/// drawn *on* a random cell centre ([`PolicyGrid::request_of`] wire
/// values), so the server's snapped parameters land bit-exactly on the
/// cell and the compiled table serves every request.
fn random_request_line(rng: &mut DetRng, grid: Option<&PolicyGrid>) -> String {
    if let Some(g) = grid {
        let (platform, [d0, mdata, rho, speed]) = g.request_of(rng.index(g.cells()));
        return Json::obj([
            ("platform", Json::str(platform.id())),
            ("d0", Json::Num(d0)),
            ("mdata", Json::Num(mdata)),
            ("rho", Json::Num(rho)),
            ("speed", Json::Num(speed)),
        ])
        .render();
    }
    let airplane = rng.chance(0.5);
    let (platform, d0_lo, d0_hi) = if airplane {
        ("airplane", 50.0, 300.0)
    } else {
        ("quadrocopter", 30.0, 100.0)
    };
    Json::obj([
        ("platform", Json::str(platform)),
        ("d0", Json::Num(rng.uniform_range(d0_lo, d0_hi))),
        ("mdata", Json::Num(rng.uniform_range(1.0, 60.0))),
        ("rho", Json::Num(rng.uniform_range(5e-5, 5e-4))),
        ("speed", Json::Num(rng.uniform_range(2.0, 12.0))),
    ])
    .render()
}

/// The per-connection request streams for one run: `lines[t]` is
/// connection `t`'s exact byte sequence. Pure function of the config,
/// so a second phase replays the identical workload.
pub fn build_workload(cfg: &LoadgenConfig) -> Vec<Vec<String>> {
    build_workload_unique(cfg, cfg.unique_frac)
}

/// Same streams with `unique_frac` overridden — the miss-heavy phases
/// replay the identical RNG schedule over a fully fresh mix.
fn build_workload_unique(cfg: &LoadgenConfig, unique_frac: f64) -> Vec<Vec<String>> {
    let grid = cfg.grid.map(|g| g.grid());
    let grid = grid.as_ref();
    let stream = SeedStream::new(cfg.seed);
    let mut pool_rng = stream.rng("loadgen-pool");
    let pool: Vec<String> = (0..cfg.pool.max(1))
        .map(|_| random_request_line(&mut pool_rng, grid))
        .collect();

    let threads = cfg.concurrency.max(1);
    (0..threads)
        .map(|t| {
            let mut rng = stream.rng_indexed("loadgen-mix", t as u64);
            let share = cfg.requests / threads + usize::from(t < cfg.requests % threads);
            (0..share)
                .map(|_| {
                    if rng.chance(unique_frac) {
                        random_request_line(&mut rng, grid)
                    } else {
                        pool[rng.index(pool.len())].clone()
                    }
                })
                .collect()
        })
        .collect()
}

/// Per-kind tally of `{"error": ...}` responses, keyed by the closed
/// set of wire tags in [`crate::proto::ErrorKind`]. An undifferentiated
/// error count hides whether a run tripped over its own request
/// generator (`bad-request`), queue sizing (`overloaded`) or a race
/// with a drain (`shutting-down`); the tally keeps the kinds apart.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ErrorTally {
    /// `"bad-request"`: the request itself was rejected.
    pub bad_request: u64,
    /// `"overloaded"`: the server shed load (retryable).
    pub overloaded: u64,
    /// `"shutting-down"`: the request raced a drain.
    pub shutting_down: u64,
    /// Any tag outside the known set — protocol drift.
    pub unknown: u64,
}

impl ErrorTally {
    /// Classify one wire error tag into the tally.
    fn record(&mut self, tag: Option<&str>) {
        match tag {
            Some("bad-request") => self.bad_request += 1,
            Some("overloaded") => self.overloaded += 1,
            Some("shutting-down") => self.shutting_down += 1,
            _ => self.unknown += 1,
        }
    }

    fn merge(&mut self, other: &ErrorTally) {
        self.bad_request += other.bad_request;
        self.overloaded += other.overloaded;
        self.shutting_down += other.shutting_down;
        self.unknown += other.unknown;
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("bad_request", Json::Int(self.bad_request as i64)),
            ("overloaded", Json::Int(self.overloaded as i64)),
            ("shutting_down", Json::Int(self.shutting_down as i64)),
            ("unknown", Json::Int(self.unknown as i64)),
        ])
    }

    /// `kind=count` pairs for the non-zero kinds, for error messages.
    fn describe(&self) -> String {
        [
            ("bad-request", self.bad_request),
            ("overloaded", self.overloaded),
            ("shutting-down", self.shutting_down),
            ("unknown", self.unknown),
        ]
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, n)| format!("{k}={n}"))
        .collect::<Vec<_>>()
        .join(", ")
    }
}

/// What one connection measured.
#[derive(Debug, Default, Clone)]
struct ThreadResult {
    latencies_us: Vec<f64>,
    d_stars: Vec<f64>,
    cache_hits: u64,
    protocol_errors: u64,
    error_tally: ErrorTally,
}

/// Drive one connection through its request lines.
fn drive_connection(
    addr: &str,
    lines: &[String],
    window: usize,
    rate_per_conn: Option<f64>,
) -> Result<ThreadResult, LoadgenError> {
    let mut result = ThreadResult::default();
    if lines.is_empty() {
        return Ok(result);
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    let window = window.max(1);
    let mut send_times: std::collections::VecDeque<u64> =
        std::collections::VecDeque::with_capacity(window);
    let mut sent = 0usize;
    let mut line_buf = String::new();
    let started_ns = monotonic_ns();

    let mut read_one = |reader: &mut BufReader<TcpStream>,
                        send_times: &mut std::collections::VecDeque<u64>,
                        result: &mut ThreadResult|
     -> Result<(), LoadgenError> {
        line_buf.clear();
        let n = reader.read_line(&mut line_buf)?;
        if n == 0 {
            return Err(LoadgenError::Protocol(
                "server closed the connection mid-stream".into(),
            ));
        }
        let t_sent_ns = send_times
            .pop_front()
            .ok_or_else(|| LoadgenError::Protocol("response without a request".into()))?;
        result
            .latencies_us
            .push(monotonic_ns().saturating_sub(t_sent_ns) as f64 / 1e3);
        let value = json::parse(line_buf.trim())
            .map_err(|e| LoadgenError::Protocol(format!("unparsable response: {e}")))?;
        if let Some(err) = value.get("error") {
            result.protocol_errors += 1;
            result.error_tally.record(err.as_str());
            result.d_stars.push(f64::NAN);
        } else {
            let d_star = value
                .get("d_star")
                .and_then(Json::as_f64)
                .ok_or_else(|| LoadgenError::Protocol("response lacks d_star".into()))?;
            result.d_stars.push(d_star);
            if value.get("cache_hit").and_then(Json::as_bool) == Some(true) {
                result.cache_hits += 1;
            }
        }
        Ok(())
    };

    while result.latencies_us.len() < lines.len() {
        // Send while the window allows (and, open loop, the schedule
        // says the next request is due).
        let mut burst = BytesMut::new();
        let mut burst_n = 0usize;
        while sent < lines.len() && sent - result.latencies_us.len() < window {
            if let Some(rate) = rate_per_conn {
                let due_ns = started_ns + (sent as f64 / rate * 1e9) as u64;
                let now_ns = monotonic_ns();
                if now_ns < due_ns {
                    if burst_n == 0 && result.latencies_us.len() == sent {
                        // Nothing in flight and nothing due: sleep.
                        std::thread::sleep(Duration::from_nanos(due_ns - now_ns));
                    } else {
                        break;
                    }
                }
            }
            burst.put_slice(lines[sent].as_bytes());
            burst.put_u8(b'\n');
            sent += 1;
            burst_n += 1;
            if rate_per_conn.is_some() {
                break; // open loop: one request per due tick
            }
        }
        if !burst.is_empty() {
            write_half.write_all(&burst)?;
            let now_ns = monotonic_ns();
            for _ in 0..burst_n {
                send_times.push_back(now_ns);
            }
        }
        if result.latencies_us.len() < sent {
            read_one(&mut reader, &mut send_times, &mut result)?;
        }
    }
    Ok(result)
}

/// One control request over its own throwaway connection.
fn control(addr: &str, line: &str) -> Result<Json, LoadgenError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    write_half.write_all(line.as_bytes())?;
    write_half.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    json::parse(response.trim())
        .map_err(|e| LoadgenError::Protocol(format!("unparsable control response: {e}")))
}

/// A control request that must be acknowledged: an `{"error": ...}`
/// answer (e.g. a `policy` toggle against a server with no table loaded)
/// aborts the run instead of silently measuring the wrong path.
fn control_ok(addr: &str, line: &str) -> Result<Json, LoadgenError> {
    let response = control(addr, line)?;
    if let Some(err) = response.get("error") {
        return Err(LoadgenError::Protocol(format!(
            "control {line} rejected: {}",
            err.render()
        )));
    }
    Ok(response)
}

/// One measured phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// `"table"` / `"cache"` / `"no-cache"` / `"single"`, with a
    /// `-miss` suffix for the miss-heavy repeat of the same phase.
    pub label: &'static str,
    /// Wall-clock of the whole phase, seconds.
    pub wall_s: f64,
    /// Requests per second over the phase.
    pub throughput_rps: f64,
    /// Error responses received.
    pub protocol_errors: u64,
    /// The same errors classified by wire tag.
    pub errors_by_kind: ErrorTally,
    /// `cache_hit: true` responses.
    pub cache_hits: u64,
    /// Client-side latency percentiles, µs (exact, from raw samples).
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// The server's `STATS` snapshot taken right after the phase.
    pub server_stats: Json,
    /// Per-connection `d_star` streams (for cross-phase comparison).
    d_stars: Vec<Vec<f64>>,
}

impl PhaseReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label)),
            ("wall_s", Json::Fixed(self.wall_s, 4)),
            ("throughput_rps", Json::Fixed(self.throughput_rps, 1)),
            ("protocol_errors", Json::Int(self.protocol_errors as i64)),
            ("errors_by_kind", self.errors_by_kind.to_json()),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::Fixed(self.p50_us, 1)),
                    ("p95", Json::Fixed(self.p95_us, 1)),
                    ("p99", Json::Fixed(self.p99_us, 1)),
                ]),
            ),
            ("server", self.server_stats.clone()),
        ])
    }
}

/// The full run report (what `BENCH_serve.json` serialises).
#[derive(Debug, Clone)]
pub struct Report {
    /// Phases in execution order.
    pub phases: Vec<PhaseReport>,
    /// Cached/uncached throughput ratio on the warm workload.
    pub speedup: Option<f64>,
    /// Cached/uncached throughput ratio on the miss-heavy workload.
    pub speedup_miss: Option<f64>,
    /// Table/uncached throughput ratio on the warm workload
    /// (`--policy-compare` only).
    pub table_speedup: Option<f64>,
    /// Table/uncached throughput ratio on the miss-heavy workload.
    pub table_speedup_miss: Option<f64>,
    /// Were the `d_star` streams bit-identical across the phases of
    /// each workload (warm phases vs warm, miss vs miss)?
    pub d_star_identical: Option<bool>,
    cfg: LoadgenConfig,
}

impl Report {
    /// Serialise for `BENCH_serve.json` / `BENCH_policy.json`.
    pub fn to_json(&self) -> Json {
        let ratio = |r: Option<f64>| r.map(|s| Json::Fixed(s, 2)).unwrap_or(Json::Null);
        Json::obj([
            (
                "workload",
                Json::obj([
                    ("requests", Json::Int(self.cfg.requests as i64)),
                    ("concurrency", Json::Int(self.cfg.concurrency as i64)),
                    ("window", Json::Int(self.cfg.window as i64)),
                    (
                        "mode",
                        Json::str(if self.cfg.rate.is_some() {
                            "open-loop"
                        } else {
                            "closed-loop"
                        }),
                    ),
                    (
                        "rate_rps",
                        self.cfg.rate.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("seed", Json::Int(self.cfg.seed as i64)),
                    ("pool", Json::Int(self.cfg.pool as i64)),
                    ("unique_frac", Json::Num(self.cfg.unique_frac)),
                    (
                        "grid",
                        match self.cfg.grid {
                            Some(GridMode::Quick) => Json::str("quick"),
                            Some(GridMode::Full) => Json::str("full"),
                            None => Json::Null,
                        },
                    ),
                    ("miss_heavy", Json::Bool(self.cfg.miss_heavy)),
                    ("policy_compare", Json::Bool(self.cfg.policy_compare)),
                ]),
            ),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseReport::to_json).collect()),
            ),
            ("speedup", ratio(self.speedup)),
            ("speedup_miss", ratio(self.speedup_miss)),
            ("table_speedup", ratio(self.table_speedup)),
            ("table_speedup_miss", ratio(self.table_speedup_miss)),
            (
                "d_star_identical",
                self.d_star_identical.map(Json::Bool).unwrap_or(Json::Null),
            ),
        ])
    }
}

fn run_phase(
    cfg: &LoadgenConfig,
    label: &'static str,
    workload: &[Vec<String>],
) -> Result<PhaseReport, LoadgenError> {
    let rate_per_conn = cfg.rate.map(|r| r / workload.len().max(1) as f64);
    let t0_ns = monotonic_ns();
    let results: Vec<Result<ThreadResult, LoadgenError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workload
            .iter()
            .map(|lines| {
                scope.spawn(|| drive_connection(&cfg.addr, lines, cfg.window, rate_per_conn))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let wall_s = monotonic_ns().saturating_sub(t0_ns) as f64 / 1e9;

    let mut merged = Vec::new();
    let mut d_stars = Vec::new();
    let mut protocol_errors = 0;
    let mut errors_by_kind = ErrorTally::default();
    let mut cache_hits = 0;
    for r in results {
        let r = r?;
        merged.extend(r.latencies_us);
        d_stars.push(r.d_stars);
        protocol_errors += r.protocol_errors;
        errors_by_kind.merge(&r.error_tally);
        cache_hits += r.cache_hits;
    }
    let server_stats = control(&cfg.addr, r#"{"cmd":"stats"}"#)?;
    let q = |p: f64| quantile(&merged, p).unwrap_or(0.0);
    Ok(PhaseReport {
        label,
        wall_s,
        throughput_rps: merged.len() as f64 / wall_s.max(1e-9),
        protocol_errors,
        errors_by_kind,
        cache_hits,
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
        server_stats,
        d_stars,
    })
}

/// The `-miss` variant of a phase label.
fn miss_label(base: &str) -> &'static str {
    match base {
        "table" => "table-miss",
        "cache" => "cache-miss",
        "no-cache" => "no-cache-miss",
        _ => "single-miss",
    }
}

/// Bitwise `d_star` identity across a group of phases that replayed
/// the same workload; `None` when there is nothing to compare.
fn d_stars_identical(group: &[&PhaseReport]) -> Option<bool> {
    if group.len() < 2 {
        return None;
    }
    let first: Vec<u64> = group[0]
        .d_stars
        .iter()
        .flatten()
        .map(|d| d.to_bits())
        .collect();
    Some(group.iter().skip(1).all(|p| {
        p.d_stars
            .iter()
            .flatten()
            .map(|d| d.to_bits())
            .eq(first.iter().copied())
    }))
}

/// Run the configured workload; on success the report is also written
/// to `cfg.out` (pretty JSON) when set.
pub fn run(cfg: &LoadgenConfig) -> Result<Report, LoadgenError> {
    let warm = build_workload(cfg);
    let miss = cfg.miss_heavy.then(|| build_workload_unique(cfg, 1.0));

    // One entry per server configuration: (base label, policy toggle,
    // cache toggle). Each runs the warm workload, then the miss-heavy
    // one when requested.
    let specs: Vec<(&'static str, Option<bool>, Option<bool>)> = if cfg.policy_compare {
        vec![
            ("table", Some(true), Some(true)),
            ("cache", Some(false), Some(true)),
            ("no-cache", Some(false), Some(false)),
        ]
    } else if cfg.compare {
        vec![("cache", None, Some(true)), ("no-cache", None, Some(false))]
    } else {
        vec![("single", None, None)]
    };
    let multi_phase = specs.len() > 1 || miss.is_some();

    let mut phases = Vec::new();
    for &(base, policy_on, cache_on) in &specs {
        if let Some(on) = cache_on {
            control_ok(&cfg.addr, &format!(r#"{{"cmd":"cache","enabled":{on}}}"#))?;
        }
        if let Some(on) = policy_on {
            control_ok(&cfg.addr, &format!(r#"{{"cmd":"policy","enabled":{on}}}"#))?;
        }
        let mut workloads: Vec<(&'static str, &Vec<Vec<String>>)> = vec![(base, &warm)];
        if let Some(m) = &miss {
            workloads.push((miss_label(base), m));
        }
        for (label, workload) in workloads {
            if multi_phase {
                control_ok(&cfg.addr, r#"{"cmd":"reset"}"#)?;
            }
            phases.push(run_phase(cfg, label, workload)?);
        }
    }
    // Restore the toggles the sweep changed.
    if cfg.policy_compare {
        control_ok(&cfg.addr, r#"{"cmd":"policy","enabled":true}"#)?;
    }
    if cfg.compare || cfg.policy_compare {
        control_ok(&cfg.addr, r#"{"cmd":"cache","enabled":true}"#)?;
    }

    let rps = |label: &str| {
        phases
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.throughput_rps)
    };
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) => Some(n / d.max(1e-9)),
        _ => None,
    };
    let speedup = ratio(rps("cache"), rps("no-cache"));
    let speedup_miss = ratio(rps("cache-miss"), rps("no-cache-miss"));
    let table_speedup = ratio(rps("table"), rps("no-cache"));
    let table_speedup_miss = ratio(rps("table-miss"), rps("no-cache-miss"));

    let warm_group: Vec<&PhaseReport> = phases
        .iter()
        .filter(|p| !p.label.ends_with("-miss"))
        .collect();
    let miss_group: Vec<&PhaseReport> = phases
        .iter()
        .filter(|p| p.label.ends_with("-miss"))
        .collect();
    let d_star_identical = match (
        d_stars_identical(&warm_group),
        d_stars_identical(&miss_group),
    ) {
        (None, None) => None,
        (a, b) => Some(a.unwrap_or(true) && b.unwrap_or(true)),
    };

    let report = Report {
        phases,
        speedup,
        speedup_miss,
        table_speedup,
        table_speedup_miss,
        d_star_identical,
        cfg: cfg.clone(),
    };

    if let Some(out) = &cfg.out {
        std::fs::write(out, report.to_json().render_pretty())?;
    }
    if cfg.shutdown_after {
        let _ = control(&cfg.addr, r#"{"cmd":"shutdown"}"#);
    }

    if cfg.check {
        let errors: u64 = report.phases.iter().map(|p| p.protocol_errors).sum();
        if errors > 0 {
            let mut by_kind = ErrorTally::default();
            for p in &report.phases {
                by_kind.merge(&p.errors_by_kind);
            }
            return Err(LoadgenError::CheckFailed(format!(
                "{errors} protocol error responses ({})",
                by_kind.describe()
            )));
        }
        if report.phases.iter().any(|p| p.p99_us <= 0.0) {
            return Err(LoadgenError::CheckFailed("p99 latency is zero".into()));
        }
        if let (Some(min), Some(got)) = (cfg.min_speedup, report.speedup) {
            if got < min {
                return Err(LoadgenError::CheckFailed(format!(
                    "cache speedup {got:.2}x below required {min:.2}x"
                )));
            }
        }
        if let Some(min) = cfg.min_table_speedup {
            let got = report
                .table_speedup_miss
                .or(report.table_speedup)
                .ok_or_else(|| {
                    LoadgenError::CheckFailed("--min-table-speedup needs --policy-compare".into())
                })?;
            if got < min {
                return Err(LoadgenError::CheckFailed(format!(
                    "table speedup {got:.2}x below required {min:.2}x"
                )));
            }
        }
        if cfg.expect_identical && report.d_star_identical == Some(false) {
            return Err(LoadgenError::CheckFailed(
                "d_star streams differ between phases of the same workload".into(),
            ));
        }
    }
    Ok(report)
}

/// Parse the `skyferry-loadgen` argument grammar (without the program
/// name). Kept here so it is unit-testable without spawning the binary.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<LoadgenConfig, String> {
    let mut cfg = LoadgenConfig::default();
    let mut args = args.into_iter();
    fn value<T: std::str::FromStr>(
        args: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String> {
        let raw = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        raw.parse()
            .map_err(|_| format!("{flag} got unparsable value '{raw}'"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = value(&mut args, "--addr")?,
            "--requests" => cfg.requests = value(&mut args, "--requests")?,
            "--concurrency" => cfg.concurrency = value(&mut args, "--concurrency")?,
            "--window" => cfg.window = value(&mut args, "--window")?,
            "--rate" => cfg.rate = Some(value(&mut args, "--rate")?),
            "--seed" => cfg.seed = value(&mut args, "--seed")?,
            "--pool" => cfg.pool = value(&mut args, "--pool")?,
            "--unique-frac" => cfg.unique_frac = value(&mut args, "--unique-frac")?,
            "--grid" => cfg.grid = Some(value(&mut args, "--grid")?),
            "--min-speedup" => cfg.min_speedup = Some(value(&mut args, "--min-speedup")?),
            "--min-table-speedup" => {
                cfg.min_table_speedup = Some(value(&mut args, "--min-table-speedup")?)
            }
            "--out" => {
                cfg.out = Some(PathBuf::from(
                    args.next().ok_or("--out needs a value".to_string())?,
                ))
            }
            "--compare" => cfg.compare = true,
            "--policy-compare" => cfg.policy_compare = true,
            "--miss-heavy" => cfg.miss_heavy = true,
            "--expect-identical" => cfg.expect_identical = true,
            "--check" => cfg.check = true,
            "--shutdown-after" => cfg.shutdown_after = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if cfg.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_tally_covers_every_wire_tag() {
        use crate::proto::ErrorKind;
        let mut tally = ErrorTally::default();
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::ShuttingDown,
        ] {
            tally.record(Some(kind.tag()));
        }
        tally.record(Some("not-a-known-tag"));
        tally.record(None);
        assert_eq!(
            tally,
            ErrorTally {
                bad_request: 1,
                overloaded: 1,
                shutting_down: 1,
                unknown: 2,
            }
        );
        assert_eq!(
            tally.describe(),
            "bad-request=1, overloaded=1, shutting-down=1, unknown=2"
        );
    }

    #[test]
    fn workload_is_deterministic_and_pool_heavy() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 100,
            concurrency: 3,
            pool: 8,
            unique_frac: 0.0,
            ..Default::default()
        };
        let a = build_workload(&cfg);
        let b = build_workload(&cfg);
        assert_eq!(a, b, "same seed, same bytes");
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 100);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 34); // 100 = 34 + 33 + 33
                                    // unique_frac 0 ⇒ every line is one of the 8 pool entries.
        let mut distinct: Vec<&String> = a.iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() <= 8);
        // Lines must parse as valid decision requests.
        for line in a.iter().flatten() {
            assert!(matches!(
                crate::proto::parse_request(line),
                Ok(crate::proto::Request::Decide(_))
            ));
        }
    }

    #[test]
    fn unique_fraction_diversifies_the_mix() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 200,
            concurrency: 1,
            pool: 4,
            unique_frac: 1.0,
            ..Default::default()
        };
        let lines = build_workload(&cfg);
        let mut distinct: Vec<&String> = lines.iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() > 150, "fresh params almost never collide");
    }

    #[test]
    fn args_parse_round_trip() {
        let cfg = parse_args(
            [
                "--addr",
                "127.0.0.1:9",
                "--requests",
                "500",
                "--concurrency",
                "2",
                "--window",
                "16",
                "--seed",
                "7",
                "--pool",
                "10",
                "--unique-frac",
                "0.25",
                "--grid",
                "quick",
                "--compare",
                "--policy-compare",
                "--miss-heavy",
                "--min-speedup",
                "5",
                "--min-table-speedup",
                "3",
                "--expect-identical",
                "--check",
                "--out",
                "BENCH_serve.json",
                "--shutdown-after",
            ]
            .into_iter()
            .map(String::from),
        )
        .expect("valid args");
        assert_eq!(cfg.addr, "127.0.0.1:9");
        assert_eq!(cfg.requests, 500);
        assert_eq!(cfg.concurrency, 2);
        assert_eq!(cfg.window, 16);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.pool, 10);
        assert_eq!(cfg.unique_frac, 0.25);
        assert_eq!(cfg.grid, Some(GridMode::Quick));
        assert!(cfg.compare && cfg.check && cfg.expect_identical && cfg.shutdown_after);
        assert!(cfg.policy_compare && cfg.miss_heavy);
        assert_eq!(cfg.min_speedup, Some(5.0));
        assert_eq!(cfg.min_table_speedup, Some(3.0));
        assert_eq!(
            cfg.out.as_deref(),
            Some(std::path::Path::new("BENCH_serve.json"))
        );

        assert!(
            parse_args(["--requests".into(), "5".into()]).is_err(),
            "addr required"
        );
        assert!(parse_args(["--frob".into()]).is_err());
        assert!(parse_args(["--addr".into()]).is_err());
        assert!(
            parse_args(["--addr".into(), "x".into(), "--grid".into(), "vast".into()]).is_err(),
            "grid names are quick|full"
        );
    }

    #[test]
    fn grid_aligned_workload_lands_on_cell_centres() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 120,
            concurrency: 2,
            pool: 16,
            unique_frac: 0.5,
            grid: Some(GridMode::Quick),
            ..Default::default()
        };
        let grid = GridMode::Quick.grid();
        let lines = build_workload(&cfg);
        assert_eq!(lines.iter().map(Vec::len).sum::<usize>(), 120);
        for line in lines.iter().flatten() {
            let params = match crate::proto::parse_request(line) {
                Ok(crate::proto::Request::Decide(p)) => p,
                other => panic!("grid line must be a decide request, got {other:?}"),
            };
            let cell = grid
                .cell_of(&params)
                .unwrap_or_else(|| panic!("line off-grid: {line}"));
            // Wire round-trip must be bit-exact: the parsed parameters
            // ARE the cell centre, so the table serves this request.
            let centre = grid.params_at(cell);
            assert_eq!(params.platform, centre.platform);
            assert_eq!(params.d0_m.to_bits(), centre.d0_m.to_bits());
            assert_eq!(params.mdata_bytes.to_bits(), centre.mdata_bytes.to_bits());
            assert_eq!(params.rho_per_m.to_bits(), centre.rho_per_m.to_bits());
            assert_eq!(params.v_mps.to_bits(), centre.v_mps.to_bits());
        }
    }

    #[test]
    fn miss_workload_shares_schedule_but_diversifies() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 200,
            concurrency: 2,
            pool: 4,
            unique_frac: 0.0,
            ..Default::default()
        };
        let warm = build_workload(&cfg);
        let miss = build_workload_unique(&cfg, 1.0);
        assert_eq!(
            warm.iter().map(Vec::len).collect::<Vec<_>>(),
            miss.iter().map(Vec::len).collect::<Vec<_>>(),
            "same per-connection split"
        );
        let mut warm_distinct: Vec<&String> = warm.iter().flatten().collect();
        warm_distinct.sort();
        warm_distinct.dedup();
        assert!(warm_distinct.len() <= 4);
        let mut miss_distinct: Vec<&String> = miss.iter().flatten().collect();
        miss_distinct.sort();
        miss_distinct.dedup();
        assert!(miss_distinct.len() > 150, "miss mix is essentially unique");
    }

    #[test]
    fn phase_grouping_and_labels() {
        assert_eq!(miss_label("table"), "table-miss");
        assert_eq!(miss_label("cache"), "cache-miss");
        assert_eq!(miss_label("no-cache"), "no-cache-miss");
        assert_eq!(miss_label("single"), "single-miss");

        let mk = |label: &'static str, d: Vec<f64>| PhaseReport {
            label,
            wall_s: 1.0,
            throughput_rps: 1.0,
            protocol_errors: 0,
            errors_by_kind: ErrorTally::default(),
            cache_hits: 0,
            p50_us: 1.0,
            p95_us: 1.0,
            p99_us: 1.0,
            server_stats: Json::Null,
            d_stars: vec![d],
        };
        let a = mk("table", vec![1.0, 2.0]);
        let b = mk("cache", vec![1.0, 2.0]);
        let c = mk("no-cache", vec![1.0, 2.5]);
        assert_eq!(d_stars_identical(&[&a]), None);
        assert_eq!(d_stars_identical(&[&a, &b]), Some(true));
        assert_eq!(d_stars_identical(&[&a, &b, &c]), Some(false));
    }

    #[test]
    fn open_loop_flag_switches_mode_in_report_json() {
        let mut cfg = LoadgenConfig {
            addr: "x".into(),
            ..Default::default()
        };
        cfg.rate = Some(100.0);
        let report = Report {
            phases: Vec::new(),
            speedup: None,
            speedup_miss: None,
            table_speedup: Some(7.25),
            table_speedup_miss: None,
            d_star_identical: None,
            cfg,
        };
        let j = report.to_json();
        let w = j.get("workload").expect("workload");
        assert_eq!(w.get("mode").and_then(Json::as_str), Some("open-loop"));
        assert_eq!(w.get("rate_rps").and_then(Json::as_f64), Some(100.0));
        assert_eq!(w.get("grid"), Some(&Json::Null));
        assert_eq!(w.get("miss_heavy").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("speedup"), Some(&Json::Null));
        assert_eq!(j.get("speedup_miss"), Some(&Json::Null));
        assert_eq!(
            j.get("table_speedup").and_then(Json::as_f64),
            Some(7.25),
            "ratio members survive the round trip"
        );
        assert_eq!(j.get("table_speedup_miss"), Some(&Json::Null));
    }
}
