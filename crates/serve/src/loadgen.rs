//! The load generator behind `skyferry-loadgen`.
//!
//! Drives a running `skyferryd` with a seeded, reproducible request mix
//! and measures it from the client side:
//!
//! * **closed-loop** (default): `concurrency` connections, each keeping
//!   `window` requests in flight (pipelined — an initial burst, then
//!   read-one-send-one), so throughput is bounded by the server, not by
//!   round trips;
//! * **open-loop** (`--rate R`): requests are launched on a fixed
//!   schedule split across the connections, so latency includes queue
//!   buildup when the server cannot keep up.
//!
//! The mix comes from a `DetRng` stream: a `pool` of distinct parameter
//! tuples is drawn once, then each request either repeats a pool entry
//! or (with probability `unique_frac`) draws fresh parameters. The same
//! seed therefore replays byte-identical request lines — which is what
//! makes `--compare` meaningful: phase 1 runs with the decision cache
//! enabled, phase 2 disables it (`cache`/`reset` control requests),
//! same workload, and the report carries the throughput ratio plus a
//! per-request `d_star` comparison (bit-exact when the server runs in
//! exactness mode).
//!
//! Client-side percentiles use the exact `stats::quantile` over the raw
//! latency samples; the report also embeds the server's own `STATS`
//! snapshot, and everything lands in `BENCH_serve.json`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use skyferry_sim::rng::{DetRng, SeedStream};
use skyferry_stats::json::{self, Json};
use skyferry_stats::quantile::quantile;
use skyferry_trace::clock::monotonic_ns;

/// Knobs of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4517`.
    pub addr: String,
    /// Total requests per phase.
    pub requests: usize,
    /// Concurrent connections.
    pub concurrency: usize,
    /// Pipelining window per connection (closed loop) / outstanding cap
    /// (open loop).
    pub window: usize,
    /// Open-loop request rate in req/s (split across connections);
    /// `None` = closed loop.
    pub rate: Option<f64>,
    /// Workload seed.
    pub seed: u64,
    /// Distinct parameter tuples in the repeated pool.
    pub pool: usize,
    /// Probability a request draws fresh parameters instead of reusing
    /// the pool.
    pub unique_frac: f64,
    /// Run a second phase with the cache disabled and report speedup.
    pub compare: bool,
    /// With `--check`: fail unless cached/uncached throughput ratio
    /// reaches this.
    pub min_speedup: Option<f64>,
    /// With `--compare`: require bit-identical `d_star` streams across
    /// phases (valid against a server in exactness mode).
    pub expect_identical: bool,
    /// Gate the exit code on the checks (protocol errors, p99,
    /// speedup, identity).
    pub check: bool,
    /// Where to write the JSON report.
    pub out: Option<PathBuf>,
    /// Send a `shutdown` control request when done.
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            requests: 2000,
            concurrency: 4,
            window: 32,
            rate: None,
            seed: 0x5AFE_5EED,
            pool: 64,
            unique_frac: 0.0,
            compare: false,
            min_speedup: None,
            expect_identical: false,
            check: false,
            out: None,
            shutdown_after: false,
        }
    }
}

/// A failed run (I/O trouble or a failed `--check` gate).
#[derive(Debug)]
pub enum LoadgenError {
    /// Socket-level failure talking to the server.
    Io(std::io::Error),
    /// The server answered something the protocol does not allow here.
    Protocol(String),
    /// A `--check` gate failed; the report is still returned alongside.
    CheckFailed(String),
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Io(e) => write!(f, "i/o: {e}"),
            LoadgenError::Protocol(m) => write!(f, "protocol: {m}"),
            LoadgenError::CheckFailed(m) => write!(f, "check failed: {m}"),
        }
    }
}

impl std::error::Error for LoadgenError {}

impl From<std::io::Error> for LoadgenError {
    fn from(e: std::io::Error) -> Self {
        LoadgenError::Io(e)
    }
}

/// Render one random decision-request line.
fn random_request_line(rng: &mut DetRng) -> String {
    let airplane = rng.chance(0.5);
    let (platform, d0_lo, d0_hi) = if airplane {
        ("airplane", 50.0, 300.0)
    } else {
        ("quadrocopter", 30.0, 100.0)
    };
    Json::obj([
        ("platform", Json::str(platform)),
        ("d0", Json::Num(rng.uniform_range(d0_lo, d0_hi))),
        ("mdata", Json::Num(rng.uniform_range(1.0, 60.0))),
        ("rho", Json::Num(rng.uniform_range(5e-5, 5e-4))),
        ("speed", Json::Num(rng.uniform_range(2.0, 12.0))),
    ])
    .render()
}

/// The per-connection request streams for one run: `lines[t]` is
/// connection `t`'s exact byte sequence. Pure function of the config,
/// so a second phase replays the identical workload.
pub fn build_workload(cfg: &LoadgenConfig) -> Vec<Vec<String>> {
    let stream = SeedStream::new(cfg.seed);
    let mut pool_rng = stream.rng("loadgen-pool");
    let pool: Vec<String> = (0..cfg.pool.max(1))
        .map(|_| random_request_line(&mut pool_rng))
        .collect();

    let threads = cfg.concurrency.max(1);
    (0..threads)
        .map(|t| {
            let mut rng = stream.rng_indexed("loadgen-mix", t as u64);
            let share = cfg.requests / threads + usize::from(t < cfg.requests % threads);
            (0..share)
                .map(|_| {
                    if rng.chance(cfg.unique_frac) {
                        random_request_line(&mut rng)
                    } else {
                        pool[rng.index(pool.len())].clone()
                    }
                })
                .collect()
        })
        .collect()
}

/// What one connection measured.
#[derive(Debug, Default, Clone)]
struct ThreadResult {
    latencies_us: Vec<f64>,
    d_stars: Vec<f64>,
    cache_hits: u64,
    protocol_errors: u64,
}

/// Drive one connection through its request lines.
fn drive_connection(
    addr: &str,
    lines: &[String],
    window: usize,
    rate_per_conn: Option<f64>,
) -> Result<ThreadResult, LoadgenError> {
    let mut result = ThreadResult::default();
    if lines.is_empty() {
        return Ok(result);
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    let window = window.max(1);
    let mut send_times: std::collections::VecDeque<u64> =
        std::collections::VecDeque::with_capacity(window);
    let mut sent = 0usize;
    let mut line_buf = String::new();
    let started_ns = monotonic_ns();

    let mut read_one = |reader: &mut BufReader<TcpStream>,
                        send_times: &mut std::collections::VecDeque<u64>,
                        result: &mut ThreadResult|
     -> Result<(), LoadgenError> {
        line_buf.clear();
        let n = reader.read_line(&mut line_buf)?;
        if n == 0 {
            return Err(LoadgenError::Protocol(
                "server closed the connection mid-stream".into(),
            ));
        }
        let t_sent_ns = send_times
            .pop_front()
            .ok_or_else(|| LoadgenError::Protocol("response without a request".into()))?;
        result
            .latencies_us
            .push(monotonic_ns().saturating_sub(t_sent_ns) as f64 / 1e3);
        let value = json::parse(line_buf.trim())
            .map_err(|e| LoadgenError::Protocol(format!("unparsable response: {e}")))?;
        if value.get("error").is_some() {
            result.protocol_errors += 1;
            result.d_stars.push(f64::NAN);
        } else {
            let d_star = value
                .get("d_star")
                .and_then(Json::as_f64)
                .ok_or_else(|| LoadgenError::Protocol("response lacks d_star".into()))?;
            result.d_stars.push(d_star);
            if value.get("cache_hit").and_then(Json::as_bool) == Some(true) {
                result.cache_hits += 1;
            }
        }
        Ok(())
    };

    while result.latencies_us.len() < lines.len() {
        // Send while the window allows (and, open loop, the schedule
        // says the next request is due).
        let mut burst = BytesMut::new();
        let mut burst_n = 0usize;
        while sent < lines.len() && sent - result.latencies_us.len() < window {
            if let Some(rate) = rate_per_conn {
                let due_ns = started_ns + (sent as f64 / rate * 1e9) as u64;
                let now_ns = monotonic_ns();
                if now_ns < due_ns {
                    if burst_n == 0 && result.latencies_us.len() == sent {
                        // Nothing in flight and nothing due: sleep.
                        std::thread::sleep(Duration::from_nanos(due_ns - now_ns));
                    } else {
                        break;
                    }
                }
            }
            burst.put_slice(lines[sent].as_bytes());
            burst.put_u8(b'\n');
            sent += 1;
            burst_n += 1;
            if rate_per_conn.is_some() {
                break; // open loop: one request per due tick
            }
        }
        if !burst.is_empty() {
            write_half.write_all(&burst)?;
            let now_ns = monotonic_ns();
            for _ in 0..burst_n {
                send_times.push_back(now_ns);
            }
        }
        if result.latencies_us.len() < sent {
            read_one(&mut reader, &mut send_times, &mut result)?;
        }
    }
    Ok(result)
}

/// One control request over its own throwaway connection.
fn control(addr: &str, line: &str) -> Result<Json, LoadgenError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    write_half.write_all(line.as_bytes())?;
    write_half.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    json::parse(response.trim())
        .map_err(|e| LoadgenError::Protocol(format!("unparsable control response: {e}")))
}

/// One measured phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// `"cache"` / `"no-cache"` / `"single"`.
    pub label: &'static str,
    /// Wall-clock of the whole phase, seconds.
    pub wall_s: f64,
    /// Requests per second over the phase.
    pub throughput_rps: f64,
    /// Error responses received.
    pub protocol_errors: u64,
    /// `cache_hit: true` responses.
    pub cache_hits: u64,
    /// Client-side latency percentiles, µs (exact, from raw samples).
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// The server's `STATS` snapshot taken right after the phase.
    pub server_stats: Json,
    /// Per-connection `d_star` streams (for cross-phase comparison).
    d_stars: Vec<Vec<f64>>,
}

impl PhaseReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label)),
            ("wall_s", Json::Fixed(self.wall_s, 4)),
            ("throughput_rps", Json::Fixed(self.throughput_rps, 1)),
            ("protocol_errors", Json::Int(self.protocol_errors as i64)),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            (
                "latency_us",
                Json::obj([
                    ("p50", Json::Fixed(self.p50_us, 1)),
                    ("p95", Json::Fixed(self.p95_us, 1)),
                    ("p99", Json::Fixed(self.p99_us, 1)),
                ]),
            ),
            ("server", self.server_stats.clone()),
        ])
    }
}

/// The full run report (what `BENCH_serve.json` serialises).
#[derive(Debug, Clone)]
pub struct Report {
    /// Phases in execution order.
    pub phases: Vec<PhaseReport>,
    /// Cached/uncached throughput ratio (`--compare` only).
    pub speedup: Option<f64>,
    /// Were the `d_star` streams bit-identical across phases?
    pub d_star_identical: Option<bool>,
    cfg: LoadgenConfig,
}

impl Report {
    /// Serialise for `BENCH_serve.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "workload",
                Json::obj([
                    ("requests", Json::Int(self.cfg.requests as i64)),
                    ("concurrency", Json::Int(self.cfg.concurrency as i64)),
                    ("window", Json::Int(self.cfg.window as i64)),
                    (
                        "mode",
                        Json::str(if self.cfg.rate.is_some() {
                            "open-loop"
                        } else {
                            "closed-loop"
                        }),
                    ),
                    (
                        "rate_rps",
                        self.cfg.rate.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("seed", Json::Int(self.cfg.seed as i64)),
                    ("pool", Json::Int(self.cfg.pool as i64)),
                    ("unique_frac", Json::Num(self.cfg.unique_frac)),
                ]),
            ),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseReport::to_json).collect()),
            ),
            (
                "speedup",
                self.speedup
                    .map(|s| Json::Fixed(s, 2))
                    .unwrap_or(Json::Null),
            ),
            (
                "d_star_identical",
                self.d_star_identical.map(Json::Bool).unwrap_or(Json::Null),
            ),
        ])
    }
}

fn run_phase(
    cfg: &LoadgenConfig,
    label: &'static str,
    workload: &[Vec<String>],
) -> Result<PhaseReport, LoadgenError> {
    let rate_per_conn = cfg.rate.map(|r| r / workload.len().max(1) as f64);
    let t0_ns = monotonic_ns();
    let results: Vec<Result<ThreadResult, LoadgenError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workload
            .iter()
            .map(|lines| {
                scope.spawn(|| drive_connection(&cfg.addr, lines, cfg.window, rate_per_conn))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let wall_s = monotonic_ns().saturating_sub(t0_ns) as f64 / 1e9;

    let mut merged = Vec::new();
    let mut d_stars = Vec::new();
    let mut protocol_errors = 0;
    let mut cache_hits = 0;
    for r in results {
        let r = r?;
        merged.extend(r.latencies_us);
        d_stars.push(r.d_stars);
        protocol_errors += r.protocol_errors;
        cache_hits += r.cache_hits;
    }
    let server_stats = control(&cfg.addr, r#"{"cmd":"stats"}"#)?;
    let q = |p: f64| quantile(&merged, p).unwrap_or(0.0);
    Ok(PhaseReport {
        label,
        wall_s,
        throughput_rps: merged.len() as f64 / wall_s.max(1e-9),
        protocol_errors,
        cache_hits,
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
        server_stats,
        d_stars,
    })
}

/// Run the configured workload; on success the report is also written
/// to `cfg.out` (pretty JSON) when set.
pub fn run(cfg: &LoadgenConfig) -> Result<Report, LoadgenError> {
    let workload = build_workload(cfg);
    let mut phases = Vec::new();

    if cfg.compare {
        control(&cfg.addr, r#"{"cmd":"cache","enabled":true}"#)?;
        control(&cfg.addr, r#"{"cmd":"reset"}"#)?;
        phases.push(run_phase(cfg, "cache", &workload)?);
        control(&cfg.addr, r#"{"cmd":"cache","enabled":false}"#)?;
        control(&cfg.addr, r#"{"cmd":"reset"}"#)?;
        phases.push(run_phase(cfg, "no-cache", &workload)?);
        control(&cfg.addr, r#"{"cmd":"cache","enabled":true}"#)?;
    } else {
        phases.push(run_phase(cfg, "single", &workload)?);
    }

    let speedup = (phases.len() == 2).then(|| {
        let cached = phases[0].throughput_rps;
        let uncached = phases[1].throughput_rps;
        cached / uncached.max(1e-9)
    });
    let d_star_identical = (phases.len() == 2).then(|| {
        phases[0]
            .d_stars
            .iter()
            .flatten()
            .map(|d| d.to_bits())
            .eq(phases[1].d_stars.iter().flatten().map(|d| d.to_bits()))
    });

    let report = Report {
        phases,
        speedup,
        d_star_identical,
        cfg: cfg.clone(),
    };

    if let Some(out) = &cfg.out {
        std::fs::write(out, report.to_json().render_pretty())?;
    }
    if cfg.shutdown_after {
        let _ = control(&cfg.addr, r#"{"cmd":"shutdown"}"#);
    }

    if cfg.check {
        let errors: u64 = report.phases.iter().map(|p| p.protocol_errors).sum();
        if errors > 0 {
            return Err(LoadgenError::CheckFailed(format!(
                "{errors} protocol error responses"
            )));
        }
        if report.phases.iter().any(|p| p.p99_us <= 0.0) {
            return Err(LoadgenError::CheckFailed("p99 latency is zero".into()));
        }
        if let (Some(min), Some(got)) = (cfg.min_speedup, report.speedup) {
            if got < min {
                return Err(LoadgenError::CheckFailed(format!(
                    "cache speedup {got:.2}x below required {min:.2}x"
                )));
            }
        }
        if cfg.expect_identical && report.d_star_identical == Some(false) {
            return Err(LoadgenError::CheckFailed(
                "d_star streams differ between cached and uncached phases".into(),
            ));
        }
    }
    Ok(report)
}

/// Parse the `skyferry-loadgen` argument grammar (without the program
/// name). Kept here so it is unit-testable without spawning the binary.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<LoadgenConfig, String> {
    let mut cfg = LoadgenConfig::default();
    let mut args = args.into_iter();
    fn value<T: std::str::FromStr>(
        args: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String> {
        let raw = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        raw.parse()
            .map_err(|_| format!("{flag} got unparsable value '{raw}'"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = value(&mut args, "--addr")?,
            "--requests" => cfg.requests = value(&mut args, "--requests")?,
            "--concurrency" => cfg.concurrency = value(&mut args, "--concurrency")?,
            "--window" => cfg.window = value(&mut args, "--window")?,
            "--rate" => cfg.rate = Some(value(&mut args, "--rate")?),
            "--seed" => cfg.seed = value(&mut args, "--seed")?,
            "--pool" => cfg.pool = value(&mut args, "--pool")?,
            "--unique-frac" => cfg.unique_frac = value(&mut args, "--unique-frac")?,
            "--min-speedup" => cfg.min_speedup = Some(value(&mut args, "--min-speedup")?),
            "--out" => {
                cfg.out = Some(PathBuf::from(
                    args.next().ok_or("--out needs a value".to_string())?,
                ))
            }
            "--compare" => cfg.compare = true,
            "--expect-identical" => cfg.expect_identical = true,
            "--check" => cfg.check = true,
            "--shutdown-after" => cfg.shutdown_after = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if cfg.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_pool_heavy() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 100,
            concurrency: 3,
            pool: 8,
            unique_frac: 0.0,
            ..Default::default()
        };
        let a = build_workload(&cfg);
        let b = build_workload(&cfg);
        assert_eq!(a, b, "same seed, same bytes");
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 100);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 34); // 100 = 34 + 33 + 33
                                    // unique_frac 0 ⇒ every line is one of the 8 pool entries.
        let mut distinct: Vec<&String> = a.iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() <= 8);
        // Lines must parse as valid decision requests.
        for line in a.iter().flatten() {
            assert!(matches!(
                crate::proto::parse_request(line),
                Ok(crate::proto::Request::Decide(_))
            ));
        }
    }

    #[test]
    fn unique_fraction_diversifies_the_mix() {
        let cfg = LoadgenConfig {
            addr: "x".into(),
            requests: 200,
            concurrency: 1,
            pool: 4,
            unique_frac: 1.0,
            ..Default::default()
        };
        let lines = build_workload(&cfg);
        let mut distinct: Vec<&String> = lines.iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() > 150, "fresh params almost never collide");
    }

    #[test]
    fn args_parse_round_trip() {
        let cfg = parse_args(
            [
                "--addr",
                "127.0.0.1:9",
                "--requests",
                "500",
                "--concurrency",
                "2",
                "--window",
                "16",
                "--seed",
                "7",
                "--pool",
                "10",
                "--unique-frac",
                "0.25",
                "--compare",
                "--min-speedup",
                "5",
                "--expect-identical",
                "--check",
                "--out",
                "BENCH_serve.json",
                "--shutdown-after",
            ]
            .into_iter()
            .map(String::from),
        )
        .expect("valid args");
        assert_eq!(cfg.addr, "127.0.0.1:9");
        assert_eq!(cfg.requests, 500);
        assert_eq!(cfg.concurrency, 2);
        assert_eq!(cfg.window, 16);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.pool, 10);
        assert_eq!(cfg.unique_frac, 0.25);
        assert!(cfg.compare && cfg.check && cfg.expect_identical && cfg.shutdown_after);
        assert_eq!(cfg.min_speedup, Some(5.0));
        assert_eq!(
            cfg.out.as_deref(),
            Some(std::path::Path::new("BENCH_serve.json"))
        );

        assert!(
            parse_args(["--requests".into(), "5".into()]).is_err(),
            "addr required"
        );
        assert!(parse_args(["--frob".into()]).is_err());
        assert!(parse_args(["--addr".into()]).is_err());
    }

    #[test]
    fn open_loop_flag_switches_mode_in_report_json() {
        let mut cfg = LoadgenConfig {
            addr: "x".into(),
            ..Default::default()
        };
        cfg.rate = Some(100.0);
        let report = Report {
            phases: Vec::new(),
            speedup: None,
            d_star_identical: None,
            cfg,
        };
        let j = report.to_json();
        let w = j.get("workload").expect("workload");
        assert_eq!(w.get("mode").and_then(Json::as_str), Some("open-loop"));
        assert_eq!(w.get("rate_rps").and_then(Json::as_f64), Some(100.0));
        assert_eq!(j.get("speedup"), Some(&Json::Null));
    }
}
