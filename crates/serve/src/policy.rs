//! Serving state for a compiled policy table.
//!
//! When `skyferryd` is started with `--policy <file>`, the decoded
//! [`PolicyTable`] lives here behind an `Arc`, and the *reader* threads
//! answer in-range decide requests directly — one O(1) index (or a
//! 16-corner multilinear blend with `--policy-interp`), a handful of
//! relaxed atomic counter bumps, and a response. No optimizer, no LRU,
//! no lock, no queue round-trip. Out-of-range requests fall back to the
//! dispatcher's exact engine path and bump the `fallbacks` counter, so
//! the table's coverage is observable in `STATS`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use skyferry_core::policy::PolicyTable;
use skyferry_core::request::DecisionParams;
use skyferry_stats::json::Json;

use crate::metrics::AtomicLatency;
use crate::proto::Decision;

/// How the server should serve a compiled policy table.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// The decoded, checksum-verified table.
    pub table: Arc<PolicyTable>,
    /// Interpolate between cell centres instead of nearest-cell lookup.
    pub interpolate: bool,
}

/// Live serving state: the table plus its lock-free counters.
#[derive(Debug)]
pub struct PolicyState {
    table: Arc<PolicyTable>,
    interpolate: bool,
    enabled: AtomicBool,
    served: AtomicU64,
    fallbacks: AtomicU64,
    latency: AtomicLatency,
}

impl PolicyState {
    /// Wrap a loaded table for serving (enabled by default).
    pub fn new(cfg: PolicyConfig) -> PolicyState {
        PolicyState {
            table: cfg.table,
            interpolate: cfg.interpolate,
            enabled: AtomicBool::new(true),
            served: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            latency: AtomicLatency::new(),
        }
    }

    /// Answer validated params from the table, or `None` when the
    /// request is out of the grid's range (the caller then routes it to
    /// the exact engine and calls [`record_fallback`]).
    ///
    /// In lookup mode the `transmit_now` judgement uses the cell
    /// centre's `d0` — the same snapped-parameter semantics as the
    /// quantized cache — so the full response body is bit-identical to
    /// the cached path. In interpolation mode it uses the raw `d0`.
    ///
    /// [`record_fallback`]: PolicyState::record_fallback
    pub fn decide(&self, p: &DecisionParams) -> Option<Decision> {
        if self.interpolate {
            let t = self.table.interpolate(p)?;
            Some(Decision {
                transfer: t,
                transmit_now: (p.d0_m - t.d_opt).abs() < 1e-3,
                cache_hit: false,
                policy_hit: true,
            })
        } else {
            let cell = self.table.grid.cell_of(p)?;
            let t = *self.table.value(cell);
            let d0_snapped = self.table.grid.params_at(cell).d0_m;
            Some(Decision {
                transfer: t,
                transmit_now: (d0_snapped - t.d_opt).abs() < 1e-3,
                cache_hit: false,
                policy_hit: true,
            })
        }
    }

    /// Count one table-served decision and its service latency.
    pub fn record_served(&self, us: f64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.latency.record(us);
    }

    /// Count one out-of-range request routed to the exact engine.
    pub fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Decisions served from the table since the last reset.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Out-of-range fallbacks since the last reset.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Is the table currently answering requests? (`{"cmd": "policy",
    /// "enabled": false}` routes everything to the exact engine.)
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle table serving at runtime (the `policy` control request).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Zero the counters (the `reset` control request). The enabled
    /// flag is configuration, not a counter, and survives.
    pub fn reset(&self) {
        self.served.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
        self.latency.clear();
    }

    /// The `policy` block of the `STATS` response.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("loaded", Json::Bool(true)),
            ("enabled", Json::Bool(self.enabled())),
            ("interpolate", Json::Bool(self.interpolate)),
            ("cells", Json::Int(self.table.len() as i64)),
            ("seed", Json::Int(self.table.seed as i64)),
            ("served", Json::Int(self.served() as i64)),
            ("fallbacks", Json::Int(self.fallbacks() as i64)),
            ("latency", self.latency.snapshot().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_core::policy::PolicyGrid;
    use skyferry_core::request::Platform;

    fn state(interpolate: bool) -> PolicyState {
        let table = PolicyTable::build(PolicyGrid::quick(), 1);
        PolicyState::new(PolicyConfig {
            table: Arc::new(table),
            interpolate,
        })
    }

    #[test]
    fn lookup_mode_matches_cell_centre_solve_bitwise() {
        let s = state(false);
        let grid = PolicyGrid::quick();
        let cell = grid.cells() / 3;
        let centre = grid.params_at(cell);
        let d = s.decide(&centre).expect("in range");
        let exact = centre.solve();
        assert_eq!(d.transfer, exact);
        assert!(d.policy_hit);
        assert!(!d.cache_hit);
        // A jittered request in the same bucket gets the same answer.
        let mut p = centre;
        p.d0_m += grid.d0.step * 0.3;
        let d2 = s.decide(&p).expect("in range");
        assert_eq!(d2.transfer, exact);
    }

    #[test]
    fn out_of_range_returns_none_and_counts_nothing() {
        let s = state(false);
        let mut p = DecisionParams::baseline(Platform::Airplane);
        p.d0_m = 5000.0;
        assert!(s.decide(&p).is_none());
        assert_eq!(s.served(), 0);
        s.record_fallback();
        assert_eq!(s.fallbacks(), 1);
    }

    #[test]
    fn counters_toggle_and_reset() {
        let s = state(true);
        s.record_served(12.0);
        s.record_served(15.0);
        s.record_fallback();
        assert_eq!(s.served(), 2);
        assert_eq!(s.fallbacks(), 1);
        assert!(s.enabled());
        s.set_enabled(false);
        assert!(!s.enabled());
        s.reset();
        assert_eq!(s.served(), 0);
        assert_eq!(s.fallbacks(), 0);
        assert!(!s.enabled(), "reset leaves the enable flag alone");
        let j = s.to_json();
        assert_eq!(j.get("loaded").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("enabled").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("interpolate").and_then(Json::as_bool), Some(true));
        assert!(j.get("cells").and_then(Json::as_i64).expect("cells") > 0);
    }
}
