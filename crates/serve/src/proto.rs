//! The `skyferryd` wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one response per line, responses delivered in
//! request order per connection. Both directions reuse the workspace
//! JSON codec (`stats::json`), so the server carries no external
//! dependencies and the grammar is exactly the strict subset `parse`
//! accepts.
//!
//! ## Requests
//!
//! A **decision request** is an object without a `"cmd"` member:
//!
//! ```text
//! {"platform":"airplane","d0":300,"mdata":28,"rho":1.11e-4,"speed":10,"seed":7}
//! ```
//!
//! `platform` is mandatory (`"airplane"` / `"quadrocopter"`); the four
//! numeric fields default to the platform's Section 4 baseline when
//! omitted (`d0` metres, `mdata` MB, `rho` 1/m, `speed` m/s). `seed` is
//! accepted for forward compatibility and ignored: the solver is
//! deterministic, so a seed has nothing to perturb. Unknown members are
//! rejected — a typo like `"mdta"` silently falling back to a baseline
//! would be a wrong answer served with confidence.
//!
//! A **control request** is an object with a `"cmd"` member: `stats`,
//! `reset`, `shutdown`, `cache`, or `policy` (the latter two with
//! `"enabled": true|false`).
//!
//! ## Responses
//!
//! ```text
//! {"d_star":164.4,"utility":0.0123,"cdelay_s":35.1,"transmit_now":false,"cache_hit":true,"policy_hit":false,"us_served":12}
//! {"error":"bad-request","message":"..."}
//! ```
//!
//! Error kinds are closed: `bad-request` (unparsable or invalid
//! request), `overloaded` (bounded queue full — the 503 of this
//! protocol), `shutting-down` (arrived after `shutdown`). Floats render
//! with the shortest round-trip representation, so equal `f64`s always
//! render byte-identically — that is what makes "bit-identical response
//! bodies" a testable claim.

use skyferry_core::optimizer::OptimalTransfer;
use skyferry_core::request::{DecisionParams, ParamError, Platform};
use skyferry_stats::json::{self, Json};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve a decision (parameters not yet validated).
    Decide(DecisionParams),
    /// Report server metrics.
    Stats,
    /// Clear the decision cache and zero all counters.
    Reset,
    /// Enable or disable the decision cache.
    Cache {
        /// Desired cache state.
        enabled: bool,
    },
    /// Enable or disable compiled-policy table serving.
    Policy {
        /// Desired table-serving state.
        enabled: bool,
    },
    /// Negotiate the connection's codec (`{"cmd":"codec","v":"bin1"}`).
    Codec {
        /// Requested codec name, validated by the server against
        /// [`crate::framing::Codec::from_wire`].
        v: String,
    },
    /// Gracefully stop the server.
    Shutdown,
}

/// Why a request line was rejected (all map to `bad-request` on the
/// wire; the variants exist so tests can assert the *cause*).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// Not parsable as JSON.
    Malformed(String),
    /// Parsed, but not an object.
    NotAnObject,
    /// Decision request without a `platform` member.
    MissingPlatform,
    /// `platform` is not a known identifier.
    UnknownPlatform(String),
    /// A member that must be a number is not.
    NotANumber(String),
    /// An object member the grammar does not define.
    UnknownField(String),
    /// Parameters parsed but failed validation.
    Invalid(ParamError),
    /// `cmd` names no known control request.
    UnknownCommand(String),
    /// `cache` control without a boolean `enabled`.
    CacheNeedsEnabled,
    /// `policy` control without a boolean `enabled`.
    PolicyNeedsEnabled,
    /// `codec` control without a string `v`.
    CodecNeedsVersion,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Malformed(m) => write!(f, "malformed JSON: {m}"),
            RequestError::NotAnObject => write!(f, "request must be a JSON object"),
            RequestError::MissingPlatform => {
                write!(f, "decision request needs a \"platform\" member")
            }
            RequestError::UnknownPlatform(p) => {
                write!(f, "unknown platform '{p}' (airplane|quadrocopter)")
            }
            RequestError::NotANumber(k) => write!(f, "member \"{k}\" must be a number"),
            RequestError::UnknownField(k) => write!(f, "unknown member \"{k}\""),
            RequestError::Invalid(e) => write!(f, "invalid parameters: {e}"),
            RequestError::UnknownCommand(c) => {
                write!(
                    f,
                    "unknown cmd '{c}' (stats|reset|cache|policy|codec|shutdown)"
                )
            }
            RequestError::CacheNeedsEnabled => {
                write!(f, "cache control needs boolean \"enabled\"")
            }
            RequestError::PolicyNeedsEnabled => {
                write!(f, "policy control needs boolean \"enabled\"")
            }
            RequestError::CodecNeedsVersion => {
                write!(f, "codec control needs string \"v\"")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Parse one request line (already stripped of its newline).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = json::parse(line).map_err(|e| RequestError::Malformed(e.to_string()))?;
    let members = match &value {
        Json::Obj(members) => members,
        _ => return Err(RequestError::NotAnObject),
    };
    if let Some(cmd) = value.get("cmd") {
        let cmd = cmd
            .as_str()
            .ok_or_else(|| RequestError::NotANumber("cmd".into()))?;
        return match cmd {
            "stats" => Ok(Request::Stats),
            "reset" => Ok(Request::Reset),
            "shutdown" => Ok(Request::Shutdown),
            "cache" => {
                let enabled = value
                    .get("enabled")
                    .and_then(Json::as_bool)
                    .ok_or(RequestError::CacheNeedsEnabled)?;
                Ok(Request::Cache { enabled })
            }
            "policy" => {
                let enabled = value
                    .get("enabled")
                    .and_then(Json::as_bool)
                    .ok_or(RequestError::PolicyNeedsEnabled)?;
                Ok(Request::Policy { enabled })
            }
            "codec" => {
                let v = value
                    .get("v")
                    .and_then(Json::as_str)
                    .ok_or(RequestError::CodecNeedsVersion)?;
                Ok(Request::Codec { v: v.to_string() })
            }
            other => Err(RequestError::UnknownCommand(other.to_string())),
        };
    }

    let platform_raw = value
        .get("platform")
        .ok_or(RequestError::MissingPlatform)?
        .as_str()
        .ok_or_else(|| RequestError::NotANumber("platform".into()))?;
    let platform = Platform::from_id(platform_raw)
        .ok_or_else(|| RequestError::UnknownPlatform(platform_raw.to_string()))?;
    let mut params = DecisionParams::baseline(platform);

    for (key, member) in members {
        match key.as_str() {
            "platform" => {}
            // Reserved: accepted and ignored (any JSON value) so request
            // generators may stamp their streams.
            "seed" => {}
            "d0" | "mdata" | "rho" | "speed" => {
                let n = member
                    .as_f64()
                    .ok_or_else(|| RequestError::NotANumber(key.clone()))?;
                match key.as_str() {
                    "d0" => params.d0_m = n,
                    "mdata" => params.mdata_bytes = n * 1e6,
                    "rho" => params.rho_per_m = n,
                    _ => params.v_mps = n,
                }
            }
            other => return Err(RequestError::UnknownField(other.to_string())),
        }
    }
    Ok(Request::Decide(params))
}

/// One served decision, ready to render.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The solved optimum.
    pub transfer: OptimalTransfer,
    /// `true` when the optimum is to transmit from the current position
    /// (no shipping leg), judged against the d0 the solver used.
    pub transmit_now: bool,
    /// Whether the decision cache supplied the value.
    pub cache_hit: bool,
    /// Whether a compiled policy table supplied the value.
    pub policy_hit: bool,
}

/// Render a decision response line (no trailing newline).
pub fn decision_response(d: &Decision, us_served: u64) -> String {
    Json::obj([
        ("d_star", Json::Num(d.transfer.d_opt)),
        ("utility", Json::Num(d.transfer.utility)),
        ("cdelay_s", Json::Num(d.transfer.cdelay_s())),
        ("transmit_now", Json::Bool(d.transmit_now)),
        ("cache_hit", Json::Bool(d.cache_hit)),
        ("policy_hit", Json::Bool(d.policy_hit)),
        ("us_served", Json::Int(us_served as i64)),
    ])
    .render()
}

/// The closed set of wire error kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparsable or invalid request (the caller's fault).
    BadRequest,
    /// The bounded queue is full; retry later (503-style).
    Overloaded,
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
}

impl ErrorKind {
    /// The wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting-down",
        }
    }
}

/// Render an error response line (no trailing newline).
pub fn error_response(kind: ErrorKind, message: &str) -> String {
    Json::obj([
        ("error", Json::str(kind.tag())),
        ("message", Json::str(message)),
    ])
    .render()
}

/// Render a control acknowledgement line, e.g. `{"ok":"reset"}`.
pub fn ack_response(what: &'static str) -> String {
    Json::obj([("ok", Json::str(what))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_core::scenario::BYTES_PER_MB;

    #[test]
    fn decision_request_full_and_defaulted() {
        let r = parse_request(
            r#"{"platform":"quadrocopter","d0":90,"mdata":10,"rho":1e-3,"speed":6,"seed":7}"#,
        )
        .expect("valid");
        let Request::Decide(p) = r else {
            panic!("expected decide")
        };
        assert_eq!(p.platform, Platform::Quadrocopter);
        assert_eq!(p.d0_m, 90.0);
        assert_eq!(p.mdata_bytes, 10.0 * BYTES_PER_MB);
        assert_eq!(p.rho_per_m, 1e-3);
        assert_eq!(p.v_mps, 6.0);

        let r = parse_request(r#"{"platform":"airplane"}"#).expect("valid");
        let Request::Decide(p) = r else {
            panic!("expected decide")
        };
        assert_eq!(p, DecisionParams::baseline(Platform::Airplane));
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"cmd":"reset"}"#), Ok(Request::Reset));
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"cache","enabled":false}"#),
            Ok(Request::Cache { enabled: false })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"cache"}"#),
            Err(RequestError::CacheNeedsEnabled)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"policy","enabled":true}"#),
            Ok(Request::Policy { enabled: true })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"policy"}"#),
            Err(RequestError::PolicyNeedsEnabled)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"codec","v":"bin1"}"#),
            Ok(Request::Codec { v: "bin1".into() })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"codec"}"#),
            Err(RequestError::CodecNeedsVersion)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"selfdestruct"}"#),
            Err(RequestError::UnknownCommand("selfdestruct".into()))
        );
    }

    #[test]
    fn malformed_and_invalid_lines_are_typed_errors() {
        assert!(matches!(
            parse_request("{not json"),
            Err(RequestError::Malformed(_))
        ));
        assert_eq!(parse_request("[1,2]"), Err(RequestError::NotAnObject));
        assert_eq!(parse_request("{}"), Err(RequestError::MissingPlatform));
        assert_eq!(
            parse_request(r#"{"platform":"balloon"}"#),
            Err(RequestError::UnknownPlatform("balloon".into()))
        );
        assert_eq!(
            parse_request(r#"{"platform":"airplane","d0":"far"}"#),
            Err(RequestError::NotANumber("d0".into()))
        );
        assert_eq!(
            parse_request(r#"{"platform":"airplane","mdta":28}"#),
            Err(RequestError::UnknownField("mdta".into()))
        );
    }

    #[test]
    fn responses_render_compact_single_lines() {
        let d = Decision {
            transfer: OptimalTransfer {
                d_opt: 164.5,
                utility: 0.0125,
                survival: 0.98,
                ship_s: 13.5,
                tx_s: 21.0,
            },
            transmit_now: false,
            cache_hit: true,
            policy_hit: false,
        };
        let line = decision_response(&d, 42);
        assert!(!line.contains('\n'));
        let back = json::parse(&line).expect("round trip");
        assert_eq!(back.get("d_star").and_then(Json::as_f64), Some(164.5));
        assert_eq!(back.get("cdelay_s").and_then(Json::as_f64), Some(34.5));
        assert_eq!(back.get("cache_hit").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("policy_hit").and_then(Json::as_bool), Some(false));
        assert_eq!(back.get("us_served").and_then(Json::as_i64), Some(42));

        let e = error_response(ErrorKind::Overloaded, "queue full (depth 8)");
        let back = json::parse(&e).expect("round trip");
        assert_eq!(back.get("error").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            json::parse(&ack_response("reset"))
                .expect("ack")
                .get("ok")
                .and_then(Json::as_str),
            Some("reset")
        );
    }

    #[test]
    fn equal_floats_render_byte_identically() {
        let d = Decision {
            transfer: OptimalTransfer {
                d_opt: 1.0 / 3.0,
                utility: 0.1 + 0.2,
                survival: 1.0,
                ship_s: 0.0,
                tx_s: 9.9,
            },
            transmit_now: true,
            cache_hit: false,
            policy_hit: true,
        };
        assert_eq!(decision_response(&d, 0), decision_response(&d, 0));
    }
}
