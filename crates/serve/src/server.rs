//! The `skyferryd` TCP front end.
//!
//! Thread anatomy, per the classic inference-server shape:
//!
//! * one **accept** thread;
//! * per connection, a **reader** thread (parses request lines,
//!   answers protocol errors itself, enqueues valid jobs) and a
//!   **writer** thread (owns the write half; a sequence-number reorder
//!   buffer guarantees responses leave in request order even though
//!   errors are answered out-of-band by the reader);
//! * one **dispatcher** thread that owns the [`Engine`], drains the
//!   bounded queue in batches, and serves each batch through
//!   `sim::parallel` workers. The [`Metrics`] are lock-free atomics
//!   shared by every thread.
//!
//! With a compiled policy table (`--policy`), in-range decide requests
//! never reach the dispatcher: the reader answers them from the table
//! directly — see [`handle_line`] — and only out-of-range requests fall
//! back to the exact engine path.
//!
//! Backpressure is explicit: a full queue bounces the request with an
//! `overloaded` error at the reader, before any solving work happens.
//! Graceful shutdown (the `shutdown` control request, or
//! [`ServerHandle::shutdown`]) closes the queue — already-accepted jobs
//! drain and get responses, later arrivals get `shutting-down` — and
//! every thread exits; readers poll a 100 ms read timeout so idle
//! connections notice.
//!
//! Nothing in the request path unwraps untrusted data: malformed JSON,
//! invalid parameters, queue overflow and mid-stream disconnects all
//! produce typed error responses or clean thread exits (the
//! `server_survives` integration tests drive each case).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use skyferry_core::request::DecisionParams;
use skyferry_trace as trace;
use skyferry_trace::clock::monotonic_ns;

use crate::bounded::{BoundedQueue, PushError};
use crate::engine::{Engine, EngineConfig};
use crate::metrics::Metrics;
use crate::policy::{PolicyConfig, PolicyState};
use crate::proto::{
    ack_response, decision_response, error_response, parse_request, ErrorKind, Request,
};

/// How the server is wired together.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the bound address is on
    /// the [`ServerHandle`]).
    pub addr: String,
    /// Bounded queue depth (0 = shed every decision, for tests).
    pub queue_depth: usize,
    /// Most jobs the dispatcher drains per batch.
    pub max_batch: usize,
    /// Engine (cache) configuration.
    pub engine: EngineConfig,
    /// Compiled policy table to serve in-range requests from (reader
    /// threads, lock-free); `None` sends everything through the engine.
    pub policy: Option<PolicyConfig>,
    /// Deterministic responses: `us_served` is reported as 0 so the
    /// same request stream yields bit-identical response bodies.
    pub deterministic: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 1024,
            max_batch: 64,
            engine: EngineConfig::default(),
            policy: None,
            deterministic: false,
        }
    }
}

/// One queued unit of work.
enum Job {
    Decide {
        params: DecisionParams,
        seq: u64,
        reply: Sender<(u64, String)>,
        /// When the reader saw the complete request line (mono ns).
        t_recv_ns: u64,
        /// When parse + validation finished (mono ns).
        t_parsed_ns: u64,
        /// Server-wide decide counter value, the trace span's `req` id.
        req_id: u64,
    },
    Stats {
        seq: u64,
        reply: Sender<(u64, String)>,
    },
    Reset {
        seq: u64,
        reply: Sender<(u64, String)>,
    },
    Cache {
        enabled: bool,
        seq: u64,
        reply: Sender<(u64, String)>,
    },
}

struct Shared {
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    policy: Option<PolicyState>,
    deterministic: bool,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
}

impl Shared {
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.close();
            // Unblock the accept loop with a throwaway connection.
            if let Some(addr) = *self.addr.lock().expect("addr lock poisoned") {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
            }
        }
    }
}

/// A running server: its bound address and the means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful shutdown without waiting for it.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Wait until the server stops (a `shutdown` control request, or
    /// [`ServerHandle::shutdown`]). To stop *and* wait, call
    /// [`shutdown`](ServerHandle::shutdown) first or simply drop the
    /// handle — dropping shuts the server down.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut conns = self.conns.lock().expect("conn list poisoned");
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.trigger_shutdown();
        self.join_inner();
    }
}

/// Bind, spawn the thread set, return immediately.
pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(cfg.queue_depth),
        metrics: Metrics::new(),
        policy: cfg.policy.clone().map(PolicyState::new),
        deterministic: cfg.deterministic,
        shutdown: AtomicBool::new(false),
        addr: Mutex::new(Some(addr)),
    });
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let dispatcher = {
        let shared = Arc::clone(&shared);
        let engine = Engine::new(cfg.engine);
        let max_batch = cfg.max_batch.max(1);
        let deterministic = cfg.deterministic;
        std::thread::spawn(move || dispatch_loop(&shared, engine, max_batch, deterministic))
    };

    let accept = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::spawn(move || serve_connection(&shared2, stream));
                conns.lock().expect("conn list poisoned").push(handle);
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        dispatcher: Some(dispatcher),
        conns,
    })
}

/// Reader side of one connection; spawns its paired writer.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // A read timeout lets the reader notice shutdown on idle
    // connections; partial lines accumulate across timeouts because the
    // buffer is only cleared after a complete line is processed.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    let writer = std::thread::spawn(move || write_loop(write_half, rx));

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seq: u64 = 0;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client closed mid-stream or cleanly.
            Ok(_) => {
                let t_recv_ns = monotonic_ns();
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let this_seq = seq;
                    seq += 1;
                    handle_line(shared, trimmed, this_seq, t_recv_ns, &tx);
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Non-UTF-8 bytes: answer once, then drop the
                // connection (framing is unrecoverable).
                let _ = tx.send((
                    seq,
                    error_response(ErrorKind::BadRequest, "request is not UTF-8 text"),
                ));
                break;
            }
            Err(_) => break, // reset / broken pipe: nothing to answer.
        }
    }
    drop(tx); // writer drains outstanding replies, then exits
    let _ = writer.join();
}

/// Parse one request line and route it; every outcome sends exactly one
/// response carrying `seq` (except `shutdown`, which also stops the
/// server).
///
/// With a compiled policy table loaded and enabled, in-range decide
/// requests are answered *here*, on the reader thread: one O(1) table
/// lookup and a handful of relaxed atomic bumps, no queue, no
/// dispatcher, no lock. The writer's reorder buffer keeps responses in
/// request order regardless of which thread answered.
fn handle_line(
    shared: &Arc<Shared>,
    line: &str,
    seq: u64,
    t_recv_ns: u64,
    tx: &Sender<(u64, String)>,
) {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let mark_control = || {
        shared
            .metrics
            .control_requests
            .fetch_add(1, Ordering::Relaxed);
    };
    let send_err = |kind: ErrorKind, msg: &str| {
        let _ = tx.send((seq, error_response(kind, msg)));
        let counter = match kind {
            ErrorKind::BadRequest => &shared.metrics.bad_requests,
            ErrorKind::Overloaded => &shared.metrics.overloaded,
            ErrorKind::ShuttingDown => &shared.metrics.shed_on_shutdown,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    };

    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return send_err(ErrorKind::BadRequest, &e.to_string()),
    };
    let job = match request {
        Request::Decide(params) => match params.validated() {
            Ok(params) => {
                let req_id = shared
                    .metrics
                    .decide_requests
                    .fetch_add(1, Ordering::Relaxed)
                    + 1;
                let t_parsed_ns = monotonic_ns();
                if let Some(policy) = shared.policy.as_ref().filter(|p| p.enabled()) {
                    if let Some(decision) = policy.decide(&params) {
                        let t_done_ns = monotonic_ns();
                        let dt_us = t_done_ns.saturating_sub(t_parsed_ns) as f64 / 1e3;
                        let us_served = if shared.deterministic {
                            0
                        } else {
                            dt_us.round() as u64
                        };
                        policy.record_served(dt_us);
                        shared.metrics.decisions.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.latency.record(dt_us);
                        let _ = tx.send((seq, decision_response(&decision, us_served)));
                        if trace::enabled() {
                            let t_respond_ns = monotonic_ns();
                            let span = trace::manual_span("request");
                            if span.live() {
                                span.finish_tree(
                                    t_recv_ns,
                                    t_respond_ns,
                                    trace::fields!(
                                        req = req_id,
                                        cache_hit = decision.cache_hit,
                                        policy_hit = true,
                                        endpoint = "decide"
                                    ),
                                    &[
                                        ("parse", t_recv_ns, t_parsed_ns),
                                        ("policy-lookup", t_parsed_ns, t_done_ns),
                                        ("respond", t_done_ns, t_respond_ns),
                                    ],
                                );
                            }
                        }
                        return;
                    }
                    // Out of the table's range: count it, then take the
                    // exact engine path below.
                    policy.record_fallback();
                }
                Job::Decide {
                    params,
                    seq,
                    reply: tx.clone(),
                    t_recv_ns,
                    t_parsed_ns,
                    req_id,
                }
            }
            Err(e) => return send_err(ErrorKind::BadRequest, &format!("invalid parameters: {e}")),
        },
        Request::Stats => {
            mark_control();
            Job::Stats {
                seq,
                reply: tx.clone(),
            }
        }
        Request::Reset => {
            mark_control();
            Job::Reset {
                seq,
                reply: tx.clone(),
            }
        }
        Request::Cache { enabled } => {
            mark_control();
            Job::Cache {
                enabled,
                seq,
                reply: tx.clone(),
            }
        }
        Request::Policy { enabled } => {
            // Handled here, not in the dispatcher: the toggle must be
            // visible to the *next* request on this connection, and the
            // reader is the thread that serves table lookups. Response
            // order is the writer's reorder buffer's problem either way.
            match shared.policy.as_ref() {
                Some(policy) => {
                    mark_control();
                    policy.set_enabled(enabled);
                    let _ = tx.send((seq, ack_response("policy")));
                }
                None => send_err(
                    ErrorKind::BadRequest,
                    "no policy table loaded (start with --policy FILE)",
                ),
            }
            return;
        }
        Request::Shutdown => {
            mark_control();
            let _ = tx.send((seq, ack_response("shutdown")));
            shared.trigger_shutdown();
            return;
        }
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => send_err(
            ErrorKind::Overloaded,
            &format!("queue full (depth {})", shared.queue.capacity()),
        ),
        Err(PushError::Closed(_)) => send_err(
            ErrorKind::ShuttingDown,
            "server is draining; reconnect later",
        ),
    }
}

/// Writer side of one connection: a reorder buffer keyed on sequence
/// number, flushed whenever the channel runs momentarily dry.
fn write_loop(mut stream: TcpStream, rx: Receiver<(u64, String)>) {
    let mut pending: std::collections::BTreeMap<u64, String> = std::collections::BTreeMap::new();
    let mut next_seq: u64 = 0;
    let mut buf = BytesMut::with_capacity(4096);
    // The `recv` loop ends when all senders are gone: connection done.
    while let Ok((seq, body)) = rx.recv() {
        pending.insert(seq, body);
        // Opportunistically drain whatever else is already queued so
        // one syscall carries many responses.
        while let Ok((seq, body)) = rx.try_recv() {
            pending.insert(seq, body);
        }
        while let Some(body) = pending.remove(&next_seq) {
            buf.put_slice(body.as_bytes());
            buf.put_u8(b'\n');
            next_seq += 1;
        }
        if !buf.is_empty() {
            if stream.write_all(&buf).is_err() {
                break;
            }
            buf = BytesMut::with_capacity(4096);
        }
    }
    // Final in-order flush (stops at the first gap, which can only mean
    // the request never got a response because we are tearing down).
    let mut tail = BytesMut::new();
    while let Some(body) = pending.remove(&next_seq) {
        tail.put_slice(body.as_bytes());
        tail.put_u8(b'\n');
        next_seq += 1;
    }
    if !tail.is_empty() {
        let _ = stream.write_all(&tail);
    }
    let _ = stream.flush();
}

/// The dispatcher: drains the queue, forms decision batches (control
/// jobs act as barriers so stream semantics hold), serves them on the
/// worker pool, stamps and ships responses.
fn dispatch_loop(shared: &Arc<Shared>, mut engine: Engine, max_batch: usize, deterministic: bool) {
    let mut decides: Vec<PendingDecide> = Vec::new();
    loop {
        let batch = shared.queue.pop_batch(max_batch);
        if batch.is_empty() {
            // Closed and drained.
            flush_decides(shared, &mut engine, &mut decides, deterministic);
            return;
        }
        for job in batch {
            match job {
                Job::Decide {
                    params,
                    seq,
                    reply,
                    t_recv_ns,
                    t_parsed_ns,
                    req_id,
                } => decides.push(PendingDecide {
                    params,
                    seq,
                    reply,
                    t_recv_ns,
                    t_parsed_ns,
                    req_id,
                }),
                Job::Stats { seq, reply } => {
                    flush_decides(shared, &mut engine, &mut decides, deterministic);
                    let body = shared
                        .metrics
                        .to_json(
                            &engine.cache_stats(),
                            engine.cache_enabled(),
                            shared.queue.len(),
                            shared.policy.as_ref().map(PolicyState::to_json),
                        )
                        .render();
                    let _ = reply.send((seq, body));
                }
                Job::Reset { seq, reply } => {
                    flush_decides(shared, &mut engine, &mut decides, deterministic);
                    engine.reset();
                    shared.metrics.clear();
                    if let Some(policy) = shared.policy.as_ref() {
                        policy.reset();
                    }
                    let _ = reply.send((seq, ack_response("reset")));
                }
                Job::Cache {
                    enabled,
                    seq,
                    reply,
                } => {
                    flush_decides(shared, &mut engine, &mut decides, deterministic);
                    engine.set_cache_enabled(enabled);
                    let _ = reply.send((seq, ack_response("cache")));
                }
            }
        }
        flush_decides(shared, &mut engine, &mut decides, deterministic);
    }
}

/// A decision waiting in the dispatcher's batch: parameters, sequence
/// slot, the connection's reply channel, and the trace timestamps the
/// reader stamped on the way in.
struct PendingDecide {
    params: DecisionParams,
    seq: u64,
    reply: Sender<(u64, String)>,
    t_recv_ns: u64,
    t_parsed_ns: u64,
    req_id: u64,
}

/// Serve the buffered decisions as one engine batch. The whole batch's
/// service time is attributed to each request in it (`us_served`, and
/// the latency histogram) — a per-request split would be fiction, the
/// batch is solved jointly.
fn flush_decides(
    shared: &Arc<Shared>,
    engine: &mut Engine,
    decides: &mut Vec<PendingDecide>,
    deterministic: bool,
) {
    if decides.is_empty() {
        return;
    }
    let params: Vec<DecisionParams> = decides.iter().map(|d| d.params).collect();
    let (served, timing) = engine.serve_batch_timed(&params);
    let dt_us = timing.t_done_ns.saturating_sub(timing.t_start_ns) as f64 / 1e3;
    let us_served = if deterministic {
        0
    } else {
        dt_us.round() as u64
    };
    shared
        .metrics
        .decisions
        .fetch_add(served.len() as u64, Ordering::Relaxed);
    for _ in &served {
        shared.metrics.latency.record(dt_us);
    }
    for (d, decision) in decides.iter().zip(&served) {
        let _ = d
            .reply
            .send((d.seq, decision_response(decision, us_served)));
    }
    if trace::enabled() {
        // One span tree per request, built from measured timestamps
        // (manual spans: the dispatcher already has the real phase
        // boundaries, re-timing with guards would double-measure). The
        // queue/cache/compute phases are batch-wide; parse is the one
        // genuinely per-request leg.
        let t_respond_ns = monotonic_ns();
        for (d, decision) in decides.iter().zip(&served) {
            let span = trace::manual_span("request");
            if !span.live() {
                continue;
            }
            span.finish_tree(
                d.t_recv_ns,
                t_respond_ns,
                trace::fields!(
                    req = d.req_id,
                    cache_hit = decision.cache_hit,
                    endpoint = "decide"
                ),
                &[
                    ("parse", d.t_recv_ns, d.t_parsed_ns),
                    ("queue", d.t_parsed_ns, timing.t_start_ns),
                    ("cache", timing.t_start_ns, timing.t_cache_ns),
                    ("compute", timing.t_cache_ns, timing.t_done_ns),
                    ("respond", timing.t_done_ns, t_respond_ns),
                ],
            );
        }
    }
    decides.clear();
}
