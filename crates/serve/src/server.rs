//! The `skyferryd` TCP front end.
//!
//! Thread anatomy, post-sharding:
//!
//! * one **accept** thread that hands each connection to a shard
//!   round-robin (it owns nothing else — no per-connection threads);
//! * N **shard** threads, each an event loop over a `poll(2)` reactor
//!   ([`crate::shard`]): every shard owns its connections, a private
//!   [`Engine`] (decision cache included), and its slice of the
//!   metrics. Decide requests are routed to the shard owning their
//!   quantized key; everything else happens where the connection lives.
//!
//! Requests are **pipelined**: a shard parses as many complete frames
//! per readable event as the socket delivered and answers them as one
//! engine batch, so a client streaming requests without waiting gets
//! batched service automatically. Responses still leave each
//! connection in request order (per-connection reorder buffer).
//!
//! With a compiled policy table (`--policy`), in-range decide requests
//! never touch a cache shard: the parsing shard answers them from the
//! shared lock-free table directly.
//!
//! Backpressure is explicit: each shard's decide backlog is bounded by
//! `queue_depth`, and the *parsing* shard sheds `overloaded` before any
//! cross-shard traffic happens. Graceful shutdown (the `shutdown`
//! control request, or [`ServerHandle::shutdown`]) acks, then drains:
//! accepted decides get responses, later arrivals get `shutting-down`,
//! write buffers flush, and every thread exits.
//!
//! Nothing in the request path unwraps untrusted data: malformed JSON,
//! bad binary frames, invalid parameters, backlog overflow and
//! mid-frame disconnects all produce typed error responses or clean
//! connection teardown (the `server_survives` integration tests drive
//! each case).

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::engine::EngineConfig;
use crate::policy::{PolicyConfig, PolicyState};
use crate::shard::{Msg, ServerState, ShardLoop, ShardShared};

/// How the server is wired together.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the bound address is on
    /// the [`ServerHandle`]).
    pub addr: String,
    /// Bounded per-shard decide backlog (0 = shed every decision, for
    /// tests).
    pub queue_depth: usize,
    /// Most decides a shard serves per engine batch.
    pub max_batch: usize,
    /// Engine (cache) configuration; every shard gets its own engine
    /// built from this (each with the full configured cache capacity).
    pub engine: EngineConfig,
    /// Number of shard event loops (clamped to at least 1).
    pub shards: usize,
    /// Compiled policy table to serve in-range requests from (shared,
    /// lock-free); `None` sends everything through the engines.
    pub policy: Option<PolicyConfig>,
    /// Deterministic responses: `us_served` is reported as 0 so the
    /// same request stream yields bit-identical response bodies.
    pub deterministic: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 1024,
            max_batch: 64,
            engine: EngineConfig::default(),
            shards: 1,
            policy: None,
            deterministic: false,
        }
    }
}

/// A running server: its bound address and the means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful shutdown without waiting for it.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// Wait until the server stops (a `shutdown` control request, or
    /// [`ServerHandle::shutdown`]). To stop *and* wait, call
    /// [`shutdown`](ServerHandle::shutdown) first or simply drop the
    /// handle — dropping shuts the server down.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.state.trigger_shutdown();
        self.join_inner();
    }
}

/// Bind, spawn the acceptor and the shard loops, return immediately.
pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let nshards = cfg.shards.max(1);

    let mut shards = Vec::with_capacity(nshards);
    let mut receivers = Vec::with_capacity(nshards);
    for id in 0..nshards {
        let (shard, receiver) = ShardShared::new(id)?;
        shards.push(shard);
        receivers.push(receiver);
    }
    let state = Arc::new(ServerState {
        shards,
        policy: cfg.policy.clone().map(PolicyState::new),
        deterministic: cfg.deterministic,
        queue_depth: cfg.queue_depth,
        max_batch: cfg.max_batch.max(1),
        shutdown: AtomicBool::new(false),
        remote_inflight: AtomicUsize::new(0),
        addr: Mutex::new(Some(addr)),
    });

    // With more than one shard, solves run inline on the shard thread —
    // each shard *is* a worker, nesting a pool per batch would only add
    // spawn overhead. A single shard keeps the configured pool.
    let shard_engine = EngineConfig {
        solve_threads: if nshards > 1 {
            1
        } else {
            cfg.engine.solve_threads
        },
        ..cfg.engine
    };
    let shard_handles: Vec<JoinHandle<()>> = receivers
        .into_iter()
        .enumerate()
        .map(|(id, receiver)| {
            let state = Arc::clone(&state);
            let engine_cfg = shard_engine;
            std::thread::spawn(move || ShardLoop::new(state, id, receiver, engine_cfg).run())
        })
        .collect();

    let accept = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let mut next = 0usize;
            for stream in listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shard = &state.shards[next];
                next = (next + 1) % state.shards.len();
                shard.metrics.connections.fetch_add(1, Ordering::Relaxed);
                shard.send(Msg::NewConn(stream));
            }
        })
    };

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        shards: shard_handles,
    })
}
