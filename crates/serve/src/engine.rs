//! The request engine: batched decision evaluation with
//! sequential-equivalent cache semantics.
//!
//! The dispatcher hands the engine a batch of validated
//! [`DecisionParams`]; the engine answers with one [`Decision`] per
//! request, in order. Internally:
//!
//! 1. **Bookkeeping pass (sequential, in stream order)** — each request
//!    is quantized to its cache key and looked up with
//!    [`DecisionCache::lookup_or_reserve`]. Hits capture their value
//!    immediately; the first requester of a new key becomes its
//!    *origin* (a `Pending` reservation, evicting the LRU entry if
//!    needed); later same-key requests in the batch share the origin's
//!    result.
//! 2. **Solve pass (parallel)** — the unique missed keys are solved
//!    with `sim::parallel::par_map` over the worker pool.
//! 3. **Fulfil pass (sequential)** — results are published to the cache
//!    and responses assembled.
//!
//! Because every cache state transition happens in pass 1 in stream
//! order, the responses (including `cache_hit` flags), the counters and
//! the eviction sequence are bit-identical to serving the same stream
//! one request at a time — for any worker count *and* any partitioning
//! of the stream into batches. That is the determinism claim the
//! acceptance tests pin down.

use std::collections::BTreeMap;

use skyferry_core::optimizer::OptimalTransfer;
use skyferry_core::request::{DecisionParams, Quantizer};
use skyferry_sim::parallel::{max_threads, par_map_indexed_with_threads};
use skyferry_trace as trace;
use skyferry_trace::clock::monotonic_ns;

use crate::cache::{CacheStats, DecisionCache, Key, Lookup};
use crate::proto::Decision;

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Decision-cache capacity in entries (`0` disables storage).
    pub cache_capacity: usize,
    /// Bucket widths for the cache key (exact mode: raw bits).
    pub quant: Quantizer,
    /// Start with the cache enabled? (Runtime-togglable via the `cache`
    /// control request.)
    pub cache_enabled: bool,
    /// Worker threads for the solve pass (`0` = the `sim::parallel`
    /// global pool). Shard event loops pass `1` so solves stay inline on
    /// the shard thread instead of spawning a nested pool per batch;
    /// `par_map` is order-preserving at any count, so the answer (and
    /// every cache counter) is identical either way.
    pub solve_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 4096,
            quant: Quantizer::default_buckets(),
            cache_enabled: true,
            solve_threads: 0,
        }
    }
}

/// The engine: a decision cache plus the solve orchestration.
#[derive(Debug)]
pub struct Engine {
    quant: Quantizer,
    cache: DecisionCache,
    cache_enabled: bool,
    solve_threads: usize,
}

/// Pass-1 verdict for one request of a batch.
enum Plan {
    Hit(OptimalTransfer),
    Shared(Key),
    Origin(Key),
}

/// Phase boundaries of one [`Engine::serve_batch_timed`] call, in
/// monotonic nanoseconds — what the dispatcher uses to build per-request
/// trace spans and the latency metric without re-measuring.
#[derive(Debug, Clone, Copy)]
pub struct BatchTiming {
    /// Batch entry (before the cache bookkeeping pass).
    pub t_start_ns: u64,
    /// End of the sequential cache pass (lookups/reservations done).
    pub t_cache_ns: u64,
    /// End of the solve + fulfil passes (responses assembled).
    pub t_done_ns: u64,
    /// Unique keys actually solved.
    pub solved: usize,
}

impl Engine {
    /// Build an engine from its configuration.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            quant: cfg.quant,
            cache: DecisionCache::new(cfg.cache_capacity, cfg.quant),
            cache_enabled: cfg.cache_enabled,
            solve_threads: cfg.solve_threads,
        }
    }

    fn solve_all(&self, params: &[DecisionParams]) -> Vec<OptimalTransfer> {
        let threads = if self.solve_threads == 0 {
            max_threads()
        } else {
            self.solve_threads
        };
        par_map_indexed_with_threads(params.len(), threads, |i| params[i].solve())
    }

    /// Is the cache currently consulted?
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Toggle the cache (the `cache` control request). Disabling leaves
    /// resident entries in place; re-enabling picks them back up.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// Drop all cached decisions and zero the cache counters (the
    /// `reset` control request).
    pub fn reset(&mut self) {
        self.cache.clear();
    }

    /// Cache counter snapshot for `STATS`.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The quantizer in force.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quant
    }

    /// Serve one request (a batch of one).
    pub fn serve_one(&mut self, p: DecisionParams) -> Decision {
        self.serve_batch(std::slice::from_ref(&p))
            .pop()
            .expect("batch of one yields one decision")
    }

    /// Serve a batch of *validated* parameters, responses in order.
    pub fn serve_batch(&mut self, batch: &[DecisionParams]) -> Vec<Decision> {
        self.serve_batch_timed(batch).0
    }

    /// [`serve_batch`](Engine::serve_batch) plus the batch's phase
    /// boundary timestamps (see [`BatchTiming`]).
    pub fn serve_batch_timed(&mut self, batch: &[DecisionParams]) -> (Vec<Decision>, BatchTiming) {
        let _span = trace::span!("serve-batch", n = batch.len());
        let t_start_ns = monotonic_ns();
        if !self.cache_enabled {
            // No cache: solve raw (un-snapped) parameters — this is the
            // reference path `--no-cache` comparisons measure against.
            let solved = self.solve_all(batch);
            let decisions: Vec<Decision> = batch
                .iter()
                .zip(solved)
                .map(|(p, transfer)| Decision {
                    transfer,
                    transmit_now: transmit_now(p.d0_m, &transfer),
                    cache_hit: false,
                    policy_hit: false,
                })
                .collect();
            let timing = BatchTiming {
                t_start_ns,
                t_cache_ns: t_start_ns,
                t_done_ns: monotonic_ns(),
                solved: batch.len(),
            };
            return (decisions, timing);
        }

        // Pass 1: sequential bookkeeping in stream order.
        let mut plan = Vec::with_capacity(batch.len());
        let mut miss_keys: Vec<Key> = Vec::new();
        let mut miss_params: Vec<DecisionParams> = Vec::new();
        for p in batch {
            let key = self.quant.key(p);
            match self.cache.lookup_or_reserve(key) {
                Lookup::Hit(v) => plan.push(Plan::Hit(v)),
                Lookup::SharedMiss => plan.push(Plan::Shared(key)),
                Lookup::Miss => {
                    // Keys can re-miss within a batch only if their
                    // reservation was evicted; solve each key once.
                    if !miss_keys.contains(&key) {
                        miss_keys.push(key);
                        miss_params.push(self.quant.snap(p));
                    }
                    plan.push(Plan::Origin(key));
                }
            }
        }

        let t_cache_ns = monotonic_ns();

        // Pass 2: solve unique misses on the worker pool.
        let solved = self.solve_all(&miss_params);

        // Pass 3: publish and assemble. The batch-local map also covers
        // reservations that were evicted before fulfilment.
        let mut computed: BTreeMap<Key, OptimalTransfer> = BTreeMap::new();
        for (key, v) in miss_keys.iter().zip(solved) {
            self.cache.fulfill(*key, v);
            computed.insert(*key, v);
        }
        debug_assert!(!self.cache.has_pending(), "batch left a reservation open");

        let solved_count = miss_keys.len();
        let decisions: Vec<Decision> = batch
            .iter()
            .zip(plan)
            .map(|(p, pl)| {
                let (transfer, cache_hit) = match pl {
                    Plan::Hit(v) => (v, true),
                    Plan::Shared(k) => (
                        *computed
                            .get(&k)
                            .expect("shared miss always follows an origin in the same batch"),
                        true,
                    ),
                    Plan::Origin(k) => (
                        *computed.get(&k).expect("every origin key was solved"),
                        false,
                    ),
                };
                // `transmit_now` is judged against the d0 the solver
                // actually used (the snapped one in quantized mode).
                let d0_solved = self.quant.snap(p).d0_m;
                Decision {
                    transfer,
                    transmit_now: transmit_now(d0_solved, &transfer),
                    cache_hit,
                    policy_hit: false,
                }
            })
            .collect();
        let timing = BatchTiming {
            t_start_ns,
            t_cache_ns,
            t_done_ns: monotonic_ns(),
            solved: solved_count,
        };
        (decisions, timing)
    }
}

fn transmit_now(d0_m: f64, t: &OptimalTransfer) -> bool {
    (d0_m - t.d_opt).abs() < 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_core::request::Platform;
    use skyferry_core::scenario::BYTES_PER_MB;
    use skyferry_sim::rng::DetRng;

    fn random_params(rng: &mut DetRng) -> DecisionParams {
        let platform = if rng.chance(0.5) {
            Platform::Airplane
        } else {
            Platform::Quadrocopter
        };
        DecisionParams {
            platform,
            d0_m: rng.uniform_range(50.0, 300.0),
            mdata_bytes: rng.uniform_range(1.0, 60.0) * BYTES_PER_MB,
            rho_per_m: rng.uniform_range(5e-5, 5e-4),
            v_mps: rng.uniform_range(2.0, 12.0),
        }
    }

    fn exact_engine(capacity: usize) -> Engine {
        Engine::new(EngineConfig {
            cache_capacity: capacity,
            quant: Quantizer::exact(),
            cache_enabled: true,
            solve_threads: 0,
        })
    }

    fn bits(d: &Decision) -> [u64; 3] {
        [
            d.transfer.d_opt.to_bits(),
            d.transfer.utility.to_bits(),
            d.transfer.cdelay_s().to_bits(),
        ]
    }

    // Satellite 3(a): in exactness mode a cached response is
    // bit-identical to a fresh `optimize` call.
    #[test]
    fn exact_cache_hits_are_bit_identical_to_fresh_solves() {
        let mut rng = DetRng::seed(0x5E17E01);
        let mut engine = exact_engine(256);
        for _ in 0..200 {
            let p = random_params(&mut rng).validated().expect("valid");
            let first = engine.serve_one(p);
            let second = engine.serve_one(p);
            assert!(!first.cache_hit || second.cache_hit);
            assert!(second.cache_hit, "exact repeat must hit");
            let fresh = p.solve();
            assert_eq!(second.transfer, fresh, "cached == fresh, bitwise");
            assert_eq!(bits(&second), bits(&first));
            assert_eq!(second.transmit_now, first.transmit_now);
        }
    }

    // Satellite 3(b): quantized mode's utility loss is bounded by the
    // bucket width — the served decision, evaluated under the *true*
    // parameters, is within a few percent of the true optimum.
    #[test]
    fn quantized_utility_loss_is_bounded() {
        use skyferry_core::utility::utility_view;
        use skyferry_units::Meters;

        let worst_loss = |quant: Quantizer| -> f64 {
            let mut rng = DetRng::seed(0x5E17E02);
            let mut engine = Engine::new(EngineConfig {
                cache_capacity: 4096,
                quant,
                cache_enabled: true,
                solve_threads: 0,
            });
            let mut worst = 0.0f64;
            for _ in 0..300 {
                let p = random_params(&mut rng).validated().expect("valid");
                let served = engine.serve_one(p);
                let truth = p.solve();
                // Clamp the served distance into the true feasible range
                // (bucket snapping can move d0 across the served optimum).
                let d = served
                    .transfer
                    .d_opt
                    .clamp(skyferry_core::request::D_MIN_M, p.d0_m);
                let u_served = utility_view(p.view(), Meters::new(d));
                worst = worst.max(1.0 - u_served / truth.utility);
            }
            worst
        };
        let shrink = |q: Quantizer, f: f64| Quantizer {
            d0_step_m: q.d0_step_m.map(|s| s * f),
            mdata_step_mb: q.mdata_step_mb.map(|s| s * f),
            rho_step_per_m: q.rho_step_per_m.map(|s| s * f),
            speed_step_mps: q.speed_step_mps.map(|s| s * f),
        };
        let default = worst_loss(Quantizer::default_buckets());
        let quarter = worst_loss(shrink(Quantizer::default_buckets(), 0.25));
        let exact = worst_loss(Quantizer::exact());
        assert!(
            default < 0.10,
            "default buckets must stay within 10% of optimal utility, worst {default:.4}"
        );
        assert!(
            quarter < 0.05,
            "quarter-width buckets must stay within 5%, worst {quarter:.4}"
        );
        assert!(quarter < default, "loss shrinks with the bucket width");
        assert!(exact < 1e-12, "exact mode loses nothing, worst {exact:.3e}");
    }

    #[test]
    fn batching_is_equivalent_to_one_at_a_time() {
        let mut rng = DetRng::seed(0x5E17E03);
        // Small cache so evictions exercise the pending/evicted paths.
        let stream: Vec<DecisionParams> = {
            let pool: Vec<DecisionParams> = (0..12)
                .map(|_| random_params(&mut rng).validated().expect("valid"))
                .collect();
            (0..240).map(|_| pool[rng.index(pool.len())]).collect()
        };

        let mut sequential = exact_engine(8);
        let one_by_one: Vec<Decision> = stream.iter().map(|p| sequential.serve_one(*p)).collect();

        for batch_size in [1usize, 3, 17, 64, 240] {
            let mut engine = exact_engine(8);
            let mut batched = Vec::new();
            for chunk in stream.chunks(batch_size) {
                batched.extend(engine.serve_batch(chunk));
            }
            assert_eq!(batched.len(), one_by_one.len());
            for (i, (a, b)) in batched.iter().zip(&one_by_one).enumerate() {
                assert_eq!(a, b, "batch size {batch_size}, request {i}");
            }
            assert_eq!(
                engine.cache_stats(),
                sequential.cache_stats(),
                "counters at batch size {batch_size}"
            );
        }
    }

    // Acceptance: same request stream → bit-identical decisions at any
    // worker count. This is the ONE test in this binary allowed to call
    // set_max_threads (global), restoring it before returning.
    #[test]
    fn decisions_identical_across_1_2_8_threads() {
        use skyferry_sim::parallel::set_max_threads;

        let mut rng = DetRng::seed(0x5E17E04);
        let stream: Vec<DecisionParams> = (0..160)
            .map(|_| {
                let mut p = random_params(&mut rng);
                if rng.chance(0.5) {
                    p.d0_m = 150.0; // force repeats into the mix
                }
                p.validated().expect("valid")
            })
            .collect();

        let mut reference: Option<Vec<Decision>> = None;
        for threads in [1usize, 2, 8] {
            set_max_threads(threads);
            let mut engine = exact_engine(32);
            let mut out = Vec::new();
            for chunk in stream.chunks(40) {
                out.extend(engine.serve_batch(chunk));
            }
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    for (i, (a, b)) in out.iter().zip(r).enumerate() {
                        assert_eq!(a, b, "threads {threads}, request {i}");
                        assert_eq!(bits(a), bits(b));
                    }
                }
            }
        }
        set_max_threads(0);
    }

    #[test]
    fn no_cache_mode_never_reports_hits() {
        let mut engine = Engine::new(EngineConfig {
            cache_capacity: 64,
            quant: Quantizer::exact(),
            cache_enabled: false,
            solve_threads: 0,
        });
        let p = DecisionParams::baseline(Platform::Airplane);
        for _ in 0..3 {
            assert!(!engine.serve_one(p).cache_hit);
        }
        assert_eq!(engine.cache_stats().hits, 0);
        // Re-enabling picks the (empty) cache back up.
        engine.set_cache_enabled(true);
        assert!(!engine.serve_one(p).cache_hit);
        assert!(engine.serve_one(p).cache_hit);
        engine.reset();
        assert_eq!(engine.cache_stats().len, 0);
        assert!(!engine.serve_one(p).cache_hit);
    }
}
