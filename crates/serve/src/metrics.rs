//! Server metrics: counters plus a streaming latency histogram.
//!
//! The histogram is log-bucketed (four buckets per octave of
//! microseconds) so it is O(1) per observation and a few hundred bytes
//! of state, yet resolves percentiles to within ±9% of the true value —
//! `quantile_is_within_one_bucket_of_exact` pins that bound against the
//! exact `stats::quantile` on the same samples. The load generator,
//! which keeps its raw samples, reports exact `stats::quantile`
//! percentiles; the server-side `STATS` response reports these
//! streaming ones.

use std::sync::atomic::{AtomicU64, Ordering};

use skyferry_stats::json::Json;

use crate::cache::CacheStats;

/// Four buckets per octave: bucket upper bounds grow by 2^(1/4).
const BUCKETS_PER_OCTAVE: f64 = 4.0;
/// 1 µs .. ~2^30 µs (≈18 minutes) in quarter-octave steps, plus the
/// underflow bucket 0.
const NUM_BUCKETS: usize = 1 + 30 * 4;

/// Streaming latency histogram over microsecond observations.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_us: 0.0,
            max_us: 0.0,
        }
    }

    fn bucket(us: f64) -> usize {
        if us <= 1.0 {
            return 0;
        }
        let idx = 1 + (us.log2() * BUCKETS_PER_OCTAVE).floor() as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Geometric midpoint of a bucket, the value quantiles report.
    fn bucket_mid(idx: usize) -> f64 {
        if idx == 0 {
            return 1.0;
        }
        let lo = 2f64.powf((idx as f64 - 1.0) / BUCKETS_PER_OCTAVE);
        let hi = 2f64.powf(idx as f64 / BUCKETS_PER_OCTAVE);
        (lo * hi).sqrt()
    }

    /// Record one observation (microseconds; negatives clamp to 0).
    pub fn record(&mut self, us: f64) {
        let us = us.max(0.0);
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in µs (`None` when empty).
    pub fn mean_us(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum_us / self.total as f64)
    }

    /// Largest observation in µs.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Approximate quantile `q ∈ [0,1]` in µs (`None` when empty):
    /// the geometric midpoint of the bucket holding the rank-`q`
    /// observation.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, nearest-rank method.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_mid(idx).min(self.max_us.max(1.0)));
            }
        }
        Some(self.max_us)
    }

    /// Forget everything (the `reset` control request).
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_us = 0.0;
        self.max_us = 0.0;
    }

    /// Fold another histogram into this one, bucket by bucket. Because
    /// the buckets are fixed, merging per-shard histograms then asking
    /// for a quantile is exactly the histogram the shards would have
    /// built jointly — the deterministic merge `{"cmd":"stats"}` uses
    /// for its fleet-wide percentiles.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The percentile summary embedded in `STATS` responses.
    pub fn to_json(&self) -> Json {
        let q = |p: f64| match self.quantile_us(p) {
            Some(v) => Json::Num(v),
            None => Json::Null,
        };
        Json::obj([
            ("count", Json::Int(self.total as i64)),
            (
                "mean_us",
                self.mean_us().map(Json::Num).unwrap_or(Json::Null),
            ),
            ("p50_us", q(0.50)),
            ("p95_us", q(0.95)),
            ("p99_us", q(0.99)),
            ("max_us", Json::Num(self.max_us)),
        ])
    }
}

/// A lock-free [`LatencyHistogram`]: the same quarter-octave buckets
/// behind relaxed atomics, so the compiled-policy fast path (and the
/// reader threads generally) can record observations with no mutex.
///
/// Sums and maxima are kept in tenths of a microsecond, integer — a
/// relaxed `fetch_add`/`fetch_max` apiece — so the reported mean is
/// exact to 0.05 µs, far below the histogram's own bucket resolution.
#[derive(Debug)]
pub struct AtomicLatency {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_tenth_us: AtomicU64,
    max_tenth_us: AtomicU64,
}

impl Default for AtomicLatency {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicLatency {
    /// An empty histogram.
    pub fn new() -> AtomicLatency {
        AtomicLatency {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_tenth_us: AtomicU64::new(0),
            max_tenth_us: AtomicU64::new(0),
        }
    }

    /// Record one observation (microseconds; negatives clamp to 0).
    pub fn record(&self, us: f64) {
        let us = us.max(0.0);
        let tenths = (us * 10.0).round().min(u64::MAX as f64) as u64;
        self.counts[LatencyHistogram::bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_tenth_us.fetch_add(tenths, Ordering::Relaxed);
        self.max_tenth_us.fetch_max(tenths, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A point-in-time [`LatencyHistogram`] for quantile queries and
    /// JSON rendering.
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.total.load(Ordering::Relaxed),
            sum_us: self.sum_tenth_us.load(Ordering::Relaxed) as f64 / 10.0,
            max_us: self.max_tenth_us.load(Ordering::Relaxed) as f64 / 10.0,
        }
    }

    /// Forget everything (the `reset` control request).
    pub fn clear(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_tenth_us.store(0, Ordering::Relaxed);
        self.max_tenth_us.store(0, Ordering::Relaxed);
    }
}

/// The server-wide counter registry: relaxed atomics shared directly by
/// the connection threads (error counters, policy lookups) and the
/// dispatcher (decision counters and latency) — no mutex anywhere on
/// the request path.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request lines received (valid or not).
    pub requests: AtomicU64,
    /// Decisions served.
    pub decisions: AtomicU64,
    /// `bad-request` responses (parse or validation failures).
    pub bad_requests: AtomicU64,
    /// Well-formed `decide` requests (classified after parse +
    /// validation; requests later shed as overloaded/shutting-down still
    /// count here, so `decide + control + bad_requests == requests`).
    pub decide_requests: AtomicU64,
    /// Well-formed control requests (`stats`, `reset`, `cache`,
    /// `policy`, `shutdown`).
    pub control_requests: AtomicU64,
    /// `overloaded` responses (bounded queue full).
    pub overloaded: AtomicU64,
    /// `shutting-down` responses.
    pub shed_on_shutdown: AtomicU64,
    /// Service latency per decision, engine batches and policy lookups
    /// alike.
    pub latency: AtomicLatency,
}

impl Metrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Zero everything (the `reset` control request).
    pub fn clear(&self) {
        for c in [
            &self.connections,
            &self.requests,
            &self.decisions,
            &self.bad_requests,
            &self.decide_requests,
            &self.control_requests,
            &self.overloaded,
            &self.shed_on_shutdown,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.latency.clear();
    }

    /// Render the `STATS` response body, folding in the engine's cache
    /// counters, the current queue depth, and (when a compiled policy
    /// table is loaded) the policy serving block.
    pub fn to_json(
        &self,
        cache: &CacheStats,
        cache_enabled: bool,
        queue_len: usize,
        policy: Option<Json>,
    ) -> Json {
        let load = |c: &AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i64);
        Json::obj([
            ("connections", load(&self.connections)),
            ("requests", load(&self.requests)),
            ("decisions", load(&self.decisions)),
            ("bad_requests", load(&self.bad_requests)),
            (
                "endpoints",
                Json::obj([
                    ("decide", load(&self.decide_requests)),
                    ("control", load(&self.control_requests)),
                ]),
            ),
            ("overloaded", load(&self.overloaded)),
            ("shed_on_shutdown", load(&self.shed_on_shutdown)),
            ("queue_len", Json::Int(queue_len as i64)),
            (
                "cache",
                Json::obj([
                    ("enabled", Json::Bool(cache_enabled)),
                    ("hits", Json::Int(cache.hits as i64)),
                    ("misses", Json::Int(cache.misses as i64)),
                    ("evictions", Json::Int(cache.evictions as i64)),
                    ("len", Json::Int(cache.len as i64)),
                    ("capacity", Json::Int(cache.capacity as i64)),
                ]),
            ),
            (
                "policy",
                policy.unwrap_or_else(|| Json::obj([("loaded", Json::Bool(false))])),
            ),
            ("latency", self.latency.snapshot().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_sim::rng::DetRng;
    use skyferry_stats::quantile::quantile;

    #[test]
    fn empty_histogram_reports_nulls() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
        let j = h.to_json();
        assert_eq!(j.get("p99_us"), Some(&Json::Null));
        assert_eq!(j.get("count").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact() {
        let mut rng = DetRng::seed(0x4157_0001);
        let mut h = LatencyHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            // Log-uniform over 2..200_000 µs, the realistic range.
            let v = 2f64 * 10f64.powf(rng.uniform() * 5.0);
            h.record(v);
            samples.push(v);
        }
        for q in [0.5, 0.95, 0.99] {
            let approx = h.quantile_us(q).expect("non-empty");
            let exact = quantile(&samples, q).expect("non-empty");
            // A quarter-octave bucket's midpoint is within 2^(1/8) of
            // any sample in the bucket: ±9.1%.
            let ratio = approx / exact;
            assert!(
                (0.90..=1.10).contains(&ratio),
                "q={q}: approx {approx:.1} vs exact {exact:.1}"
            );
        }
    }

    #[test]
    fn histogram_handles_extremes_and_clears() {
        let mut h = LatencyHistogram::new();
        h.record(-3.0); // clamps to underflow bucket
        h.record(0.2);
        h.record(1e12); // clamps to the top bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_us(), 1e12);
        assert!(h.quantile_us(0.0).expect("non-empty") >= 0.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
    }

    #[test]
    fn endpoint_split_sums_to_request_total() {
        // The per-endpoint counters partition the request counter: every
        // request line is exactly one of decide / control / bad.
        let m = Metrics::new();
        m.requests.store(12, Ordering::Relaxed);
        m.decide_requests.store(7, Ordering::Relaxed);
        m.control_requests.store(3, Ordering::Relaxed);
        m.bad_requests.store(2, Ordering::Relaxed);
        let j = m.to_json(&CacheStats::default(), true, 0, None);
        let e = j.get("endpoints").expect("endpoints member");
        let decide = e.get("decide").and_then(Json::as_i64).expect("decide");
        let control = e.get("control").and_then(Json::as_i64).expect("control");
        let bad = j.get("bad_requests").and_then(Json::as_i64).expect("bad");
        let total = j.get("requests").and_then(Json::as_i64).expect("requests");
        assert_eq!(decide + control + bad, total);
    }

    #[test]
    fn stats_json_embeds_cache_queue_and_policy() {
        let m = Metrics::new();
        m.decisions.store(7, Ordering::Relaxed);
        m.latency.record(100.0);
        let cache = CacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            len: 1,
            capacity: 8,
        };
        let j = m.to_json(&cache, true, 3, None);
        assert_eq!(j.get("decisions").and_then(Json::as_i64), Some(7));
        assert_eq!(j.get("queue_len").and_then(Json::as_i64), Some(3));
        let c = j.get("cache").expect("cache member");
        assert_eq!(c.get("hits").and_then(Json::as_i64), Some(5));
        assert_eq!(c.get("enabled").and_then(Json::as_bool), Some(true));
        // No table loaded → the policy block says so.
        let p = j.get("policy").expect("policy member");
        assert_eq!(p.get("loaded").and_then(Json::as_bool), Some(false));
        let j = m.to_json(
            &cache,
            true,
            3,
            Some(Json::obj([("loaded", Json::Bool(true))])),
        );
        let p = j.get("policy").expect("policy member");
        assert_eq!(p.get("loaded").and_then(Json::as_bool), Some(true));
        assert!(
            j.get("latency")
                .and_then(|l| l.get("p99_us"))
                .and_then(Json::as_f64)
                .expect("recorded")
                > 0.0
        );
    }

    #[test]
    fn merged_histogram_equals_jointly_built_one() {
        let mut rng = DetRng::seed(0x4157_0003);
        let mut joint = LatencyHistogram::new();
        let mut parts: Vec<LatencyHistogram> = (0..4).map(|_| LatencyHistogram::new()).collect();
        for i in 0..8_000usize {
            let v = 2f64 * 10f64.powf(rng.uniform() * 4.0);
            joint.record(v);
            parts[i % 4].record(v);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), joint.count());
        assert_eq!(merged.max_us(), joint.max_us());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(merged.quantile_us(q), joint.quantile_us(q), "q={q}");
        }
        let (a, b) = (
            merged.mean_us().expect("n>0"),
            joint.mean_us().expect("n>0"),
        );
        assert!((a - b).abs() < 1e-9, "mean {a} vs {b}");
    }

    #[test]
    fn atomic_latency_snapshot_matches_sequential_histogram() {
        let a = AtomicLatency::new();
        let mut h = LatencyHistogram::new();
        let mut rng = DetRng::seed(0x4157_0002);
        for _ in 0..5_000 {
            let v = 2f64 * 10f64.powf(rng.uniform() * 4.0);
            a.record(v);
            h.record(v);
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), h.count());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(snap.quantile_us(q), h.quantile_us(q), "q={q}");
        }
        // Mean is exact to the tenth-µs accumulator's resolution.
        let (am, hm) = (snap.mean_us().expect("n>0"), h.mean_us().expect("n>0"));
        assert!((am - hm).abs() < 0.05, "mean {am} vs {hm}");
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.snapshot().quantile_us(0.5), None);
    }
}
