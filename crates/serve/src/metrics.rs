//! Server metrics: counters plus a streaming latency histogram.
//!
//! The histogram is log-bucketed (four buckets per octave of
//! microseconds) so it is O(1) per observation and a few hundred bytes
//! of state, yet resolves percentiles to within ±9% of the true value —
//! `quantile_is_within_one_bucket_of_exact` pins that bound against the
//! exact `stats::quantile` on the same samples. The load generator,
//! which keeps its raw samples, reports exact `stats::quantile`
//! percentiles; the server-side `STATS` response reports these
//! streaming ones.

use skyferry_stats::json::Json;

use crate::cache::CacheStats;

/// Four buckets per octave: bucket upper bounds grow by 2^(1/4).
const BUCKETS_PER_OCTAVE: f64 = 4.0;
/// 1 µs .. ~2^30 µs (≈18 minutes) in quarter-octave steps, plus the
/// underflow bucket 0.
const NUM_BUCKETS: usize = 1 + 30 * 4;

/// Streaming latency histogram over microsecond observations.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_us: 0.0,
            max_us: 0.0,
        }
    }

    fn bucket(us: f64) -> usize {
        if us <= 1.0 {
            return 0;
        }
        let idx = 1 + (us.log2() * BUCKETS_PER_OCTAVE).floor() as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Geometric midpoint of a bucket, the value quantiles report.
    fn bucket_mid(idx: usize) -> f64 {
        if idx == 0 {
            return 1.0;
        }
        let lo = 2f64.powf((idx as f64 - 1.0) / BUCKETS_PER_OCTAVE);
        let hi = 2f64.powf(idx as f64 / BUCKETS_PER_OCTAVE);
        (lo * hi).sqrt()
    }

    /// Record one observation (microseconds; negatives clamp to 0).
    pub fn record(&mut self, us: f64) {
        let us = us.max(0.0);
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in µs (`None` when empty).
    pub fn mean_us(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum_us / self.total as f64)
    }

    /// Largest observation in µs.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Approximate quantile `q ∈ [0,1]` in µs (`None` when empty):
    /// the geometric midpoint of the bucket holding the rank-`q`
    /// observation.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, nearest-rank method.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_mid(idx).min(self.max_us.max(1.0)));
            }
        }
        Some(self.max_us)
    }

    /// Forget everything (the `reset` control request).
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_us = 0.0;
        self.max_us = 0.0;
    }

    /// The percentile summary embedded in `STATS` responses.
    pub fn to_json(&self) -> Json {
        let q = |p: f64| match self.quantile_us(p) {
            Some(v) => Json::Num(v),
            None => Json::Null,
        };
        Json::obj([
            ("count", Json::Int(self.total as i64)),
            (
                "mean_us",
                self.mean_us().map(Json::Num).unwrap_or(Json::Null),
            ),
            ("p50_us", q(0.50)),
            ("p95_us", q(0.95)),
            ("p99_us", q(0.99)),
            ("max_us", Json::Num(self.max_us)),
        ])
    }
}

/// The server-wide counter registry. One instance lives behind a mutex
/// shared by the connection threads (error counters) and the dispatcher
/// (decision counters and latency).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines received (valid or not).
    pub requests: u64,
    /// Decisions served.
    pub decisions: u64,
    /// `bad-request` responses (parse or validation failures).
    pub bad_requests: u64,
    /// Well-formed `decide` requests (classified after parse +
    /// validation; requests later shed as overloaded/shutting-down still
    /// count here, so `decide + control + bad_requests == requests`).
    pub decide_requests: u64,
    /// Well-formed control requests (`stats`, `reset`, `cache`,
    /// `shutdown`).
    pub control_requests: u64,
    /// `overloaded` responses (bounded queue full).
    pub overloaded: u64,
    /// `shutting-down` responses.
    pub shed_on_shutdown: u64,
    /// Service latency per decision batch, attributed per request.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Metrics {
        Metrics {
            latency: LatencyHistogram::new(),
            ..Default::default()
        }
    }

    /// Zero everything (the `reset` control request).
    pub fn clear(&mut self) {
        *self = Metrics::new();
    }

    /// Render the `STATS` response body, folding in the engine's cache
    /// counters and the current queue depth.
    pub fn to_json(&self, cache: &CacheStats, cache_enabled: bool, queue_len: usize) -> Json {
        Json::obj([
            ("connections", Json::Int(self.connections as i64)),
            ("requests", Json::Int(self.requests as i64)),
            ("decisions", Json::Int(self.decisions as i64)),
            ("bad_requests", Json::Int(self.bad_requests as i64)),
            (
                "endpoints",
                Json::obj([
                    ("decide", Json::Int(self.decide_requests as i64)),
                    ("control", Json::Int(self.control_requests as i64)),
                ]),
            ),
            ("overloaded", Json::Int(self.overloaded as i64)),
            ("shed_on_shutdown", Json::Int(self.shed_on_shutdown as i64)),
            ("queue_len", Json::Int(queue_len as i64)),
            (
                "cache",
                Json::obj([
                    ("enabled", Json::Bool(cache_enabled)),
                    ("hits", Json::Int(cache.hits as i64)),
                    ("misses", Json::Int(cache.misses as i64)),
                    ("evictions", Json::Int(cache.evictions as i64)),
                    ("len", Json::Int(cache.len as i64)),
                    ("capacity", Json::Int(cache.capacity as i64)),
                ]),
            ),
            ("latency", self.latency.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyferry_sim::rng::DetRng;
    use skyferry_stats::quantile::quantile;

    #[test]
    fn empty_histogram_reports_nulls() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
        let j = h.to_json();
        assert_eq!(j.get("p99_us"), Some(&Json::Null));
        assert_eq!(j.get("count").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact() {
        let mut rng = DetRng::seed(0x4157_0001);
        let mut h = LatencyHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            // Log-uniform over 2..200_000 µs, the realistic range.
            let v = 2f64 * 10f64.powf(rng.uniform() * 5.0);
            h.record(v);
            samples.push(v);
        }
        for q in [0.5, 0.95, 0.99] {
            let approx = h.quantile_us(q).expect("non-empty");
            let exact = quantile(&samples, q).expect("non-empty");
            // A quarter-octave bucket's midpoint is within 2^(1/8) of
            // any sample in the bucket: ±9.1%.
            let ratio = approx / exact;
            assert!(
                (0.90..=1.10).contains(&ratio),
                "q={q}: approx {approx:.1} vs exact {exact:.1}"
            );
        }
    }

    #[test]
    fn histogram_handles_extremes_and_clears() {
        let mut h = LatencyHistogram::new();
        h.record(-3.0); // clamps to underflow bucket
        h.record(0.2);
        h.record(1e12); // clamps to the top bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_us(), 1e12);
        assert!(h.quantile_us(0.0).expect("non-empty") >= 0.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
    }

    #[test]
    fn endpoint_split_sums_to_request_total() {
        // The per-endpoint counters partition the request counter: every
        // request line is exactly one of decide / control / bad.
        let mut m = Metrics::new();
        m.requests = 12;
        m.decide_requests = 7;
        m.control_requests = 3;
        m.bad_requests = 2;
        assert_eq!(
            m.decide_requests + m.control_requests + m.bad_requests,
            m.requests
        );
        let j = m.to_json(&CacheStats::default(), true, 0);
        let e = j.get("endpoints").expect("endpoints member");
        let decide = e.get("decide").and_then(Json::as_i64).expect("decide");
        let control = e.get("control").and_then(Json::as_i64).expect("control");
        let bad = j.get("bad_requests").and_then(Json::as_i64).expect("bad");
        let total = j.get("requests").and_then(Json::as_i64).expect("requests");
        assert_eq!(decide + control + bad, total);
    }

    #[test]
    fn stats_json_embeds_cache_and_queue() {
        let mut m = Metrics::new();
        m.decisions = 7;
        m.latency.record(100.0);
        let cache = CacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            len: 1,
            capacity: 8,
        };
        let j = m.to_json(&cache, true, 3);
        assert_eq!(j.get("decisions").and_then(Json::as_i64), Some(7));
        assert_eq!(j.get("queue_len").and_then(Json::as_i64), Some(3));
        let c = j.get("cache").expect("cache member");
        assert_eq!(c.get("hits").and_then(Json::as_i64), Some(5));
        assert_eq!(c.get("enabled").and_then(Json::as_bool), Some(true));
        assert!(
            j.get("latency")
                .and_then(|l| l.get("p99_us"))
                .and_then(Json::as_f64)
                .expect("recorded")
                > 0.0
        );
    }
}
