//! `skyferryd` — the long-running decision server.
//!
//! ```text
//! skyferryd [--addr HOST:PORT] [--shards N] [--queue-depth N] [--batch N]
//!           [--cache-capacity N] [--exact | --quant-d0 M --quant-mdata MB
//!            --quant-rho R --quant-speed V] [--no-cache]
//!           [--policy FILE] [--policy-interp]
//!           [--deterministic] [--threads N] [--trace PATH]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (scripts wait
//! for that line), then serves until a `shutdown` control request.
//! `--policy FILE` loads a compiled decision table built by
//! `repro --compile-policy`; a corrupted, truncated or
//! version-mismatched artifact is rejected at startup with the typed
//! decode error. `--policy-interp` interpolates between cell centres
//! instead of nearest-cell lookup. `--trace PATH` records every request
//! as a span tree (parse → queue → cache → compute → respond, or parse
//! → policy-lookup → respond on the table path) and writes the merged
//! trace on shutdown — `.jsonl` for the compact format, anything else
//! for Chrome `trace_event` JSON (loadable in Perfetto).

use std::sync::Arc;

use skyferry_core::policy::PolicyTable;
use skyferry_core::request::Quantizer;
use skyferry_serve::policy::PolicyConfig;
use skyferry_serve::server::{start, ServerConfig};
use skyferry_trace as trace;

struct Args {
    server: ServerConfig,
    threads: usize,
    trace_path: Option<String>,
    policy_path: Option<String>,
    policy_interp: bool,
}

fn parse_args(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut server = ServerConfig {
        addr: "127.0.0.1:4517".to_string(),
        ..Default::default()
    };
    let mut threads = 0usize;
    let mut trace_path = None;
    let mut policy_path = None;
    let mut policy_interp = false;
    let mut quant = Quantizer::default_buckets();
    let mut raw = raw.into_iter();
    fn value<T: std::str::FromStr>(
        args: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String> {
        let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse()
            .map_err(|_| format!("{flag} got unparsable value '{v}'"))
    }
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--addr" => server.addr = value(&mut raw, "--addr")?,
            "--shards" => server.shards = value(&mut raw, "--shards")?,
            "--queue-depth" => server.queue_depth = value(&mut raw, "--queue-depth")?,
            "--batch" => server.max_batch = value(&mut raw, "--batch")?,
            "--cache-capacity" => {
                server.engine.cache_capacity = value(&mut raw, "--cache-capacity")?
            }
            "--exact" => quant = Quantizer::exact(),
            "--quant-d0" => quant.d0_step_m = Some(value(&mut raw, "--quant-d0")?),
            "--quant-mdata" => quant.mdata_step_mb = Some(value(&mut raw, "--quant-mdata")?),
            "--quant-rho" => quant.rho_step_per_m = Some(value(&mut raw, "--quant-rho")?),
            "--quant-speed" => quant.speed_step_mps = Some(value(&mut raw, "--quant-speed")?),
            "--no-cache" => server.engine.cache_enabled = false,
            "--deterministic" => server.deterministic = true,
            "--threads" => threads = value(&mut raw, "--threads")?,
            "--trace" => trace_path = Some(value(&mut raw, "--trace")?),
            "--policy" => policy_path = Some(value(&mut raw, "--policy")?),
            "--policy-interp" => policy_interp = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if policy_interp && policy_path.is_none() {
        return Err("--policy-interp needs --policy FILE".to_string());
    }
    server.engine.quant = quant;
    Ok(Args {
        server,
        threads,
        trace_path,
        policy_path,
        policy_interp,
    })
}

const USAGE: &str = "usage: skyferryd [--addr HOST:PORT] [--shards N] [--queue-depth N] \
[--batch N] [--cache-capacity N] [--exact] [--quant-d0 M] [--quant-mdata MB] [--quant-rho R] \
[--quant-speed V] [--no-cache] [--policy FILE] [--policy-interp] [--deterministic] \
[--threads N] [--trace PATH]";

fn main() {
    let mut args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("skyferryd: {e}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    skyferry_sim::parallel::set_max_threads(args.threads);
    if let Some(path) = &args.policy_path {
        let table = match PolicyTable::load_file(std::path::Path::new(path)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skyferryd: cannot load policy {path}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "skyferryd: policy table {path}: {} cells, seed {:#x}, {}",
            table.len(),
            table.seed,
            if args.policy_interp {
                "interpolating"
            } else {
                "nearest-cell lookup"
            },
        );
        args.server.policy = Some(PolicyConfig {
            table: Arc::new(table),
            interpolate: args.policy_interp,
        });
    }
    if args.trace_path.is_some() {
        // Request spans are manual spans stamped with measured monotonic
        // timestamps, so the trace clock is always the real one — the
        // virtual clock would disagree with the stamps. `--deterministic`
        // still zeroes `us_served` in responses; trace *times* are
        // inherently wall-clock here.
        trace::install(trace::TraceConfig::default());
    }
    let handle = match start(args.server.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("skyferryd: cannot bind {}: {e}", args.server.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    let e = &args.server.engine;
    eprintln!(
        "skyferryd: {} shard{}, cache {} (capacity {}, {}), queue depth {}, batch {}, {} mode",
        args.server.shards.max(1),
        if args.server.shards.max(1) == 1 {
            ""
        } else {
            "s"
        },
        if e.cache_enabled { "on" } else { "off" },
        e.cache_capacity,
        if e.quant.is_exact() {
            "exact keys".to_string()
        } else {
            "quantized keys".to_string()
        },
        args.server.queue_depth,
        args.server.max_batch,
        if args.server.deterministic {
            "deterministic"
        } else {
            "timing"
        },
    );
    handle.join();
    if let Some(path) = &args.trace_path {
        let records = trace::drain();
        match trace::sink::write_file(std::path::Path::new(path), &records) {
            Ok(()) => eprintln!("skyferryd: wrote {} trace records to {path}", records.len()),
            Err(e) => eprintln!("skyferryd: cannot write trace {path}: {e}"),
        }
    }
    eprintln!("skyferryd: shut down cleanly");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(strs: &[&str]) -> Result<Args, String> {
        parse_args(strs.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&[]).expect("defaults");
        assert_eq!(a.server.addr, "127.0.0.1:4517");
        assert_eq!(a.server.shards, 1);
        assert!(a.server.engine.cache_enabled);
        assert!(!a.server.engine.quant.is_exact());

        let a = parse(&[
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "4",
            "--queue-depth",
            "8",
            "--batch",
            "16",
            "--cache-capacity",
            "100",
            "--exact",
            "--deterministic",
            "--threads",
            "2",
        ])
        .expect("valid");
        assert_eq!(a.server.addr, "127.0.0.1:0");
        assert_eq!(a.server.shards, 4);
        assert_eq!(a.server.queue_depth, 8);
        assert_eq!(a.server.max_batch, 16);
        assert_eq!(a.server.engine.cache_capacity, 100);
        assert!(a.server.engine.quant.is_exact());
        assert!(a.server.deterministic);
        assert_eq!(a.threads, 2);
        assert_eq!(a.trace_path, None);

        let a = parse(&["--trace", "/tmp/d.trace.json"]).expect("valid");
        assert_eq!(a.trace_path.as_deref(), Some("/tmp/d.trace.json"));
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn quant_flags_and_errors() {
        let a = parse(&["--quant-d0", "2.5", "--no-cache"]).expect("valid");
        assert_eq!(a.server.engine.quant.d0_step_m, Some(2.5));
        assert!(!a.server.engine.cache_enabled);
        assert!(parse(&["--queue-depth"]).is_err());
        assert!(parse(&["--queue-depth", "many"]).is_err());
        assert!(parse(&["--frob"]).is_err());
    }

    #[test]
    fn policy_flags_parse_and_validate() {
        let a = parse(&["--policy", "/tmp/policy.bin"]).expect("valid");
        assert_eq!(a.policy_path.as_deref(), Some("/tmp/policy.bin"));
        assert!(!a.policy_interp);
        let a = parse(&["--policy", "p.bin", "--policy-interp"]).expect("valid");
        assert!(a.policy_interp);
        assert!(parse(&["--policy"]).is_err(), "flag needs a value");
        assert!(
            parse(&["--policy-interp"]).is_err(),
            "interp without a table is a config error"
        );
        let a = parse(&[]).expect("defaults");
        assert_eq!(a.policy_path, None);
    }
}
