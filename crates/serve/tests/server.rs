//! End-to-end tests of the `skyferryd` TCP front end: protocol errors,
//! backpressure, disconnects, shutdown, ordering and determinism.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use skyferry_core::policy::{PolicyGrid, PolicyTable};
use skyferry_core::request::Quantizer;
use skyferry_serve::engine::EngineConfig;
use skyferry_serve::policy::PolicyConfig;
use skyferry_serve::server::{start, ServerConfig, ServerHandle};
use skyferry_stats::json::{self, Json};

fn test_server(queue_depth: usize) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth,
        max_batch: 8,
        engine: EngineConfig {
            cache_capacity: 64,
            quant: Quantizer::exact(),
            cache_enabled: true,
        },
        policy: None,
        deterministic: true,
    })
    .expect("bind loopback")
}

fn policy_server() -> (ServerHandle, PolicyGrid) {
    let grid = PolicyGrid::quick();
    let table = PolicyTable::build(grid, 0x5AFE);
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 64,
        max_batch: 8,
        engine: EngineConfig {
            cache_capacity: 64,
            quant: Quantizer::exact(),
            cache_enabled: false,
        },
        policy: Some(PolicyConfig {
            table: Arc::new(table),
            interpolate: false,
        }),
        deterministic: true,
    })
    .expect("bind loopback");
    (handle, grid)
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// Send every line, then read one response line per request, in order.
fn round_trip(handle: &ServerHandle, lines: &[&str]) -> Vec<String> {
    let (mut stream, mut reader) = connect(handle);
    for line in lines {
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
    }
    let mut out = Vec::new();
    for _ in 0..lines.len() {
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        out.push(response.trim().to_string());
    }
    out
}

fn error_kind(line: &str) -> Option<String> {
    json::parse(line)
        .ok()?
        .get("error")?
        .as_str()
        .map(str::to_string)
}

#[test]
fn decisions_served_in_order_with_cache_hits() {
    let handle = test_server(64);
    let baseline = r#"{"platform":"quadrocopter"}"#;
    let other = r#"{"platform":"airplane","d0":250,"mdata":12}"#;
    let responses = round_trip(&handle, &[baseline, other, baseline, baseline]);
    assert_eq!(responses.len(), 4);

    let parsed: Vec<Json> = responses
        .iter()
        .map(|r| json::parse(r).expect("valid response json"))
        .collect();
    for p in &parsed {
        assert!(p.get("error").is_none(), "no errors: {p:?}");
        assert!(p.get("d_star").and_then(Json::as_f64).is_some());
    }
    // The quadrocopter baseline's optimum is the 20 m safety floor.
    let d = parsed[0]
        .get("d_star")
        .and_then(Json::as_f64)
        .expect("d_star");
    assert!((d - 20.0).abs() < 0.5, "got {d}");
    // Responses 2 and 3 repeat request 0's key: hits, same solution.
    assert_eq!(
        parsed[0].get("cache_hit").and_then(Json::as_bool),
        Some(false),
        "first sight of the key is the miss"
    );
    for hit in [&parsed[2], &parsed[3]] {
        assert_eq!(hit.get("cache_hit").and_then(Json::as_bool), Some(true));
        for field in ["d_star", "utility", "cdelay_s"] {
            assert_eq!(
                hit.get(field).and_then(Json::as_f64),
                parsed[0].get(field).and_then(Json::as_f64),
                "cached value must match the miss bit-for-bit ({field})"
            );
        }
    }
    assert_ne!(
        responses[0], responses[1],
        "different params, different answer"
    );
    drop(handle); // drop = shutdown + join
}

#[test]
fn malformed_and_invalid_requests_get_typed_errors() {
    let handle = test_server(64);
    let responses = round_trip(
        &handle,
        &[
            "{broken json",
            "[1,2,3]",
            r#"{"platform":"zeppelin"}"#,
            r#"{"platform":"airplane","d0":"far"}"#,
            r#"{"platform":"airplane","speed":-4}"#,
            r#"{"platform":"airplane","rho":1e999}"#,
            r#"{"cmd":"explode"}"#,
            r#"{"platform":"airplane"}"#,
        ],
    );
    for r in &responses[..7] {
        assert_eq!(
            error_kind(r).as_deref(),
            Some("bad-request"),
            "expected typed error, got {r}"
        );
    }
    // The valid request after all that garbage is still served.
    assert!(error_kind(&responses[7]).is_none());
    assert!(json::parse(&responses[7])
        .expect("valid")
        .get("d_star")
        .is_some());
    drop(handle); // drop = shutdown + join
}

#[test]
fn zero_depth_queue_sheds_with_overloaded() {
    let handle = test_server(0);
    let responses = round_trip(
        &handle,
        &[r#"{"platform":"airplane"}"#, r#"{"cmd":"stats"}"#],
    );
    assert_eq!(error_kind(&responses[0]).as_deref(), Some("overloaded"));
    assert_eq!(error_kind(&responses[1]).as_deref(), Some("overloaded"));
    drop(handle); // drop = shutdown + join
}

#[test]
fn mid_stream_disconnect_leaves_server_healthy() {
    let handle = test_server(64);
    {
        // A client that floods requests and vanishes without reading.
        let (mut stream, _reader) = connect(&handle);
        for _ in 0..50 {
            stream
                .write_all(b"{\"platform\":\"airplane\",\"mdata\":55}\n")
                .expect("send");
        }
        // Drop both halves: reader EOFs, writer hits a broken pipe.
    }
    // Another client that disconnects mid-line.
    {
        let (mut stream, _reader) = connect(&handle);
        stream.write_all(b"{\"platform\":\"airpl").expect("send");
    }
    // The server still answers a fresh connection correctly.
    let responses = round_trip(
        &handle,
        &[r#"{"platform":"airplane"}"#, r#"{"cmd":"stats"}"#],
    );
    assert!(error_kind(&responses[0]).is_none());
    let stats = json::parse(&responses[1]).expect("stats json");
    assert!(
        stats
            .get("decisions")
            .and_then(Json::as_i64)
            .expect("count")
            >= 1
    );
    drop(handle); // drop = shutdown + join
}

#[test]
fn stats_reset_and_cache_toggle_round_trip() {
    let handle = test_server(64);
    let baseline = r#"{"platform":"airplane"}"#;
    let responses = round_trip(
        &handle,
        &[
            baseline,
            baseline,
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"cache","enabled":false}"#,
            baseline,
            r#"{"cmd":"reset"}"#,
            r#"{"cmd":"stats"}"#,
        ],
    );
    let stats = json::parse(&responses[2]).expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(
        json::parse(&responses[3])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("cache")
    );
    assert_eq!(
        json::parse(&responses[4])
            .expect("decision")
            .get("cache_hit")
            .and_then(Json::as_bool),
        Some(false),
        "cache disabled"
    );
    let after_reset = json::parse(&responses[6]).expect("stats");
    assert_eq!(
        after_reset
            .get("cache")
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_i64),
        Some(0)
    );
    drop(handle); // drop = shutdown + join
}

#[test]
fn shutdown_request_stops_the_server() {
    let handle = test_server(64);
    let addr = handle.addr();
    let responses = round_trip(
        &handle,
        &[r#"{"platform":"airplane"}"#, r#"{"cmd":"shutdown"}"#],
    );
    assert!(error_kind(&responses[0]).is_none());
    assert_eq!(
        json::parse(&responses[1])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("shutdown")
    );
    // Shutdown was requested over the wire, so this returns promptly.
    drop(handle); // drop = shutdown + join
                  // And the port no longer accepts decision traffic.
    let refused = TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(200));
    if let Ok(mut s) = refused {
        // Accept loop may have been mid-teardown; the connection must
        // at least be useless: either the write fails or nothing
        // answers.
        let _ = s.write_all(b"{\"platform\":\"airplane\"}\n");
        let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(300)));
        let mut r = BufReader::new(s);
        let mut line = String::new();
        let got = r.read_line(&mut line);
        assert!(
            matches!(got, Err(_) | Ok(0)),
            "a dead server must not serve decisions, got {line:?}"
        );
    }
}

#[test]
fn policy_table_serves_in_range_and_falls_back() {
    let (handle, grid) = policy_server();
    // A request at a cell centre, rendered in wire units: shortest
    // round-trip float formatting re-parses to the identical bits.
    let cell = grid.cells() / 3;
    let (platform, [d0, mdata, rho, speed]) = grid.request_of(cell);
    let in_range = format!(
        r#"{{"platform":"{}","d0":{d0},"mdata":{mdata},"rho":{rho},"speed":{speed}}}"#,
        platform.id()
    );
    // Far outside the grid: must fall back to the exact engine.
    let out_of_range = r#"{"platform":"airplane","d0":50000,"mdata":28}"#;
    let responses = round_trip(
        &handle,
        &[in_range.as_str(), out_of_range, r#"{"cmd":"stats"}"#],
    );

    let table_resp = json::parse(&responses[0]).expect("decision");
    assert_eq!(
        table_resp.get("policy_hit").and_then(Json::as_bool),
        Some(true),
        "in-range request served from the table: {table_resp:?}"
    );
    // The table answer is bit-identical to solving the cell centre.
    let exact = grid.params_at(cell).solve();
    assert_eq!(
        table_resp.get("d_star").and_then(Json::as_f64),
        Some(exact.d_opt),
        "d_star must match the exact solve bitwise"
    );
    assert_eq!(
        table_resp.get("utility").and_then(Json::as_f64),
        Some(exact.utility)
    );

    let engine_resp = json::parse(&responses[1]).expect("decision");
    assert_eq!(
        engine_resp.get("policy_hit").and_then(Json::as_bool),
        Some(false),
        "out-of-range request takes the engine path"
    );
    assert!(engine_resp.get("d_star").and_then(Json::as_f64).is_some());

    let stats = json::parse(&responses[2]).expect("stats");
    let policy = stats.get("policy").expect("policy block");
    assert_eq!(policy.get("loaded").and_then(Json::as_bool), Some(true));
    assert_eq!(policy.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(policy.get("served").and_then(Json::as_i64), Some(1));
    assert_eq!(policy.get("fallbacks").and_then(Json::as_i64), Some(1));
    drop(handle); // drop = shutdown + join
}

#[test]
fn policy_toggle_reroutes_to_engine_and_back() {
    let (handle, grid) = policy_server();
    let (platform, [d0, mdata, rho, speed]) = grid.request_of(1);
    let req = format!(
        r#"{{"platform":"{}","d0":{d0},"mdata":{mdata},"rho":{rho},"speed":{speed}}}"#,
        platform.id()
    );
    let responses = round_trip(
        &handle,
        &[
            req.as_str(),
            r#"{"cmd":"policy","enabled":false}"#,
            req.as_str(),
            r#"{"cmd":"policy","enabled":true}"#,
            req.as_str(),
        ],
    );
    let hit = |i: usize| {
        json::parse(&responses[i])
            .expect("decision")
            .get("policy_hit")
            .and_then(Json::as_bool)
    };
    assert_eq!(hit(0), Some(true));
    assert_eq!(
        json::parse(&responses[1])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("policy")
    );
    assert_eq!(hit(2), Some(false), "disabled table routes to the engine");
    assert_eq!(hit(4), Some(true), "re-enabled");
    // Table and engine agree bitwise on the grid-aligned request: the
    // engine solves the same (cell-centre) parameters exactly.
    let d_star = |i: usize| {
        json::parse(&responses[i])
            .expect("decision")
            .get("d_star")
            .and_then(Json::as_f64)
    };
    assert_eq!(d_star(0), d_star(2), "table == exact engine on centres");
    drop(handle); // drop = shutdown + join
}

#[test]
fn policy_control_without_table_is_bad_request() {
    let handle = test_server(64);
    let responses = round_trip(
        &handle,
        &[r#"{"cmd":"policy","enabled":true}"#, r#"{"cmd":"stats"}"#],
    );
    assert_eq!(error_kind(&responses[0]).as_deref(), Some("bad-request"));
    let stats = json::parse(&responses[1]).expect("stats");
    let policy = stats.get("policy").expect("policy block");
    assert_eq!(policy.get("loaded").and_then(Json::as_bool), Some(false));
    drop(handle); // drop = shutdown + join
}

// The ONE test in this binary allowed to touch the global worker-count
// ceiling: the same pipelined stream, served at 1, 2 and 8 workers in
// deterministic mode, must produce bit-identical response bodies.
#[test]
fn response_bytes_identical_across_worker_counts() {
    use skyferry_sim::parallel::set_max_threads;

    let mut streams: Vec<Vec<String>> = Vec::new();
    let requests: Vec<String> = {
        // A deterministic mix with plenty of repeats and a sprinkle of
        // errors (error responses must be deterministic too).
        let mut lines = Vec::new();
        for i in 0..60u64 {
            match i % 5 {
                0 => lines.push(r#"{"platform":"quadrocopter"}"#.to_string()),
                1 => lines.push(format!(
                    r#"{{"platform":"airplane","d0":{},"mdata":14}}"#,
                    120 + (i % 3) * 40
                )),
                2 => lines.push(r#"{"platform":"airplane","mdata":28}"#.to_string()),
                3 => lines.push("{oops".to_string()),
                _ => lines.push(format!(r#"{{"platform":"quadrocopter","d0":{}}}"#, 60 + i)),
            }
        }
        lines
    };
    let line_refs: Vec<&str> = requests.iter().map(String::as_str).collect();

    for threads in [1usize, 2, 8] {
        set_max_threads(threads);
        let handle = test_server(256);
        let responses = round_trip(&handle, &line_refs);
        drop(handle); // drop = shutdown + join
        streams.push(responses);
    }
    set_max_threads(0);

    assert_eq!(streams[0], streams[1], "1 vs 2 workers");
    assert_eq!(streams[0], streams[2], "1 vs 8 workers");
    // Deterministic mode really does zero the timing field.
    for line in &streams[0] {
        if let Some(us) = json::parse(line).expect("valid").get("us_served") {
            assert_eq!(us.as_i64(), Some(0));
        }
    }
}
