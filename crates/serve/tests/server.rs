//! End-to-end tests of the `skyferryd` TCP front end: protocol errors,
//! backpressure, disconnects, shutdown, ordering and determinism.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use skyferry_core::policy::{PolicyGrid, PolicyTable};
use skyferry_core::request::Quantizer;
use skyferry_serve::engine::EngineConfig;
use skyferry_serve::policy::PolicyConfig;
use skyferry_serve::server::{start, ServerConfig, ServerHandle};
use skyferry_stats::json::{self, Json};

fn test_server(queue_depth: usize) -> ServerHandle {
    sharded_server(queue_depth, 1)
}

fn sharded_server(queue_depth: usize, shards: usize) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth,
        max_batch: 8,
        engine: EngineConfig {
            cache_capacity: 64,
            quant: Quantizer::exact(),
            cache_enabled: true,
            solve_threads: 0,
        },
        shards,
        policy: None,
        deterministic: true,
    })
    .expect("bind loopback")
}

fn policy_server() -> (ServerHandle, PolicyGrid) {
    let grid = PolicyGrid::quick();
    let table = PolicyTable::build(grid, 0x5AFE);
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 64,
        max_batch: 8,
        engine: EngineConfig {
            cache_capacity: 64,
            quant: Quantizer::exact(),
            cache_enabled: false,
            solve_threads: 0,
        },
        shards: 1,
        policy: Some(PolicyConfig {
            table: Arc::new(table),
            interpolate: false,
        }),
        deterministic: true,
    })
    .expect("bind loopback");
    (handle, grid)
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// Send every line, then read one response line per request, in order.
fn round_trip(handle: &ServerHandle, lines: &[&str]) -> Vec<String> {
    let (mut stream, mut reader) = connect(handle);
    for line in lines {
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
    }
    let mut out = Vec::new();
    for _ in 0..lines.len() {
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        out.push(response.trim().to_string());
    }
    out
}

fn error_kind(line: &str) -> Option<String> {
    json::parse(line)
        .ok()?
        .get("error")?
        .as_str()
        .map(str::to_string)
}

#[test]
fn decisions_served_in_order_with_cache_hits() {
    let handle = test_server(64);
    let baseline = r#"{"platform":"quadrocopter"}"#;
    let other = r#"{"platform":"airplane","d0":250,"mdata":12}"#;
    let responses = round_trip(&handle, &[baseline, other, baseline, baseline]);
    assert_eq!(responses.len(), 4);

    let parsed: Vec<Json> = responses
        .iter()
        .map(|r| json::parse(r).expect("valid response json"))
        .collect();
    for p in &parsed {
        assert!(p.get("error").is_none(), "no errors: {p:?}");
        assert!(p.get("d_star").and_then(Json::as_f64).is_some());
    }
    // The quadrocopter baseline's optimum is the 20 m safety floor.
    let d = parsed[0]
        .get("d_star")
        .and_then(Json::as_f64)
        .expect("d_star");
    assert!((d - 20.0).abs() < 0.5, "got {d}");
    // Responses 2 and 3 repeat request 0's key: hits, same solution.
    assert_eq!(
        parsed[0].get("cache_hit").and_then(Json::as_bool),
        Some(false),
        "first sight of the key is the miss"
    );
    for hit in [&parsed[2], &parsed[3]] {
        assert_eq!(hit.get("cache_hit").and_then(Json::as_bool), Some(true));
        for field in ["d_star", "utility", "cdelay_s"] {
            assert_eq!(
                hit.get(field).and_then(Json::as_f64),
                parsed[0].get(field).and_then(Json::as_f64),
                "cached value must match the miss bit-for-bit ({field})"
            );
        }
    }
    assert_ne!(
        responses[0], responses[1],
        "different params, different answer"
    );
    drop(handle); // drop = shutdown + join
}

#[test]
fn malformed_and_invalid_requests_get_typed_errors() {
    let handle = test_server(64);
    let responses = round_trip(
        &handle,
        &[
            "{broken json",
            "[1,2,3]",
            r#"{"platform":"zeppelin"}"#,
            r#"{"platform":"airplane","d0":"far"}"#,
            r#"{"platform":"airplane","speed":-4}"#,
            r#"{"platform":"airplane","rho":1e999}"#,
            r#"{"cmd":"explode"}"#,
            r#"{"platform":"airplane"}"#,
        ],
    );
    for r in &responses[..7] {
        assert_eq!(
            error_kind(r).as_deref(),
            Some("bad-request"),
            "expected typed error, got {r}"
        );
    }
    // The valid request after all that garbage is still served.
    assert!(error_kind(&responses[7]).is_none());
    assert!(json::parse(&responses[7])
        .expect("valid")
        .get("d_star")
        .is_some());
    drop(handle); // drop = shutdown + join
}

#[test]
fn zero_depth_queue_sheds_with_overloaded() {
    let handle = test_server(0);
    let responses = round_trip(
        &handle,
        &[r#"{"platform":"airplane"}"#, r#"{"cmd":"stats"}"#],
    );
    assert_eq!(error_kind(&responses[0]).as_deref(), Some("overloaded"));
    // Stats are served by the shard directly (no queue between them and
    // the counters), so they still work under full shed — and report it.
    let stats = json::parse(&responses[1]).expect("stats json");
    assert_eq!(stats.get("overloaded").and_then(Json::as_i64), Some(1));
    assert_eq!(stats.get("decisions").and_then(Json::as_i64), Some(0));
    drop(handle); // drop = shutdown + join
}

#[test]
fn mid_stream_disconnect_leaves_server_healthy() {
    let handle = test_server(64);
    {
        // A client that floods requests and vanishes without reading.
        let (mut stream, _reader) = connect(&handle);
        for _ in 0..50 {
            stream
                .write_all(b"{\"platform\":\"airplane\",\"mdata\":55}\n")
                .expect("send");
        }
        // Drop both halves: reader EOFs, writer hits a broken pipe.
    }
    // Another client that disconnects mid-line.
    {
        let (mut stream, _reader) = connect(&handle);
        stream.write_all(b"{\"platform\":\"airpl").expect("send");
    }
    // The server still answers a fresh connection correctly.
    let responses = round_trip(
        &handle,
        &[r#"{"platform":"airplane"}"#, r#"{"cmd":"stats"}"#],
    );
    assert!(error_kind(&responses[0]).is_none());
    let stats = json::parse(&responses[1]).expect("stats json");
    assert!(
        stats
            .get("decisions")
            .and_then(Json::as_i64)
            .expect("count")
            >= 1
    );
    drop(handle); // drop = shutdown + join
}

#[test]
fn stats_reset_and_cache_toggle_round_trip() {
    let handle = test_server(64);
    let baseline = r#"{"platform":"airplane"}"#;
    let responses = round_trip(
        &handle,
        &[
            baseline,
            baseline,
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"cache","enabled":false}"#,
            baseline,
            r#"{"cmd":"reset"}"#,
            r#"{"cmd":"stats"}"#,
        ],
    );
    let stats = json::parse(&responses[2]).expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(
        json::parse(&responses[3])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("cache")
    );
    assert_eq!(
        json::parse(&responses[4])
            .expect("decision")
            .get("cache_hit")
            .and_then(Json::as_bool),
        Some(false),
        "cache disabled"
    );
    let after_reset = json::parse(&responses[6]).expect("stats");
    assert_eq!(
        after_reset
            .get("cache")
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_i64),
        Some(0)
    );
    drop(handle); // drop = shutdown + join
}

#[test]
fn shutdown_request_stops_the_server() {
    let handle = test_server(64);
    let addr = handle.addr();
    let responses = round_trip(
        &handle,
        &[r#"{"platform":"airplane"}"#, r#"{"cmd":"shutdown"}"#],
    );
    assert!(error_kind(&responses[0]).is_none());
    assert_eq!(
        json::parse(&responses[1])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("shutdown")
    );
    // Shutdown was requested over the wire, so this returns promptly.
    drop(handle); // drop = shutdown + join
                  // And the port no longer accepts decision traffic.
    let refused = TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(200));
    if let Ok(mut s) = refused {
        // Accept loop may have been mid-teardown; the connection must
        // at least be useless: either the write fails or nothing
        // answers.
        let _ = s.write_all(b"{\"platform\":\"airplane\"}\n");
        let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(300)));
        let mut r = BufReader::new(s);
        let mut line = String::new();
        let got = r.read_line(&mut line);
        assert!(
            matches!(got, Err(_) | Ok(0)),
            "a dead server must not serve decisions, got {line:?}"
        );
    }
}

#[test]
fn policy_table_serves_in_range_and_falls_back() {
    let (handle, grid) = policy_server();
    // A request at a cell centre, rendered in wire units: shortest
    // round-trip float formatting re-parses to the identical bits.
    let cell = grid.cells() / 3;
    let (platform, [d0, mdata, rho, speed]) = grid.request_of(cell);
    let in_range = format!(
        r#"{{"platform":"{}","d0":{d0},"mdata":{mdata},"rho":{rho},"speed":{speed}}}"#,
        platform.id()
    );
    // Far outside the grid: must fall back to the exact engine.
    let out_of_range = r#"{"platform":"airplane","d0":50000,"mdata":28}"#;
    let responses = round_trip(
        &handle,
        &[in_range.as_str(), out_of_range, r#"{"cmd":"stats"}"#],
    );

    let table_resp = json::parse(&responses[0]).expect("decision");
    assert_eq!(
        table_resp.get("policy_hit").and_then(Json::as_bool),
        Some(true),
        "in-range request served from the table: {table_resp:?}"
    );
    // The table answer is bit-identical to solving the cell centre.
    let exact = grid.params_at(cell).solve();
    assert_eq!(
        table_resp.get("d_star").and_then(Json::as_f64),
        Some(exact.d_opt),
        "d_star must match the exact solve bitwise"
    );
    assert_eq!(
        table_resp.get("utility").and_then(Json::as_f64),
        Some(exact.utility)
    );

    let engine_resp = json::parse(&responses[1]).expect("decision");
    assert_eq!(
        engine_resp.get("policy_hit").and_then(Json::as_bool),
        Some(false),
        "out-of-range request takes the engine path"
    );
    assert!(engine_resp.get("d_star").and_then(Json::as_f64).is_some());

    let stats = json::parse(&responses[2]).expect("stats");
    let policy = stats.get("policy").expect("policy block");
    assert_eq!(policy.get("loaded").and_then(Json::as_bool), Some(true));
    assert_eq!(policy.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(policy.get("served").and_then(Json::as_i64), Some(1));
    assert_eq!(policy.get("fallbacks").and_then(Json::as_i64), Some(1));
    drop(handle); // drop = shutdown + join
}

#[test]
fn policy_toggle_reroutes_to_engine_and_back() {
    let (handle, grid) = policy_server();
    let (platform, [d0, mdata, rho, speed]) = grid.request_of(1);
    let req = format!(
        r#"{{"platform":"{}","d0":{d0},"mdata":{mdata},"rho":{rho},"speed":{speed}}}"#,
        platform.id()
    );
    let responses = round_trip(
        &handle,
        &[
            req.as_str(),
            r#"{"cmd":"policy","enabled":false}"#,
            req.as_str(),
            r#"{"cmd":"policy","enabled":true}"#,
            req.as_str(),
        ],
    );
    let hit = |i: usize| {
        json::parse(&responses[i])
            .expect("decision")
            .get("policy_hit")
            .and_then(Json::as_bool)
    };
    assert_eq!(hit(0), Some(true));
    assert_eq!(
        json::parse(&responses[1])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("policy")
    );
    assert_eq!(hit(2), Some(false), "disabled table routes to the engine");
    assert_eq!(hit(4), Some(true), "re-enabled");
    // Table and engine agree bitwise on the grid-aligned request: the
    // engine solves the same (cell-centre) parameters exactly.
    let d_star = |i: usize| {
        json::parse(&responses[i])
            .expect("decision")
            .get("d_star")
            .and_then(Json::as_f64)
    };
    assert_eq!(d_star(0), d_star(2), "table == exact engine on centres");
    drop(handle); // drop = shutdown + join
}

#[test]
fn policy_control_without_table_is_bad_request() {
    let handle = test_server(64);
    let responses = round_trip(
        &handle,
        &[r#"{"cmd":"policy","enabled":true}"#, r#"{"cmd":"stats"}"#],
    );
    assert_eq!(error_kind(&responses[0]).as_deref(), Some("bad-request"));
    let stats = json::parse(&responses[1]).expect("stats");
    let policy = stats.get("policy").expect("policy block");
    assert_eq!(policy.get("loaded").and_then(Json::as_bool), Some(false));
    drop(handle); // drop = shutdown + join
}

// The ONE test in this binary allowed to touch the global worker-count
// ceiling: the same pipelined stream, served at 1, 2 and 8 workers in
// deterministic mode, must produce bit-identical response bodies.
#[test]
fn response_bytes_identical_across_worker_counts() {
    use skyferry_sim::parallel::set_max_threads;

    let mut streams: Vec<Vec<String>> = Vec::new();
    let requests: Vec<String> = {
        // A deterministic mix with plenty of repeats and a sprinkle of
        // errors (error responses must be deterministic too).
        let mut lines = Vec::new();
        for i in 0..60u64 {
            match i % 5 {
                0 => lines.push(r#"{"platform":"quadrocopter"}"#.to_string()),
                1 => lines.push(format!(
                    r#"{{"platform":"airplane","d0":{},"mdata":14}}"#,
                    120 + (i % 3) * 40
                )),
                2 => lines.push(r#"{"platform":"airplane","mdata":28}"#.to_string()),
                3 => lines.push("{oops".to_string()),
                _ => lines.push(format!(r#"{{"platform":"quadrocopter","d0":{}}}"#, 60 + i)),
            }
        }
        lines
    };
    let line_refs: Vec<&str> = requests.iter().map(String::as_str).collect();

    for threads in [1usize, 2, 8] {
        set_max_threads(threads);
        let handle = test_server(256);
        let responses = round_trip(&handle, &line_refs);
        drop(handle); // drop = shutdown + join
        streams.push(responses);
    }
    set_max_threads(0);

    assert_eq!(streams[0], streams[1], "1 vs 2 workers");
    assert_eq!(streams[0], streams[2], "1 vs 8 workers");
    // Deterministic mode really does zero the timing field.
    for line in &streams[0] {
        if let Some(us) = json::parse(line).expect("valid").get("us_served") {
            assert_eq!(us.as_i64(), Some(0));
        }
    }
}

// ---------------------------------------------------------------------
// Sharded serving: equivalence, control barriers, and the bin1 codec.
// ---------------------------------------------------------------------

/// The core tentpole guarantee: the same pipelined request stream,
/// served at 1, 2 and 8 shards in deterministic mode, must produce
/// bit-identical response bodies — and identical merged cache totals,
/// because every quantized key lives in exactly one shard.
#[test]
fn response_bytes_identical_across_shard_counts() {
    let requests: Vec<String> = {
        let mut lines = Vec::new();
        for i in 0..80u64 {
            match i % 5 {
                0 => lines.push(r#"{"platform":"quadrocopter"}"#.to_string()),
                1 => lines.push(format!(
                    r#"{{"platform":"airplane","d0":{},"mdata":14}}"#,
                    120 + (i % 4) * 40
                )),
                2 => lines.push(r#"{"platform":"airplane","mdata":28}"#.to_string()),
                3 => lines.push("{oops".to_string()),
                _ => lines.push(format!(
                    r#"{{"platform":"quadrocopter","d0":{}}}"#,
                    60 + i % 7
                )),
            }
        }
        lines
    };
    let line_refs: Vec<&str> = requests.iter().map(String::as_str).collect();

    let mut streams: Vec<Vec<String>> = Vec::new();
    let mut cache_totals: Vec<(i64, i64)> = Vec::new();
    for shards in [1usize, 2, 8] {
        let handle = sharded_server(256, shards);
        let responses = round_trip(&handle, &line_refs);
        let stats_line = round_trip(&handle, &[r#"{"cmd":"stats"}"#]);
        let stats = json::parse(&stats_line[0]).expect("stats json");
        let cache = stats.get("cache").expect("cache block");
        cache_totals.push((
            cache.get("hits").and_then(Json::as_i64).expect("hits"),
            cache.get("misses").and_then(Json::as_i64).expect("misses"),
        ));
        assert_eq!(
            stats.get("shard_count").and_then(Json::as_i64),
            Some(shards as i64)
        );
        drop(handle); // drop = shutdown + join
        streams.push(responses);
    }
    assert_eq!(streams[0], streams[1], "1 vs 2 shards");
    assert_eq!(streams[0], streams[2], "1 vs 8 shards");
    assert_eq!(
        cache_totals[0], cache_totals[1],
        "merged hit/miss, 2 shards"
    );
    assert_eq!(
        cache_totals[0], cache_totals[2],
        "merged hit/miss, 8 shards"
    );
}

/// Control barriers across shards: a cache toggle / reset issued on one
/// connection applies to every shard's engine before the ack, and
/// requests sent after the ack observe the new state.
#[test]
fn control_barriers_apply_to_every_shard() {
    let handle = sharded_server(256, 4);
    // Distinct keys, so they spread over several shards.
    let decides: Vec<String> = (0..12u64)
        .map(|i| format!(r#"{{"platform":"quadrocopter","d0":{}}}"#, 40 + i * 9))
        .collect();
    let mut lines: Vec<&str> = decides.iter().map(String::as_str).collect();
    lines.push(r#"{"cmd":"cache","enabled":false}"#);
    let responses = round_trip(&handle, &lines);
    assert_eq!(
        json::parse(responses.last().expect("ack"))
            .expect("ack json")
            .get("ok")
            .and_then(Json::as_str),
        Some("cache")
    );
    // Repeats of the same keys after the disable are all misses.
    let again = round_trip(&handle, &lines[..12.min(lines.len() - 1)]);
    for r in &again {
        let d = json::parse(r).expect("decision");
        assert_eq!(
            d.get("cache_hit").and_then(Json::as_bool),
            Some(false),
            "cache disabled on every shard: {r}"
        );
    }
    // Reset wipes the counters on every shard; the merged stats agree.
    let responses = round_trip(&handle, &[r#"{"cmd":"reset"}"#, r#"{"cmd":"stats"}"#]);
    assert_eq!(
        json::parse(&responses[0])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("reset")
    );
    let stats = json::parse(&responses[1]).expect("stats");
    assert_eq!(stats.get("decisions").and_then(Json::as_i64), Some(0));
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(0));
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(0));
    assert_eq!(cache.get("len").and_then(Json::as_i64), Some(0));
    drop(handle); // drop = shutdown + join
}

/// Per-shard stats: the breakdown array is present, one entry per
/// shard, and its per-shard numbers sum to the merged totals.
#[test]
fn stats_per_shard_breakdown_sums_to_totals() {
    let handle = sharded_server(256, 3);
    let decides: Vec<String> = (0..18u64)
        .map(|i| format!(r#"{{"platform":"airplane","d0":{}}}"#, 100 + i * 13))
        .collect();
    let lines: Vec<&str> = decides.iter().map(String::as_str).collect();
    let _ = round_trip(&handle, &lines);
    let responses = round_trip(&handle, &[r#"{"cmd":"stats"}"#]);
    let stats = json::parse(&responses[0]).expect("stats");
    let shards = match stats.get("shards") {
        Some(Json::Arr(a)) => a,
        other => panic!("per-shard breakdown missing: {other:?}"),
    };
    assert_eq!(shards.len(), 3);
    for key in ["decisions", "requests", "connections"] {
        let total = stats.get(key).and_then(Json::as_i64).expect(key);
        let sum: i64 = shards
            .iter()
            .map(|s| s.get(key).and_then(Json::as_i64).expect(key))
            .sum();
        assert_eq!(sum, total, "per-shard {key} must sum to the merged total");
    }
    let cache_sum: i64 = shards
        .iter()
        .map(|s| {
            s.get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_i64)
                .expect("shard cache misses")
        })
        .sum();
    assert_eq!(
        stats
            .get("cache")
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_i64),
        Some(cache_sum)
    );
    drop(handle); // drop = shutdown + join
}

/// End-to-end bin1: negotiate the codec mid-connection, stream binary
/// decide frames, and check the decoded decisions match the NDJSON
/// answers for the same parameters bit-for-bit.
#[test]
fn bin1_codec_round_trips_end_to_end() {
    use bytes::BytesMut;
    use skyferry_core::request::{DecisionParams, Platform};
    use skyferry_serve::framing::{
        decode_response_frame, encode_decide_frame, encode_json_request_frame, BinResponse, Codec,
        Frame, FrameDecoder,
    };

    let handle = sharded_server(256, 2);
    let params: Vec<DecisionParams> = (0..6)
        .map(|i| {
            let mut p = DecisionParams::baseline(if i % 2 == 0 {
                Platform::Airplane
            } else {
                Platform::Quadrocopter
            });
            p.d0_m += f64::from(i) * 35.0;
            p
        })
        .collect();

    // Reference run over NDJSON on a separate connection.
    let ndjson: Vec<String> = {
        let lines: Vec<String> = params
            .iter()
            .map(|p| {
                format!(
                    r#"{{"platform":"{}","d0":{},"mdata":{},"rho":{},"speed":{}}}"#,
                    p.platform.id(),
                    p.d0_m,
                    p.mdata_bytes / 1e6,
                    p.rho_per_m,
                    p.v_mps
                )
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        round_trip(&handle, &refs)
    };

    // Binary run: negotiate, then stream every decide in one write.
    let (mut stream, mut reader) = connect(&handle);
    stream
        .write_all(b"{\"cmd\":\"codec\",\"v\":\"bin1\"}\n")
        .expect("send codec request");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("codec ack");
    assert_eq!(
        json::parse(ack.trim())
            .expect("ack json")
            .get("ok")
            .and_then(Json::as_str),
        Some("codec"),
        "ack arrives in the old codec"
    );
    let mut wire = BytesMut::new();
    for p in &params {
        encode_decide_frame(p, &mut wire);
    }
    // And one JSON-over-bin1 control frame at the tail.
    encode_json_request_frame(r#"{"cmd":"stats"}"#, &mut wire);
    stream.write_all(&wire[..]).expect("send binary frames");

    // Read responses through the same frame decoder the server uses.
    let mut dec = FrameDecoder::new();
    dec.set_codec(Codec::Bin1);
    let mut frames = Vec::new();
    let mut byte = [0u8; 1024];
    use std::io::Read;
    let inner = reader.get_mut();
    while frames.len() < params.len() + 1 {
        let n = inner.read(&mut byte).expect("read responses");
        assert!(n > 0, "server closed early");
        dec.extend_from_slice(&byte[..n]);
        while let Some(f) = dec.next_frame().expect("well-framed response") {
            frames.push(f);
        }
    }

    for (i, (frame, nd)) in frames.iter().zip(&ndjson).enumerate() {
        let Frame::Bin(payload) = frame else {
            panic!("expected binary frame, got {frame:?}")
        };
        let BinResponse::Decision(bin) = decode_response_frame(payload).expect("decision frame")
        else {
            panic!("expected decision, got json escape")
        };
        let nd = json::parse(nd).expect("ndjson decision");
        assert_eq!(
            Some(bin.d_star),
            nd.get("d_star").and_then(Json::as_f64),
            "request {i}: binary and NDJSON answers must agree bitwise"
        );
        assert_eq!(Some(bin.utility), nd.get("utility").and_then(Json::as_f64));
        assert!(
            bin.cache_hit,
            "request {i}: the NDJSON run warmed this key, the binary run must hit"
        );
    }
    // The tail frame is the JSON stats escape.
    let Frame::Bin(payload) = &frames[params.len()] else {
        panic!("expected binary frame")
    };
    let BinResponse::Json(stats_line) = decode_response_frame(payload).expect("stats frame") else {
        panic!("expected json escape for stats")
    };
    let stats = json::parse(&stats_line).expect("stats json");
    assert!(
        stats
            .get("decisions")
            .and_then(Json::as_i64)
            .expect("count")
            >= 12
    );
    drop(handle); // drop = shutdown + join
}

/// An unknown codec name is a typed error and the connection keeps
/// speaking NDJSON.
#[test]
fn unknown_codec_is_rejected_gracefully() {
    let handle = test_server(64);
    let responses = round_trip(
        &handle,
        &[
            r#"{"cmd":"codec","v":"protobuf"}"#,
            r#"{"platform":"airplane"}"#,
        ],
    );
    assert_eq!(error_kind(&responses[0]).as_deref(), Some("bad-request"));
    assert!(error_kind(&responses[1]).is_none(), "still NDJSON after");
    drop(handle); // drop = shutdown + join
}

/// Graceful shutdown on a sharded server: the ack arrives, in-flight
/// decides drain with real responses, and the port goes dead.
#[test]
fn sharded_shutdown_drains_inflight_decides() {
    let handle = sharded_server(256, 4);
    let addr = handle.addr();
    let decides: Vec<String> = (0..10u64)
        .map(|i| format!(r#"{{"platform":"quadrocopter","d0":{}}}"#, 45 + i * 11))
        .collect();
    let mut lines: Vec<&str> = decides.iter().map(String::as_str).collect();
    lines.push(r#"{"cmd":"shutdown"}"#);
    let responses = round_trip(&handle, &lines);
    for r in &responses[..10] {
        assert!(
            error_kind(r).is_none(),
            "decides sent before shutdown must drain with answers: {r}"
        );
    }
    assert_eq!(
        json::parse(&responses[10])
            .expect("ack")
            .get("ok")
            .and_then(Json::as_str),
        Some("shutdown")
    );
    drop(handle); // drop = shutdown + join
    let refused = TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(200));
    if let Ok(mut s) = refused {
        let _ = s.write_all(b"{\"platform\":\"airplane\"}\n");
        let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(300)));
        let mut r = BufReader::new(s);
        let mut line = String::new();
        let got = r.read_line(&mut line);
        assert!(
            matches!(got, Err(_) | Ok(0)),
            "dead server answered {line:?}"
        );
    }
}

/// A policy server with N shards sharing one compiled table.
fn policy_server_sharded(shards: usize, table: Arc<PolicyTable>) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 1024,
        max_batch: 8,
        engine: EngineConfig {
            cache_capacity: 4096,
            quant: Quantizer::exact(),
            cache_enabled: true,
            solve_threads: 0,
        },
        shards,
        policy: Some(PolicyConfig {
            table,
            interpolate: false,
        }),
        deterministic: true,
    })
    .expect("bind loopback")
}

/// The acceptance run of the sharding work: the full loadgen
/// `--policy-compare --miss-heavy --expect-identical --check` sweep
/// (table, cache and no-cache phases, warm and miss-heavy workloads)
/// must pass against 1, 2 and 8 shards, and the `d_star` bit streams
/// must match across the shard counts — sharding is a pure
/// partitioning of the same sequential computation.
#[test]
fn loadgen_identical_across_shard_counts() {
    use skyferry_serve::loadgen::{run, GridMode, LoadgenConfig};

    let table = Arc::new(PolicyTable::build(PolicyGrid::quick(), 0x5AFE));
    let mut baseline: Option<Vec<(&'static str, Vec<u64>)>> = None;
    for shards in [1usize, 2, 8] {
        let handle = policy_server_sharded(shards, Arc::clone(&table));
        let cfg = LoadgenConfig {
            addr: handle.addr().to_string(),
            requests: 600,
            concurrency: 3,
            window: 32,
            grid: Some(GridMode::Quick),
            policy_compare: true,
            miss_heavy: true,
            expect_identical: true,
            check: true,
            ..Default::default()
        };
        let report = run(&cfg).unwrap_or_else(|e| panic!("loadgen vs {shards} shards: {e}"));
        assert_eq!(
            report.d_star_identical,
            Some(true),
            "{shards} shards: phases of the same workload must agree bitwise"
        );
        assert!(report.table_speedup.is_some());
        let bits: Vec<(&'static str, Vec<u64>)> = report
            .phases
            .iter()
            .map(|p| (p.label, p.d_star_bits()))
            .collect();
        match &baseline {
            None => baseline = Some(bits),
            Some(reference) => assert_eq!(
                reference, &bits,
                "{shards} shards must reproduce the 1-shard d_star streams bitwise"
            ),
        }
        drop(handle); // drop = shutdown + join
    }
}

/// Fleet-trace replay: a recorded fleet request stream (the
/// `repro --export-fleet-trace` JSONL shape) must solve to bit-identical
/// `d_star` streams across phases *and* across shard counts — the
/// contended-equivalent parameters are ordinary decide requests, so a
/// generic server replays fleet traffic without knowing about fleets.
/// The report must also carry the stream's inter-arrival statistics.
#[test]
fn fleet_trace_replay_identical_across_shard_counts() {
    use skyferry_serve::loadgen::{run, LoadgenConfig};

    // Waves of four UAVs every 60 s, in the exported shape: `mdata`
    // inflated by the slot share, `rho` carrying the retention hazard.
    let mut jsonl = String::new();
    for wave in 0..3u64 {
        for u in 0..4u64 {
            let t = wave as f64 * 60.0 + u as f64 * 0.7;
            let d0 = 80.0 + (wave * 4 + u) as f64 * 9.0;
            let mdata = 10.0 * (1 + u % 3) as f64;
            let rho = 2e-3 + u as f64 * 3e-3;
            jsonl.push_str(&format!(
                "{{\"t\":{t},\"uav\":{u},\"station\":{},\"contenders\":{},\
                 \"platform\":\"quadrocopter\",\"d0\":{d0},\"mdata\":{mdata},\
                 \"rho\":{rho},\"speed\":4.5}}\n",
                u % 2,
                1 + u % 3,
            ));
        }
    }
    let path = std::env::temp_dir().join(format!(
        "skyferry-fleet-trace-test-{}.jsonl",
        std::process::id()
    ));
    std::fs::write(&path, &jsonl).expect("write trace");

    let mut baseline: Option<Vec<(&'static str, Vec<u64>)>> = None;
    let mut digest: Option<String> = None;
    for shards in [1usize, 2, 8] {
        let handle = sharded_server(1024, shards);
        let cfg = LoadgenConfig {
            addr: handle.addr().to_string(),
            concurrency: 3,
            window: 8,
            fleet_trace: Some(path.clone()),
            compare: true,
            expect_identical: true,
            check: true,
            ..Default::default()
        };
        let report = run(&cfg).unwrap_or_else(|e| panic!("fleet replay vs {shards} shards: {e}"));
        assert_eq!(
            report.d_star_identical,
            Some(true),
            "{shards} shards: cached and uncached replays must agree bitwise"
        );
        let stats = report.fleet_trace.expect("fleet-trace stats in the report");
        assert_eq!(stats.events, 12);
        assert!((stats.p50_gap_s - 0.7).abs() < 1e-9, "in-wave gap at p50");
        assert!(stats.p95_gap_s > 50.0, "wave gap at p95");
        assert!(stats.burstiness > 1.0, "waves must read as bursty");
        let bits: Vec<(&'static str, Vec<u64>)> = report
            .phases
            .iter()
            .map(|p| (p.label, p.d_star_bits()))
            .collect();
        assert_eq!(bits[0].1.len(), 12, "every event answered");
        match &baseline {
            None => baseline = Some(bits),
            Some(reference) => assert_eq!(
                reference, &bits,
                "{shards} shards must reproduce the 1-shard d_star streams bitwise"
            ),
        }
        // The report's digest is the cross-run form of the same claim.
        let d = report.d_star_digest.expect("digest in fleet-trace mode");
        match &digest {
            None => digest = Some(d),
            Some(reference) => assert_eq!(reference, &d, "{shards} shards: digest drift"),
        }
        drop(handle); // drop = shutdown + join
    }
    let _ = std::fs::remove_file(&path);
}

/// The many-connection open loop: one reactor multiplexing dozens of
/// mostly-idle connections, plus a latency-under-load saturation sweep.
#[test]
fn open_loop_saturation_curve_under_many_connections() {
    use skyferry_serve::loadgen::{run, LoadgenConfig};

    let handle = sharded_server(4096, 2);
    let cfg = LoadgenConfig {
        addr: handle.addr().to_string(),
        requests: 800,
        conns: 32,
        rate: Some(20_000.0),
        saturation: vec![2_000.0, 8_000.0, 20_000.0, 50_000.0],
        check: true,
        ..Default::default()
    };
    let report = run(&cfg).expect("open-loop run");

    assert_eq!(report.phases.len(), 1);
    let p = &report.phases[0];
    assert_eq!(p.label, "single");
    assert_eq!(p.protocol_errors, 0);
    assert!(p.throughput_rps > 0.0);
    // RTT includes schedule/queueing time the service decomposition
    // strips, so each percentile dominates its service counterpart.
    assert!(p.rtt.p50_us >= p.service.p50_us);
    assert!(p.rtt.p99_us >= p.service.p99_us);
    assert!(p.connect.p50_us > 0.0, "connection setup is measured apart");

    let mode = report
        .to_json()
        .get("workload")
        .and_then(|w| w.get("mode").and_then(Json::as_str).map(str::to_string));
    assert_eq!(mode.as_deref(), Some("open-loop-conns"));

    assert_eq!(report.saturation.len(), 4, "one point per offered rate");
    for s in &report.saturation {
        assert_eq!(s.conns, 32);
        assert_eq!(s.requests, 800);
        assert!(s.achieved_rps > 0.0);
        assert!(s.rtt.p50_us >= s.service.p50_us);
    }
    drop(handle); // drop = shutdown + join
}

/// The loadgen's bin1 path: a full `--compare --miss-heavy` sweep over
/// the binary codec must reproduce the NDJSON sweep's `d_star` streams
/// bit for bit — the codec changes the wire bytes, never the answers.
#[test]
fn loadgen_bin1_sweep_matches_ndjson_bitwise() {
    use skyferry_serve::framing::Codec;
    use skyferry_serve::loadgen::{run, LoadgenConfig};

    let handle = sharded_server(1024, 2);
    let base = LoadgenConfig {
        addr: handle.addr().to_string(),
        requests: 400,
        concurrency: 2,
        window: 16,
        compare: true,
        miss_heavy: true,
        expect_identical: true,
        check: true,
        ..Default::default()
    };
    let ndjson = run(&base).expect("ndjson sweep");
    let bin1 = run(&LoadgenConfig {
        codec: Codec::Bin1,
        ..base.clone()
    })
    .expect("bin1 sweep");

    assert_eq!(ndjson.phases.len(), 4); // cache/no-cache × warm/miss
    assert_eq!(ndjson.phases.len(), bin1.phases.len());
    for (a, b) in ndjson.phases.iter().zip(&bin1.phases) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.d_star_bits(),
            b.d_star_bits(),
            "phase {}: bin1 must answer bit-identically to NDJSON",
            a.label
        );
        assert_eq!(a.protocol_errors, 0);
        assert_eq!(b.protocol_errors, 0);
    }
    assert_eq!(ndjson.d_star_identical, Some(true));
    assert_eq!(bin1.d_star_identical, Some(true));
    drop(handle); // drop = shutdown + join
}
