//! The trace data model.
//!
//! A trace is a flat list of [`Record`]s, each addressed by the triple
//! `(epoch, lane, seq)`:
//!
//! - **epoch** — a global logical clock bumped at every parallel-region
//!   boundary ([`region`](crate::region) guard entry and exit). Records from
//!   different epochs never interleave, which pins the coarse order of the
//!   trace regardless of thread scheduling.
//! - **lane** — a *logical* rank, not an OS thread id: parallel tasks get
//!   lane `task index + 1` via [`lane`](crate::lane) guards, so a record's
//!   lane is identical whether the task ran on worker 0 of 8 or inline on
//!   the single thread of a serial run. Threads that emit without a lane
//!   guard are lazily assigned an auto lane above [`AUTO_LANE_BASE`].
//! - **seq** — a per-lane-activation counter, reset to zero when a lane
//!   guard activates.
//!
//! Sorting by that triple is therefore a deterministic merge: byte-identical
//! output across 1/2/8 worker threads (see `tests/trace_determinism.rs`).

use std::borrow::Cow;

use skyferry_stats::json::Json;

/// A record or field name: borrowed `&'static str` on the recording hot
/// path (zero allocation per record), owned only when a trace is parsed
/// back from a file.
pub type Name = Cow<'static, str>;

/// Call-site attributes, as built by the [`fields!`](crate::fields) macro.
pub type Fields = Vec<(Name, FieldValue)>;

/// Auto-assigned lanes (threads that emit outside any [`lane`](crate::lane)
/// guard) start here so they can never collide with explicit task ranks,
/// even after nested-region composition.
pub const AUTO_LANE_BASE: u64 = 1 << 48;

/// A [`lane`](crate::lane) opened while another lane is active (a parallel
/// region nested inside a task) composes as
/// `outer * NESTED_LANE_STRIDE + requested`, keeping sibling subtasks of
/// different outer tasks on distinct, deterministic lanes.
pub const NESTED_LANE_STRIDE: u64 = 1 << 20;

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (indices, counts, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (campaign ids, endpoint names).
    Str(Cow<'static, str>),
}

impl FieldValue {
    /// Lower to the JSON value model used by both sinks.
    pub fn to_json(&self) -> Json {
        match self {
            FieldValue::U64(v) => Json::Int(*v as i64),
            FieldValue::I64(v) => Json::Int(*v),
            FieldValue::F64(v) => Json::Num(*v),
            FieldValue::Bool(b) => Json::Bool(*b),
            FieldValue::Str(s) => Json::Str(s.clone().into_owned()),
        }
    }

    /// Recover a field from its JSON form (integers come back as `I64`).
    pub fn from_json(json: &Json) -> Option<FieldValue> {
        match json {
            Json::Int(v) => Some(FieldValue::I64(*v)),
            Json::Num(v) | Json::Fixed(v, _) => Some(FieldValue::F64(*v)),
            Json::Bool(b) => Some(FieldValue::Bool(*b)),
            Json::Str(s) => Some(FieldValue::Str(Cow::Owned(s.clone()))),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(Cow::Borrowed(v))
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(Cow::Owned(v))
    }
}

/// Whether a record is a duration (span) or a point (event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A duration with inclusive start and end timestamps.
    Span {
        /// Start timestamp in (possibly virtual) nanoseconds.
        start_ns: u64,
        /// End timestamp in (possibly virtual) nanoseconds.
        end_ns: u64,
    },
    /// A point-in-time marker.
    Event {
        /// Timestamp in (possibly virtual) nanoseconds.
        at_ns: u64,
    },
}

/// One span or event in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Parallel-region epoch (global logical clock).
    pub epoch: u64,
    /// Logical lane (task rank, or auto lane ≥ [`AUTO_LANE_BASE`]).
    pub lane: u64,
    /// Per-lane-activation sequence number. For spans this is the sequence
    /// reserved at *start*, so sorted order is tree preorder.
    pub seq: u64,
    /// `seq` of the enclosing span on the same `(epoch, lane)`, if any.
    pub parent: Option<u64>,
    /// Span/event name (borrowed from the call site, owned after parsing).
    pub name: Name,
    /// Span or event, with timestamps.
    pub kind: RecordKind,
    /// Call-site attributes.
    pub fields: Fields,
}

impl Record {
    /// Deterministic merge key.
    pub fn sort_key(&self) -> (u64, u64, u64) {
        (self.epoch, self.lane, self.seq)
    }

    /// True for spans.
    pub fn is_span(&self) -> bool {
        matches!(self.kind, RecordKind::Span { .. })
    }

    /// Start timestamp (events: their single timestamp).
    pub fn start_ns(&self) -> u64 {
        match self.kind {
            RecordKind::Span { start_ns, .. } => start_ns,
            RecordKind::Event { at_ns } => at_ns,
        }
    }

    /// End timestamp (events: their single timestamp).
    pub fn end_ns(&self) -> u64 {
        match self.kind {
            RecordKind::Span { end_ns, .. } => end_ns,
            RecordKind::Event { at_ns } => at_ns,
        }
    }

    /// Span duration (0 for events; saturating against clock skew).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns().saturating_sub(self.start_ns())
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields
            .iter()
            .find(|(k, _)| k.as_ref() == key)
            .map(|(_, v)| v)
    }

    /// Copy with all timestamps zeroed: what determinism tests compare when
    /// the trace was taken on the real clock (structure must still match).
    pub fn zeroed_time(&self) -> Record {
        let mut r = self.clone();
        r.kind = match r.kind {
            RecordKind::Span { .. } => RecordKind::Span {
                start_ns: 0,
                end_ns: 0,
            },
            RecordKind::Event { .. } => RecordKind::Event { at_ns: 0 },
        };
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            epoch: 3,
            lane: 2,
            seq: 7,
            parent: Some(1),
            name: "task".into(),
            kind: RecordKind::Span {
                start_ns: 10,
                end_ns: 35,
            },
            fields: vec![("index".into(), FieldValue::U64(4))],
        }
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.sort_key(), (3, 2, 7));
        assert!(r.is_span());
        assert_eq!(r.start_ns(), 10);
        assert_eq!(r.end_ns(), 35);
        assert_eq!(r.duration_ns(), 25);
        assert_eq!(r.field("index"), Some(&FieldValue::U64(4)));
        assert_eq!(r.field("missing"), None);
    }

    #[test]
    fn zeroed_time_keeps_structure() {
        let z = sample().zeroed_time();
        assert_eq!(z.duration_ns(), 0);
        assert_eq!(z.sort_key(), (3, 2, 7));
        assert_eq!(z.name, "task");
    }

    #[test]
    fn field_json_round_trip() {
        for (v, back) in [
            (FieldValue::U64(9), FieldValue::I64(9)),
            (FieldValue::I64(-4), FieldValue::I64(-4)),
            (FieldValue::F64(2.5), FieldValue::F64(2.5)),
            (FieldValue::Bool(true), FieldValue::Bool(true)),
            (FieldValue::Str("x".into()), FieldValue::Str("x".into())),
        ] {
            assert_eq!(FieldValue::from_json(&v.to_json()), Some(back));
        }
    }
}
