//! Trace serialization: compact JSONL and Chrome `trace_event` JSON.
//!
//! Both formats are lossless: the exact nanosecond timestamps and the
//! `(epoch, lane, seq, parent)` merge key survive a round trip, so
//! `skyferry-trace summarize` produces identical output from either file.
//!
//! - **JSONL** (`.jsonl`): one record per line with short keys —
//!   `{"e":epoch,"l":lane,"s":seq,"p":parent,"k":"S"|"E","n":name,
//!   "t0":start_ns,"t1":end_ns,"f":{...}}` (events carry only `t0`).
//! - **Chrome `trace_event`** (`.json`): `{"traceEvents":[...]}` with
//!   complete (`"ph":"X"`) events for spans and instant (`"ph":"i"`) events
//!   for point events; `ts`/`dur` are microsecond floats as the viewer
//!   expects, while `args` carries the exact nanoseconds and merge key.
//!   Load in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//!   lanes appear as tracks (`tid` = lane).

use std::path::Path;

use skyferry_stats::json::{self, Json};

use crate::record::{FieldValue, Fields, Record, RecordKind};

/// A sink/parse failure with enough context to locate the bad input.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFileError {
    /// Human-readable description, including line numbers for JSONL.
    pub message: String,
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceFileError {}

fn err(message: impl Into<String>) -> TraceFileError {
    TraceFileError {
        message: message.into(),
    }
}

fn fields_json(fields: &Fields) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| (k.clone().into_owned(), v.to_json()))
            .collect(),
    )
}

fn fields_from_json(json: Option<&Json>) -> Result<Fields, TraceFileError> {
    let Some(json) = json else {
        return Ok(Vec::new());
    };
    let Json::Obj(members) = json else {
        return Err(err("trace field block is not an object"));
    };
    members
        .iter()
        .map(|(k, v)| {
            FieldValue::from_json(v)
                .map(|fv| (std::borrow::Cow::Owned(k.clone()), fv))
                .ok_or_else(|| err(format!("unsupported field value for key {k:?}")))
        })
        .collect()
}

fn record_to_json(r: &Record) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("e".to_string(), Json::Int(r.epoch as i64)),
        ("l".to_string(), Json::Int(r.lane as i64)),
        ("s".to_string(), Json::Int(r.seq as i64)),
    ];
    if let Some(p) = r.parent {
        members.push(("p".to_string(), Json::Int(p as i64)));
    }
    let (kind, t0, t1) = match r.kind {
        RecordKind::Span { start_ns, end_ns } => ("S", start_ns, Some(end_ns)),
        RecordKind::Event { at_ns } => ("E", at_ns, None),
    };
    members.push(("k".to_string(), Json::str(kind)));
    members.push(("n".to_string(), Json::str(r.name.clone())));
    members.push(("t0".to_string(), Json::Int(t0 as i64)));
    if let Some(t1) = t1 {
        members.push(("t1".to_string(), Json::Int(t1 as i64)));
    }
    if !r.fields.is_empty() {
        members.push(("f".to_string(), fields_json(&r.fields)));
    }
    Json::Obj(members)
}

fn get_u64(json: &Json, key: &str) -> Result<u64, TraceFileError> {
    json.get(key)
        .and_then(Json::as_i64)
        .map(|v| v as u64)
        .ok_or_else(|| err(format!("missing or non-integer key {key:?}")))
}

fn record_from_json(json: &Json) -> Result<Record, TraceFileError> {
    let name = json
        .get("n")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing record name"))?
        .to_string()
        .into();
    let t0 = get_u64(json, "t0")?;
    let kind = match json.get("k").and_then(Json::as_str) {
        Some("S") => RecordKind::Span {
            start_ns: t0,
            end_ns: get_u64(json, "t1")?,
        },
        Some("E") => RecordKind::Event { at_ns: t0 },
        _ => return Err(err("record kind must be \"S\" or \"E\"")),
    };
    Ok(Record {
        epoch: get_u64(json, "e")?,
        lane: get_u64(json, "l")?,
        seq: get_u64(json, "s")?,
        parent: json.get("p").and_then(Json::as_i64).map(|v| v as u64),
        name,
        kind,
        fields: fields_from_json(json.get("f"))?,
    })
}

/// Render a trace as compact JSONL (one record per line, trailing newline).
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_to_json(r).render());
        out.push('\n');
    }
    out
}

/// Parse a JSONL trace. Blank lines are ignored; records are re-sorted by
/// the merge key so hand-edited files still summarize correctly.
pub fn from_jsonl(text: &str) -> Result<Vec<Record>, TraceFileError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let json = json::parse(line).map_err(|e| err(format!("line {}: {e:?}", i + 1)))?;
        records.push(record_from_json(&json).map_err(|e| err(format!("line {}: {e}", i + 1)))?);
    }
    records.sort_by_key(Record::sort_key);
    Ok(records)
}

/// Render a trace as Chrome `trace_event` JSON (Perfetto-loadable).
pub fn to_chrome(records: &[Record]) -> String {
    let events: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut members: Vec<(String, Json)> = vec![
                ("name".to_string(), Json::str(r.name.clone())),
                ("cat".to_string(), Json::str("skyferry")),
                ("pid".to_string(), Json::Int(1)),
                ("tid".to_string(), Json::Int(r.lane as i64)),
            ];
            match r.kind {
                RecordKind::Span { start_ns, end_ns } => {
                    members.push(("ph".to_string(), Json::str("X")));
                    members.push(("ts".to_string(), Json::Num(start_ns as f64 / 1_000.0)));
                    members.push((
                        "dur".to_string(),
                        Json::Num(end_ns.saturating_sub(start_ns) as f64 / 1_000.0),
                    ));
                }
                RecordKind::Event { at_ns } => {
                    members.push(("ph".to_string(), Json::str("i")));
                    members.push(("s".to_string(), Json::str("t")));
                    members.push(("ts".to_string(), Json::Num(at_ns as f64 / 1_000.0)));
                }
            }
            members.push(("args".to_string(), record_to_json(r)));
            Json::Obj(members)
        })
        .collect();
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ns")),
    ])
    .render_pretty()
}

/// Parse a Chrome `trace_event` trace written by [`to_chrome`] (the exact
/// record lives in each event's `args`).
pub fn from_chrome(text: &str) -> Result<Vec<Record>, TraceFileError> {
    let json = json::parse(text).map_err(|e| err(format!("chrome trace: {e:?}")))?;
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("chrome trace: missing traceEvents array"))?;
    let mut records = Vec::with_capacity(events.len());
    for (i, event) in events.iter().enumerate() {
        let args = event
            .get("args")
            .ok_or_else(|| err(format!("traceEvents[{i}]: missing args")))?;
        records.push(record_from_json(args).map_err(|e| err(format!("traceEvents[{i}]: {e}")))?);
    }
    records.sort_by_key(Record::sort_key);
    Ok(records)
}

/// Parse either supported format. A file that parses as one JSON value
/// with a `traceEvents` member is a Chrome trace; anything else is JSONL
/// (including a single-record JSONL file, which is also one JSON value).
pub fn parse_any(text: &str) -> Result<Vec<Record>, TraceFileError> {
    if let Ok(json) = json::parse(text) {
        if json.get("traceEvents").is_some() {
            return from_chrome(text);
        }
    }
    from_jsonl(text)
}

/// Render for a path: `.jsonl` → JSONL, anything else → Chrome JSON.
pub fn render_for_path(path: &Path, records: &[Record]) -> String {
    if path.extension().is_some_and(|e| e == "jsonl") {
        to_jsonl(records)
    } else {
        to_chrome(records)
    }
}

/// Write a trace to `path`, choosing the format from the extension.
pub fn write_file(path: &Path, records: &[Record]) -> std::io::Result<()> {
    std::fs::write(path, render_for_path(path, records))
}

/// Read and parse a trace file in either format.
pub fn read_file(path: &Path) -> Result<Vec<Record>, TraceFileError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
    parse_any(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record {
                epoch: 0,
                lane: crate::record::AUTO_LANE_BASE,
                seq: 0,
                parent: None,
                name: "root".into(),
                kind: RecordKind::Span {
                    start_ns: 1_000,
                    end_ns: 9_000,
                },
                fields: vec![
                    ("n".into(), FieldValue::I64(3)),
                    ("hit".into(), FieldValue::Bool(false)),
                    ("id".into(), FieldValue::Str("fig5".into())),
                    ("frac".into(), FieldValue::F64(0.25)),
                ],
            },
            Record {
                epoch: 1,
                lane: 1,
                seq: 0,
                parent: None,
                name: "task".into(),
                kind: RecordKind::Span {
                    start_ns: 2_000,
                    end_ns: 3_000,
                },
                fields: vec![],
            },
            Record {
                epoch: 1,
                lane: 1,
                seq: 1,
                parent: Some(0),
                name: "mark".into(),
                kind: RecordKind::Event { at_ns: 2_500 },
                fields: vec![],
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let records = sample();
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 3);
        let back = from_jsonl(&text).unwrap();
        let normalized: Vec<Record> = records
            .iter()
            .map(|r| {
                let mut r = r.clone();
                for (_, v) in &mut r.fields {
                    if let FieldValue::U64(u) = *v {
                        *v = FieldValue::I64(u as i64);
                    }
                }
                r
            })
            .collect();
        assert_eq!(back, normalized);
    }

    #[test]
    fn chrome_round_trip_is_lossless() {
        let records = sample();
        let text = to_chrome(&records);
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\": \"X\"") || text.contains("\"ph\":\"X\""));
        let back = from_chrome(&text).unwrap();
        assert_eq!(back, from_jsonl(&to_jsonl(&records)).unwrap());
    }

    #[test]
    fn parse_any_sniffs_format() {
        let records = sample();
        assert_eq!(
            parse_any(&to_chrome(&records)).unwrap(),
            parse_any(&to_jsonl(&records)).unwrap()
        );
    }

    #[test]
    fn jsonl_reports_bad_lines() {
        let e = from_jsonl("{\"e\":0}\n").unwrap_err();
        assert!(e.message.contains("line 1"), "{}", e.message);
        let e2 = from_jsonl("not json\n").unwrap_err();
        assert!(e2.message.contains("line 1"), "{}", e2.message);
    }

    #[test]
    fn render_for_path_picks_format() {
        let records = sample();
        assert!(render_for_path(Path::new("t.jsonl"), &records).starts_with("{\"e\""));
        assert!(render_for_path(Path::new("t.json"), &records).starts_with("{"));
        assert!(render_for_path(Path::new("t.json"), &records).contains("traceEvents"));
    }
}
