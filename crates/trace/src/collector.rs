//! The global collector: per-thread append-only buffers, logical merge keys,
//! and the guard types behind the `span!`/`event!` macros.
//!
//! Determinism contract (see also [`crate::record`]): a record's merge key
//! `(epoch, lane, seq)` and its timestamps under [`SimClock`] depend only on
//! the *logical* position of the emission — which parallel region, which
//! task rank, which emission within that task — never on which OS thread
//! executed it or how threads interleaved. [`drain`] sorts by the merge key,
//! so the drained trace is bit-identical across worker counts.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::clock::{Clock, MonoClock, SimClock};
use crate::record::{Fields, Record, RecordKind, AUTO_LANE_BASE};

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Fast-path flag: true when the installed clock is the stock [`MonoClock`],
/// letting [`now`] call [`crate::clock::monotonic_ns`] directly instead of
/// taking the `CLOCK` read lock on every record.
static FAST_MONO: AtomicBool = AtomicBool::new(false);
/// 1 = record everything, 0 = record nothing (enabled-but-unsampled),
/// N = record every Nth span/event per thread.
static SAMPLE: AtomicU32 = AtomicU32::new(1);
static EPOCH: AtomicU64 = AtomicU64::new(0);
static AUTO_LANE: AtomicU64 = AtomicU64::new(AUTO_LANE_BASE);
static SINK: Mutex<Vec<Record>> = Mutex::new(Vec::new());
static CLOCK: RwLock<Option<Arc<dyn Clock + Send + Sync>>> = RwLock::new(None);

/// Which built-in [`Clock`] to install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Real monotonic time ([`MonoClock`]).
    #[default]
    Mono,
    /// Virtual per-lane ticks ([`SimClock`]), for deterministic traces.
    Sim,
}

/// Collector configuration for [`install`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Time source for span/event timestamps.
    pub clock: ClockMode,
    /// Sampling stride: 1 = everything (default), 0 = nothing, N = 1-in-N.
    pub sample: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            clock: ClockMode::Mono,
            sample: 1,
        }
    }
}

impl TraceConfig {
    /// Deterministic preset: [`SimClock`] timestamps, full recording.
    pub fn deterministic() -> Self {
        TraceConfig {
            clock: ClockMode::Sim,
            sample: 1,
        }
    }
}

/// Per-thread collector state. `records` only ever appends; it is flushed
/// into the global sink on [`drain`] and on thread exit.
struct Local {
    lane: Option<u64>,
    epoch: Option<u64>,
    seq: u64,
    ticks: u64,
    sample_tick: u32,
    stack: Vec<u64>,
    records: Vec<Record>,
}

impl Local {
    /// Auto-flush threshold: a thread's buffer spills to the global sink
    /// once it holds this many records, so a long-running traced thread
    /// (the serve dispatcher) uses bounded memory and pays one sink-mutex
    /// acquisition per chunk instead of unbounded `Vec` growth. Sized to
    /// keep the hot buffer around 100 KiB (records are ~112 bytes), well
    /// inside L2 — a larger chunk measurably evicts the serve engine's
    /// working set on small cores. Merge order is unaffected — [`drain`]
    /// sorts by `(epoch, lane, seq)`.
    const FLUSH_CHUNK: usize = 1024;

    const fn new() -> Self {
        Local {
            lane: None,
            epoch: None,
            seq: 0,
            ticks: 0,
            sample_tick: 0,
            stack: Vec::new(),
            records: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.records.is_empty() {
            let mut sink = SINK.lock().expect("trace sink poisoned");
            sink.append(&mut self.records);
        }
    }

    #[inline]
    fn maybe_flush(&mut self) {
        if self.records.len() >= Self::FLUSH_CHUNK {
            self.flush();
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = const { RefCell::new(Local::new()) };
}

/// Install the collector and start recording. Clears any previous records
/// and resets the epoch, auto-lane and current-thread counters, so traces
/// from consecutive `install`/[`drain`] cycles are independent.
pub fn install(cfg: TraceConfig) {
    let clock: Arc<dyn Clock + Send + Sync> = match cfg.clock {
        ClockMode::Mono => Arc::new(MonoClock),
        ClockMode::Sim => Arc::new(SimClock::default()),
    };
    install_with_clock(clock, cfg.sample);
    FAST_MONO.store(cfg.clock == ClockMode::Mono, Ordering::SeqCst);
}

/// [`install`] with a caller-provided [`Clock`] implementation.
pub fn install_with_clock(clock: Arc<dyn Clock + Send + Sync>, sample: u32) {
    FAST_MONO.store(false, Ordering::SeqCst);
    *CLOCK.write().expect("trace clock poisoned") = Some(clock);
    SAMPLE.store(sample, Ordering::SeqCst);
    EPOCH.store(0, Ordering::SeqCst);
    AUTO_LANE.store(AUTO_LANE_BASE, Ordering::SeqCst);
    SINK.lock().expect("trace sink poisoned").clear();
    LOCAL.with(|l| *l.borrow_mut() = Local::new());
    ENABLED.store(true, Ordering::SeqCst);
}

/// True while recording. The `span!`/`event!` macros check this before
/// touching any thread-local state, so the disabled path is one relaxed
/// atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True when the installed clock is virtual (deterministic timestamps).
pub fn clock_is_virtual() -> bool {
    CLOCK
        .read()
        .expect("trace clock poisoned")
        .as_ref()
        .is_some_and(|c| c.is_virtual())
}

/// Stop recording and return all records sorted by `(epoch, lane, seq)`.
///
/// Only flushes the calling thread's buffer plus everything worker threads
/// flushed when they exited — call after joining any traced workers.
pub fn drain() -> Vec<Record> {
    ENABLED.store(false, Ordering::SeqCst);
    FAST_MONO.store(false, Ordering::SeqCst);
    LOCAL.with(|l| l.borrow_mut().flush());
    let mut records = std::mem::take(&mut *SINK.lock().expect("trace sink poisoned"));
    *CLOCK.write().expect("trace clock poisoned") = None;
    records.sort_by_key(Record::sort_key);
    records
}

fn now(local: &mut Local) -> u64 {
    if FAST_MONO.load(Ordering::Relaxed) {
        return crate::clock::monotonic_ns();
    }
    let guard = CLOCK.read().expect("trace clock poisoned");
    match guard.as_ref() {
        Some(clock) => clock.now_ns(&mut local.ticks),
        None => 0,
    }
}

/// Sampling decision, advanced per candidate record on this thread.
fn passes_sampling(local: &mut Local) -> bool {
    match SAMPLE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        n => {
            local.sample_tick = (local.sample_tick + 1) % n;
            local.sample_tick == 0
        }
    }
}

fn current_epoch(local: &Local) -> u64 {
    local.epoch.unwrap_or_else(|| EPOCH.load(Ordering::Relaxed))
}

fn current_lane(local: &mut Local) -> u64 {
    match local.lane {
        Some(lane) => lane,
        None => {
            // Lazy so worker threads that only ever emit inside lane guards
            // never consume an auto lane id (the fetch_add order of workers
            // racing here is the one nondeterministic thing in the design,
            // and it is confined to unguarded emissions).
            let lane = AUTO_LANE.fetch_add(1, Ordering::Relaxed);
            local.lane = Some(lane);
            lane
        }
    }
}

/// RAII guard for a parallel region: bumps the global epoch on entry and
/// exit so records before, inside and after the region occupy three
/// distinct epochs and can never interleave in the sorted trace.
#[must_use = "the region ends when this guard drops"]
pub struct RegionGuard {
    epoch: u64,
    live: bool,
}

impl RegionGuard {
    /// The epoch assigned to this region's tasks (pass to [`lane`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        if self.live {
            EPOCH.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Open a parallel region. When recording is disabled this is a no-op
/// guard with epoch 0.
///
/// A region opened *inside* an active lane (nested parallelism) does not
/// bump the global epoch — the global counter's value would depend on how
/// concurrent outer tasks interleaved. It reuses the enclosing task's
/// epoch instead, and the nested [`lane`]s compose their ids with
/// [`NESTED_LANE_STRIDE`](crate::record::NESTED_LANE_STRIDE).
pub fn region() -> RegionGuard {
    if !enabled() {
        return RegionGuard {
            epoch: 0,
            live: false,
        };
    }
    if let Some(outer) = LOCAL.with(|l| l.borrow().epoch) {
        return RegionGuard {
            epoch: outer,
            live: false,
        };
    }
    let epoch = EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
    RegionGuard { epoch, live: true }
}

/// Saved thread state while a lane guard is active.
struct LaneSave {
    lane: Option<u64>,
    epoch: Option<u64>,
    seq: u64,
    ticks: u64,
    sample_tick: u32,
    stack: Vec<u64>,
}

/// RAII guard binding the current thread to a logical `(epoch, lane)` for
/// one task activation. Sequence numbers, virtual-clock ticks and the span
/// stack all restart from zero, and the previous thread state is restored
/// on drop — so a task emits *identical* records whether it runs inline on
/// the caller's thread (serial path) or on a worker.
#[must_use = "the lane deactivates when this guard drops"]
pub struct LaneGuard {
    saved: Option<LaneSave>,
}

/// Activate logical lane `lane` under region epoch `epoch` on the current
/// thread. No-op when recording is disabled. When another lane is already
/// active (nested parallelism run inline), the ids compose via
/// [`NESTED_LANE_STRIDE`](crate::record::NESTED_LANE_STRIDE) so nested
/// tasks of different outer tasks stay on distinct deterministic lanes.
pub fn lane(epoch: u64, lane: u64) -> LaneGuard {
    if !enabled() {
        return LaneGuard { saved: None };
    }
    let saved = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let lane = match (l.epoch, l.lane) {
            (Some(_), Some(outer)) => {
                outer.saturating_mul(crate::record::NESTED_LANE_STRIDE) + lane
            }
            _ => lane,
        };
        let saved = LaneSave {
            lane: l.lane.take(),
            epoch: l.epoch.take(),
            seq: std::mem::take(&mut l.seq),
            ticks: std::mem::take(&mut l.ticks),
            sample_tick: std::mem::take(&mut l.sample_tick),
            stack: std::mem::take(&mut l.stack),
        };
        l.lane = Some(lane);
        l.epoch = Some(epoch);
        saved
    });
    LaneGuard { saved: Some(saved) }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        if let Some(saved) = self.saved.take() {
            LOCAL.with(|l| {
                let mut l = l.borrow_mut();
                l.lane = saved.lane;
                l.epoch = saved.epoch;
                l.seq = saved.seq;
                l.ticks = saved.ticks;
                l.sample_tick = saved.sample_tick;
                l.stack = saved.stack;
                // Flush the finished task's records eagerly: scoped worker
                // threads can signal completion before their thread-local
                // destructors run, so a drain right after the join could
                // otherwise miss a worker's buffer.
                l.flush();
            });
        }
    }
}

/// Flush the current thread's record buffer into the global sink. Lane
/// guards do this automatically on drop; call it manually before a traced
/// thread exits if it emitted records outside any lane guard.
pub fn flush_thread() {
    LOCAL.with(|l| l.borrow_mut().flush());
}

/// RAII guard for an in-progress span; records on drop. Construct via the
/// [`span!`](crate::span) macro (or [`start_span`] directly).
pub struct SpanGuard {
    seq: u64,
    parent: Option<u64>,
    start_ns: u64,
    name: &'static str,
    fields: Fields,
    live: bool,
}

/// Begin a span. Callers should use the [`span!`](crate::span) macro, which
/// checks [`enabled`] first and builds the field vector lazily.
pub fn start_span(name: &'static str, fields: Fields) -> SpanGuard {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if !enabled() || !passes_sampling(&mut l) {
            return SpanGuard {
                seq: 0,
                parent: None,
                start_ns: 0,
                name,
                fields: Vec::new(),
                live: false,
            };
        }
        let seq = l.seq;
        l.seq += 1;
        let parent = l.stack.last().copied();
        l.stack.push(seq);
        let start_ns = now(&mut l);
        SpanGuard {
            seq,
            parent,
            start_ns,
            name,
            fields,
            live: true,
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let end_ns = now(&mut l);
            if l.stack.last() == Some(&self.seq) {
                l.stack.pop();
            } else {
                // Out-of-order guard drop: still close this span correctly.
                l.stack.retain(|&s| s != self.seq);
            }
            let epoch = current_epoch(&l);
            let lane = current_lane(&mut l);
            l.records.push(Record {
                epoch,
                lane,
                seq: self.seq,
                parent: self.parent,
                name: Cow::Borrowed(self.name),
                kind: RecordKind::Span {
                    start_ns: self.start_ns,
                    end_ns,
                },
                fields: std::mem::take(&mut self.fields),
            });
            l.maybe_flush();
        });
    }
}

/// Record a point event. Callers should use the [`event!`](crate::event)
/// macro, which checks [`enabled`] first.
pub fn record_event(name: &'static str, fields: Fields) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if !enabled() || !passes_sampling(&mut l) {
            return;
        }
        let seq = l.seq;
        l.seq += 1;
        let parent = l.stack.last().copied();
        let at_ns = now(&mut l);
        let epoch = current_epoch(&l);
        let lane = current_lane(&mut l);
        l.records.push(Record {
            epoch,
            lane,
            seq,
            parent,
            name: Cow::Borrowed(name),
            kind: RecordKind::Event { at_ns },
            fields,
        });
    });
}

/// A span whose timestamps the caller supplies, for code that measures time
/// itself (the serve dispatcher builds request trees from queue/cache/solve
/// boundary timestamps it already collects for metrics).
///
/// The parent sequence number is reserved at construction, so child spans
/// recorded later sort *after* their parent (tree preorder) even though the
/// parent record is written last, by [`ManualSpan::finish`].
pub struct ManualSpan {
    seq: u64,
    parent: Option<u64>,
    name: &'static str,
    live: bool,
}

/// Open a manual span (no-op when disabled; nothing is recorded until
/// [`ManualSpan::finish`]).
pub fn manual_span(name: &'static str) -> ManualSpan {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if !enabled() || !passes_sampling(&mut l) {
            return ManualSpan {
                seq: 0,
                parent: None,
                name,
                live: false,
            };
        }
        let seq = l.seq;
        l.seq += 1;
        let parent = l.stack.last().copied();
        ManualSpan {
            seq,
            parent,
            name,
            live: true,
        }
    })
}

impl ManualSpan {
    /// True when this span will actually record (sampling + enabled).
    pub fn live(&self) -> bool {
        self.live
    }

    /// Record a child span with explicit timestamps.
    pub fn child(&self, name: &'static str, start_ns: u64, end_ns: u64) {
        self.child_with(name, start_ns, end_ns, Vec::new());
    }

    /// Record a child span with explicit timestamps and fields.
    pub fn child_with(&self, name: &'static str, start_ns: u64, end_ns: u64, fields: Fields) {
        if !self.live || !enabled() {
            return;
        }
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let seq = l.seq;
            l.seq += 1;
            let epoch = current_epoch(&l);
            let lane = current_lane(&mut l);
            l.records.push(Record {
                epoch,
                lane,
                seq,
                parent: Some(self.seq),
                name: Cow::Borrowed(name),
                kind: RecordKind::Span { start_ns, end_ns },
                fields,
            });
            l.maybe_flush();
        });
    }

    /// Close the span and record `children` (name, start, end) under it in
    /// a single thread-local access — the cheapest way to emit a whole
    /// request tree on a hot path (one borrow + reserve instead of one per
    /// child).
    pub fn finish_tree(
        self,
        start_ns: u64,
        end_ns: u64,
        fields: Fields,
        children: &[(&'static str, u64, u64)],
    ) {
        if !self.live || !enabled() {
            return;
        }
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let epoch = current_epoch(&l);
            let lane = current_lane(&mut l);
            l.records.reserve(children.len() + 1);
            for &(name, c_start, c_end) in children {
                let seq = l.seq;
                l.seq += 1;
                l.records.push(Record {
                    epoch,
                    lane,
                    seq,
                    parent: Some(self.seq),
                    name: Cow::Borrowed(name),
                    kind: RecordKind::Span {
                        start_ns: c_start,
                        end_ns: c_end,
                    },
                    fields: Vec::new(),
                });
            }
            l.records.push(Record {
                epoch,
                lane,
                seq: self.seq,
                parent: self.parent,
                name: Cow::Borrowed(self.name),
                kind: RecordKind::Span { start_ns, end_ns },
                fields,
            });
            l.maybe_flush();
        });
    }

    /// Close the span, writing its record with the sequence reserved at
    /// construction.
    pub fn finish(self, start_ns: u64, end_ns: u64, fields: Fields) {
        if !self.live || !enabled() {
            return;
        }
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let epoch = current_epoch(&l);
            let lane = current_lane(&mut l);
            l.records.push(Record {
                epoch,
                lane,
                seq: self.seq,
                parent: self.parent,
                name: Cow::Borrowed(self.name),
                kind: RecordKind::Span { start_ns, end_ns },
                fields,
            });
            l.maybe_flush();
        });
    }
}

/// Current timestamp from the installed clock (0 when disabled). Prefer
/// [`crate::clock::monotonic_ns`] for measurements that must also work when
/// tracing is off.
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    LOCAL.with(|l| now(&mut l.borrow_mut()))
}
