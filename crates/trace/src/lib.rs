#![forbid(unsafe_code)]

//! Deterministic structured tracing and profiling for skyferry.
//!
//! The paper's core quantity is a *decomposition* — `Cdelay(d) = Tship +
//! Ttx` (Eq. 2) — and this crate gives the repo the same per-phase view of
//! its own runtime: where a replication, a campaign cell or a `skyferryd`
//! request actually spends its time.
//!
//! # Model
//!
//! A trace is a flat list of [`Record`]s (spans with start/end, events with
//! a single timestamp) ordered by the logical key `(epoch, lane, seq)` —
//! see [`record`] for the key's semantics. Because the key and the
//! [`SimClock`](clock::SimClock) timestamps are functions of *logical*
//! position only, traces are bit-identical across 1/2/8 worker threads and
//! across reruns (enforced by `tests/trace_determinism.rs`).
//!
//! # Usage
//!
//! ```
//! use skyferry_trace as trace;
//!
//! trace::install(trace::TraceConfig::deterministic());
//! {
//!     let _outer = trace::span!("outer", items = 2usize);
//!     for i in 0..2usize {
//!         let _inner = trace::span!("inner", index = i);
//!         trace::event!("tick");
//!     }
//! }
//! let records = trace::drain();
//! assert_eq!(records.len(), 5); // outer + 2×(inner + tick)
//! assert_eq!(records[0].name, "outer");
//! ```
//!
//! The `span!`/`event!` macros cost one relaxed atomic load when the
//! collector is not installed, and compile to literal no-ops when the crate
//! is built without the default `record` feature.
//!
//! # Sinks and tooling
//!
//! [`sink`] writes/reads compact JSONL and Chrome `trace_event` JSON (load
//! the latter in Perfetto / `chrome://tracing`); [`summary`] computes
//! self-time tables, per-span percentiles and critical paths, rendered by
//! the `skyferry-trace` CLI binary.

pub mod clock;
mod collector;
pub mod record;
pub mod sink;
pub mod summary;

pub use collector::{
    clock_is_virtual, drain, enabled, flush_thread, install, install_with_clock, lane, manual_span,
    now_ns, record_event, region, start_span, ClockMode, LaneGuard, ManualSpan, RegionGuard,
    SpanGuard, TraceConfig,
};
pub use record::{FieldValue, Fields, Record, RecordKind, AUTO_LANE_BASE};

/// Build a [`Fields`] vector from `key = value` pairs. Keys are borrowed
/// `&'static str`, so a non-empty field list costs exactly one allocation.
///
/// ```
/// use skyferry_trace::{fields, FieldValue};
/// let fs = fields!(index = 3usize, hit = true);
/// assert_eq!(fs[0], ("index".into(), FieldValue::U64(3)));
/// ```
#[macro_export]
macro_rules! fields {
    ($($key:ident = $val:expr),* $(,)?) => {
        vec![$((
            ::std::borrow::Cow::Borrowed(stringify!($key)),
            $crate::FieldValue::from($val),
        )),*]
    };
}

/// Open a span guard: `let _g = span!("name", key = value, ...);`.
///
/// Evaluates to `Option<SpanGuard>`; the span closes (and records) when the
/// guard drops. Field expressions are **not evaluated** unless recording is
/// enabled. Compiles to `None` without the `record` feature.
#[cfg(feature = "record")]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            Some($crate::start_span($name, $crate::fields!($($key = $val),*)))
        } else {
            None
        }
    };
}

/// Disabled-path `span!`: a literal no-op (fields never evaluated).
#[cfg(not(feature = "record"))]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let _ = $name;
        None::<$crate::SpanGuard>
    }};
}

/// Record a point event: `event!("name", key = value, ...);`.
///
/// Field expressions are **not evaluated** unless recording is enabled.
/// Compiles to nothing without the `record` feature.
#[cfg(feature = "record")]
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record_event($name, $crate::fields!($($key = $val),*));
        }
    };
}

/// Disabled-path `event!`: a literal no-op (fields never evaluated).
#[cfg(not(feature = "record"))]
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let _ = $name;
    }};
}
