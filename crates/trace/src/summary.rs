//! Trace analysis: self-time attribution, per-span percentiles, coverage
//! and critical-path extraction, plus the text rendering used by the
//! `skyferry-trace summarize` CLI.

use std::collections::BTreeMap;

use skyferry_stats::quantile::quantile;
use skyferry_stats::table::{Column, Table, Value};

use crate::record::{Record, RecordKind};

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct NameStat {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of durations.
    pub total_ns: u64,
    /// Sum of durations minus time spent in child spans.
    pub self_ns: u64,
    /// Median duration.
    pub p50_ns: f64,
    /// 95th-percentile duration.
    pub p95_ns: f64,
    /// 99th-percentile duration.
    pub p99_ns: f64,
}

/// One step of the extracted critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalRow {
    /// Depth below the path's root span.
    pub depth: usize,
    /// Span name.
    pub name: String,
    /// Span duration.
    pub dur_ns: u64,
    /// Duration minus child time.
    pub self_ns: u64,
}

/// Everything `summarize` computes from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total records.
    pub records: usize,
    /// Span records.
    pub spans: usize,
    /// Event records.
    pub events: usize,
    /// Distinct lanes.
    pub lanes: usize,
    /// Distinct epochs.
    pub epochs: usize,
    /// Trace extent: max end − min start over all records.
    pub extent_ns: u64,
    /// Union of root-span intervals (the traced share of the extent).
    pub covered_ns: u64,
    /// Spans named `request` (the serve per-request roots).
    pub request_spans: u64,
    /// Per-name span statistics, sorted by self-time descending.
    pub by_name: Vec<NameStat>,
    /// Per-name event counts, sorted by count descending.
    pub events_by_name: Vec<(String, u64)>,
    /// Critical path from the slowest root (slowest `request` span when
    /// any exist), descending into the slowest child at each level.
    pub critical: Vec<CriticalRow>,
}

impl Summary {
    /// Fraction of the trace extent covered by root spans (1.0 when empty).
    pub fn coverage(&self) -> f64 {
        if self.extent_ns == 0 {
            1.0
        } else {
            self.covered_ns as f64 / self.extent_ns as f64
        }
    }
}

/// Merge overlapping `(start, end)` intervals and return covered length.
fn union_len(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in intervals {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                covered += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    covered
}

/// Compute per-span self time: duration minus the summed durations of
/// direct children (same `(epoch, lane)`, `parent == seq`).
fn self_times(records: &[Record]) -> Vec<u64> {
    let mut child_ns: BTreeMap<(u64, u64, u64), u64> = BTreeMap::new();
    for r in records {
        if let (Some(parent), RecordKind::Span { .. }) = (r.parent, r.kind) {
            *child_ns.entry((r.epoch, r.lane, parent)).or_insert(0) += r.duration_ns();
        }
    }
    records
        .iter()
        .map(|r| {
            let children = child_ns
                .get(&(r.epoch, r.lane, r.seq))
                .copied()
                .unwrap_or(0);
            r.duration_ns().saturating_sub(children)
        })
        .collect()
}

fn critical_path(records: &[Record], self_ns: &[u64]) -> Vec<CriticalRow> {
    // Index direct children of each span.
    let mut children: BTreeMap<(u64, u64, u64), Vec<usize>> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if let (Some(parent), RecordKind::Span { .. }) = (r.parent, r.kind) {
            children
                .entry((r.epoch, r.lane, parent))
                .or_default()
                .push(i);
        }
    }
    let roots = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_span() && r.parent.is_none());
    let requests: Vec<(usize, &Record)> =
        roots.clone().filter(|(_, r)| r.name == "request").collect();
    let start = if requests.is_empty() {
        roots.max_by_key(|(_, r)| r.duration_ns()).map(|(i, _)| i)
    } else {
        requests
            .iter()
            .max_by_key(|(_, r)| r.duration_ns())
            .map(|(i, _)| *i)
    };
    let Some(mut at) = start else {
        return Vec::new();
    };
    let mut path = Vec::new();
    for depth in 0..64 {
        let r = &records[at];
        path.push(CriticalRow {
            depth,
            name: r.name.clone().into_owned(),
            dur_ns: r.duration_ns(),
            self_ns: self_ns[at],
        });
        let next = children
            .get(&(r.epoch, r.lane, r.seq))
            .and_then(|c| c.iter().copied().max_by_key(|&i| records[i].duration_ns()));
        match next {
            Some(i) => at = i,
            None => break,
        }
    }
    path
}

/// Analyze a trace (records in any order; spans/events mixed).
pub fn summarize(records: &[Record]) -> Summary {
    let self_ns = self_times(records);
    let mut lanes: Vec<u64> = records.iter().map(|r| r.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut epochs: Vec<u64> = records.iter().map(|r| r.epoch).collect();
    epochs.sort_unstable();
    epochs.dedup();

    let extent_ns = match (
        records.iter().map(Record::start_ns).min(),
        records.iter().map(Record::end_ns).max(),
    ) {
        (Some(lo), Some(hi)) => hi.saturating_sub(lo),
        _ => 0,
    };
    let covered_ns = union_len(
        records
            .iter()
            .filter(|r| r.is_span() && r.parent.is_none())
            .map(|r| (r.start_ns(), r.end_ns()))
            .collect(),
    );

    let mut by_name: BTreeMap<&str, (u64, u64, u64, Vec<f64>)> = BTreeMap::new();
    let mut events_by_name: BTreeMap<&str, u64> = BTreeMap::new();
    let mut spans = 0usize;
    let mut events = 0usize;
    let mut request_spans = 0u64;
    for (i, r) in records.iter().enumerate() {
        match r.kind {
            RecordKind::Span { .. } => {
                spans += 1;
                if r.name == "request" {
                    request_spans += 1;
                }
                let entry = by_name
                    .entry(r.name.as_ref())
                    .or_insert((0, 0, 0, Vec::new()));
                entry.0 += 1;
                entry.1 += r.duration_ns();
                entry.2 += self_ns[i];
                entry.3.push(r.duration_ns() as f64);
            }
            RecordKind::Event { .. } => {
                events += 1;
                *events_by_name.entry(r.name.as_ref()).or_insert(0) += 1;
            }
        }
    }

    let mut by_name: Vec<NameStat> = by_name
        .into_iter()
        .map(|(name, (count, total_ns, self_total, durs))| NameStat {
            name: name.to_string(),
            count,
            total_ns,
            self_ns: self_total,
            p50_ns: quantile(&durs, 0.50).unwrap_or(0.0),
            p95_ns: quantile(&durs, 0.95).unwrap_or(0.0),
            p99_ns: quantile(&durs, 0.99).unwrap_or(0.0),
        })
        .collect();
    // Self-time descending; name ascending as the deterministic tiebreak.
    by_name.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    let mut events_by_name: Vec<(String, u64)> = events_by_name
        .into_iter()
        .map(|(n, c)| (n.to_string(), c))
        .collect();
    events_by_name.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let critical = critical_path(records, &self_ns);

    Summary {
        records: records.len(),
        spans,
        events,
        lanes: lanes.len(),
        epochs: epochs.len(),
        extent_ns,
        covered_ns,
        request_spans,
        by_name,
        events_by_name,
        critical,
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render the summary as text tables (via `stats::table`), listing the top
/// `top` span names by self-time.
pub fn render(summary: &Summary, top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} records ({} spans, {} events) on {} lanes / {} epochs\n",
        summary.records, summary.spans, summary.events, summary.lanes, summary.epochs
    ));
    out.push_str(&format!(
        "extent: {:.3} ms, root-span coverage: {:.3} ms ({:.1}%)\n",
        ms(summary.extent_ns),
        ms(summary.covered_ns),
        summary.coverage() * 100.0
    ));
    if summary.request_spans > 0 {
        out.push_str(&format!("request spans: {}\n", summary.request_spans));
    }

    out.push_str("\ntop spans by self-time:\n");
    let mut spans_table = Table::new(vec![
        Column::text("span"),
        Column::int("count"),
        Column::float("self ms", 3),
        Column::float("total ms", 3),
        Column::float("p50 ms", 3),
        Column::float("p95 ms", 3),
        Column::float("p99 ms", 3),
    ]);
    for stat in summary.by_name.iter().take(top) {
        spans_table.push(vec![
            Value::Str(stat.name.clone()),
            Value::Int(stat.count as i64),
            Value::Num(ms(stat.self_ns)),
            Value::Num(ms(stat.total_ns)),
            Value::Num(stat.p50_ns / 1e6),
            Value::Num(stat.p95_ns / 1e6),
            Value::Num(stat.p99_ns / 1e6),
        ]);
    }
    out.push_str(&spans_table.render_text());

    if !summary.events_by_name.is_empty() {
        out.push_str("\nevents:\n");
        let mut events_table = Table::new(vec![Column::text("event"), Column::int("count")]);
        for (name, count) in &summary.events_by_name {
            events_table.push(vec![Value::Str(name.clone()), Value::Int(*count as i64)]);
        }
        out.push_str(&events_table.render_text());
    }

    if !summary.critical.is_empty() {
        out.push_str("\ncritical path (slowest root, slowest child at each level):\n");
        let mut crit_table = Table::new(vec![
            Column::text("span"),
            Column::float("dur ms", 3),
            Column::float("self ms", 3),
        ]);
        for row in &summary.critical {
            crit_table.push(vec![
                Value::Str(format!("{}{}", "  ".repeat(row.depth), row.name)),
                Value::Num(ms(row.dur_ns)),
                Value::Num(ms(row.self_ns)),
            ]);
        }
        out.push_str(&crit_table.render_text());
    }
    out
}

/// Structural checks for CI (`skyferry-trace summarize --check`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckSpec {
    /// Require exactly this many `request` spans.
    pub expect_requests: Option<u64>,
    /// Require root-span coverage of at least this fraction of the extent.
    pub min_coverage: Option<f64>,
}

/// Validate a summary against a [`CheckSpec`]; returns every failure.
pub fn check(summary: &Summary, spec: &CheckSpec) -> Result<(), Vec<String>> {
    let mut failures = Vec::new();
    if summary.records == 0 {
        failures.push("trace is empty".to_string());
    }
    if let Some(expect) = spec.expect_requests {
        if summary.request_spans != expect {
            failures.push(format!(
                "expected {expect} request spans, found {}",
                summary.request_spans
            ));
        }
    }
    if let Some(min) = spec.min_coverage {
        if summary.coverage() < min {
            failures.push(format!(
                "root-span coverage {:.1}% below required {:.1}%",
                summary.coverage() * 100.0,
                min * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldValue;

    fn span(
        epoch: u64,
        lane: u64,
        seq: u64,
        parent: Option<u64>,
        name: &str,
        t0: u64,
        t1: u64,
    ) -> Record {
        Record {
            epoch,
            lane,
            seq,
            parent,
            name: name.to_string().into(),
            kind: RecordKind::Span {
                start_ns: t0,
                end_ns: t1,
            },
            fields: Vec::new(),
        }
    }

    fn sample() -> Vec<Record> {
        vec![
            span(0, 9, 0, None, "root", 0, 100),
            span(0, 9, 1, Some(0), "inner", 10, 70),
            span(0, 9, 2, Some(1), "leaf", 20, 40),
            Record {
                epoch: 0,
                lane: 9,
                seq: 3,
                parent: Some(1),
                name: "mark".into(),
                kind: RecordKind::Event { at_ns: 50 },
                fields: vec![("k".into(), FieldValue::U64(1))],
            },
        ]
    }

    #[test]
    fn self_time_subtracts_children() {
        let s = summarize(&sample());
        let root = s.by_name.iter().find(|n| n.name == "root").unwrap();
        assert_eq!(root.total_ns, 100);
        assert_eq!(root.self_ns, 40); // 100 − inner(60)
        let inner = s.by_name.iter().find(|n| n.name == "inner").unwrap();
        assert_eq!(inner.self_ns, 40); // 60 − leaf(20)
        let leaf = s.by_name.iter().find(|n| n.name == "leaf").unwrap();
        assert_eq!(leaf.self_ns, 20);
    }

    #[test]
    fn coverage_is_union_of_roots() {
        let s = summarize(&sample());
        assert_eq!(s.extent_ns, 100);
        assert_eq!(s.covered_ns, 100);
        assert!((s.coverage() - 1.0).abs() < 1e-12);

        // Two overlapping roots on different lanes + a gap.
        let rs = vec![
            span(0, 1, 0, None, "a", 0, 50),
            span(0, 2, 0, None, "b", 30, 60),
            span(1, 1, 0, None, "c", 80, 100),
        ];
        let s2 = summarize(&rs);
        assert_eq!(s2.covered_ns, 80); // [0,60) ∪ [80,100)
        assert_eq!(s2.extent_ns, 100);
    }

    #[test]
    fn critical_path_descends_slowest_child() {
        let s = summarize(&sample());
        let names: Vec<&str> = s.critical.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["root", "inner", "leaf"]);
        assert_eq!(s.critical[0].depth, 0);
        assert_eq!(s.critical[2].depth, 2);
    }

    #[test]
    fn critical_path_prefers_request_roots() {
        let rs = vec![
            span(0, 1, 0, None, "huge", 0, 1_000),
            span(0, 2, 0, None, "request", 0, 10),
        ];
        let s = summarize(&rs);
        assert_eq!(s.critical[0].name, "request");
        assert_eq!(s.request_spans, 1);
    }

    #[test]
    fn check_enforces_spec() {
        let s = summarize(&sample());
        assert!(check(&s, &CheckSpec::default()).is_ok());
        assert!(check(
            &s,
            &CheckSpec {
                expect_requests: Some(2),
                min_coverage: None
            }
        )
        .is_err());
        assert!(check(
            &s,
            &CheckSpec {
                expect_requests: None,
                min_coverage: Some(0.5)
            }
        )
        .is_ok());
        let empty = summarize(&[]);
        assert!(check(&empty, &CheckSpec::default()).is_err());
    }

    #[test]
    fn render_mentions_top_spans() {
        let text = render(&summarize(&sample()), 10);
        assert!(text.contains("root"));
        assert!(text.contains("critical path"));
        assert!(text.contains("events"));
    }
}
