//! Time sources for the tracer.
//!
//! Two rules keep traces reproducible:
//!
//! 1. All real-time reads in the workspace funnel through this module
//!    (`monotonic_ns()`), enforced by the `wall-clock` and
//!    `instant-now-outside-clock` lint rules.
//! 2. Trace timestamps come from a [`Clock`] implementation chosen at
//!    [`install`](crate::install) time: [`MonoClock`] for profiling runs,
//!    [`SimClock`] for deterministic runs (tests, `--deterministic`), whose
//!    "time" is a per-lane tick counter and therefore bit-identical across
//!    worker counts and reruns.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since an arbitrary process-local anchor, from the OS
/// monotonic clock. Never goes backwards; unrelated to wall-clock date.
///
/// This is the only sanctioned way to read real time outside this module.
pub fn monotonic_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = ANCHOR.get_or_init(Instant::now);
    anchor.elapsed().as_nanos() as u64
}

/// A source of trace timestamps.
///
/// `ticks` is per-lane state owned by the collector: it is reset to zero
/// every time a [`lane`](crate::lane) guard activates, so deterministic
/// clocks can derive time purely from the record stream position.
pub trait Clock {
    /// Produce the next timestamp in nanoseconds.
    fn now_ns(&self, ticks: &mut u64) -> u64;
    /// True when timestamps are virtual (deterministic across runs).
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Real monotonic time via [`monotonic_ns`]. Timestamps differ run to run;
/// use for profiling, never in byte-stability tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonoClock;

impl Clock for MonoClock {
    fn now_ns(&self, _ticks: &mut u64) -> u64 {
        monotonic_ns()
    }
}

/// Virtual time: each read advances the lane's tick counter by a fixed
/// stride. Because ticks reset per lane activation and every lane's record
/// stream is deterministic, the resulting timestamps are bit-identical
/// across 1/2/8 worker threads and across reruns with the same seed.
#[derive(Debug, Clone, Copy)]
pub struct SimClock {
    /// Virtual nanoseconds added per clock read.
    pub tick_ns: u64,
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock { tick_ns: 1_000 }
    }
}

impl Clock for SimClock {
    fn now_ns(&self, ticks: &mut u64) -> u64 {
        *ticks += 1;
        *ticks * self.tick_ns
    }
    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_is_a_pure_function_of_ticks() {
        let c = SimClock::default();
        let mut t = 0;
        assert_eq!(c.now_ns(&mut t), 1_000);
        assert_eq!(c.now_ns(&mut t), 2_000);
        let mut t2 = 0;
        assert_eq!(c.now_ns(&mut t2), 1_000);
        assert!(c.is_virtual());
        assert!(!MonoClock.is_virtual());
    }
}
