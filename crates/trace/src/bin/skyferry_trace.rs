//! `skyferry-trace`: inspect trace files produced by `repro --trace` and
//! `skyferryd --trace`.
//!
//! ```text
//! skyferry-trace summarize <trace.{json,jsonl}> [--top N] [--check]
//!     [--expect-requests N] [--min-coverage FRAC]
//! skyferry-trace convert <in.{json,jsonl}> <out.{json,jsonl}>
//! ```
//!
//! `summarize` prints record counts, extent/coverage, top spans by
//! self-time with p50/p95/p99, event counts and the critical path.
//! `--check` turns structural problems (empty trace, wrong request count,
//! poor coverage) into a non-zero exit for CI. `convert` re-encodes between
//! the JSONL and Chrome `trace_event` formats (by output extension).

use std::path::PathBuf;
use std::process::ExitCode;

use skyferry_trace::sink;
use skyferry_trace::summary::{self, CheckSpec};

const USAGE: &str = "usage:\n  skyferry-trace summarize <trace> [--top N] [--check] \
                     [--expect-requests N] [--min-coverage FRAC]\n  \
                     skyferry-trace convert <in> <out>";

struct SummarizeArgs {
    path: PathBuf,
    top: usize,
    checked: bool,
    spec: CheckSpec,
}

fn parse_summarize(args: &[String]) -> Result<SummarizeArgs, String> {
    let mut path = None;
    let mut top = 15usize;
    let mut checked = false;
    let mut spec = CheckSpec::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--top needs an integer")?;
            }
            "--check" => checked = true,
            "--expect-requests" => {
                spec.expect_requests = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--expect-requests needs an integer")?,
                );
                checked = true;
            }
            "--min-coverage" => {
                let frac: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-coverage needs a fraction in [0, 1]")?;
                if !(0.0..=1.0).contains(&frac) {
                    return Err("--min-coverage needs a fraction in [0, 1]".to_string());
                }
                spec.min_coverage = Some(frac);
                checked = true;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => {
                if path.replace(PathBuf::from(positional)).is_some() {
                    return Err("summarize takes exactly one trace file".to_string());
                }
            }
        }
    }
    Ok(SummarizeArgs {
        path: path.ok_or("summarize needs a trace file")?,
        top,
        checked,
        spec,
    })
}

fn summarize(args: &[String]) -> Result<(), String> {
    let args = parse_summarize(args)?;
    let records = sink::read_file(&args.path).map_err(|e| e.to_string())?;
    let summary = summary::summarize(&records);
    print!("{}", summary::render(&summary, args.top));
    if args.checked {
        summary::check(&summary, &args.spec).map_err(|failures| {
            let mut msg = String::from("trace check failed:");
            for f in failures {
                msg.push_str("\n  - ");
                msg.push_str(&f);
            }
            msg
        })?;
        println!("\ntrace check: ok");
    }
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("convert takes <in> <out>".to_string());
    };
    let records = sink::read_file(&PathBuf::from(input)).map_err(|e| e.to_string())?;
    let out = PathBuf::from(output);
    sink::write_file(&out, &records).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {} records to {output}", records.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "summarize" => summarize(rest),
        Some((cmd, rest)) if cmd == "convert" => convert(rest),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("skyferry-trace: {msg}");
            ExitCode::from(2)
        }
    }
}
