//! Collector behavior tests. The collector is global state, so this file
//! holds a single #[test] (like `tests/parallel_determinism.rs` at the
//! workspace root) and exercises install/drain cycles sequentially.

use skyferry_trace as trace;
use skyferry_trace::{FieldValue, RecordKind, TraceConfig, AUTO_LANE_BASE};

fn lane_task(epoch: u64, rank: u64, index: usize) {
    let _lane = trace::lane(epoch, rank);
    let _span = trace::span!("task", index = index);
    trace::event!("tick", index = index);
}

#[test]
fn collector_behavior() {
    // --- Disabled path: no records, guards are inert. ---
    assert!(!trace::enabled());
    {
        let _g = trace::span!("ignored");
        trace::event!("ignored");
        assert!(_g.is_none());
    }
    assert!(trace::drain().is_empty());

    // --- Basic nesting: parent/seq assignment, sim-clock timestamps. ---
    trace::install(TraceConfig::deterministic());
    assert!(trace::enabled());
    assert!(trace::clock_is_virtual());
    {
        let _outer = trace::span!("outer", n = 2usize);
        {
            let _inner = trace::span!("inner");
            trace::event!("mark", hit = true);
        }
    }
    let records = trace::drain();
    assert!(!trace::enabled());
    assert_eq!(records.len(), 3);
    let outer = &records[0];
    assert_eq!(
        (outer.name.as_ref(), outer.seq, outer.parent),
        ("outer", 0, None)
    );
    assert_eq!(outer.lane, AUTO_LANE_BASE);
    assert_eq!(outer.field("n"), Some(&FieldValue::U64(2)));
    let inner = &records[1];
    assert_eq!(
        (inner.name.as_ref(), inner.seq, inner.parent),
        ("inner", 1, Some(0))
    );
    let mark = &records[2];
    assert_eq!(
        (mark.name.as_ref(), mark.seq, mark.parent),
        ("mark", 2, Some(1))
    );
    // SimClock: outer reads tick 1 (start) then tick 5 (end, after
    // inner start/mark/inner end consumed 2..4).
    assert_eq!(
        outer.kind,
        RecordKind::Span {
            start_ns: 1_000,
            end_ns: 5_000
        }
    );
    assert_eq!(mark.kind, RecordKind::Event { at_ns: 3_000 });

    // --- Lane guards: serial inline == threaded, byte-identical. ---
    let run = |workers: usize| -> Vec<trace::Record> {
        trace::install(TraceConfig::deterministic());
        {
            let _root = trace::span!("root");
            let region = trace::region();
            let epoch = region.epoch();
            if workers <= 1 {
                for i in 0..6 {
                    lane_task(epoch, i as u64 + 1, i);
                }
            } else {
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        scope.spawn(move || {
                            for i in (w..6).step_by(workers) {
                                lane_task(epoch, i as u64 + 1, i);
                            }
                        });
                    }
                });
            }
            drop(region);
            trace::event!("after-region");
        }
        trace::drain()
    };
    let serial = run(1);
    let threaded2 = run(2);
    let threaded3 = run(3);
    assert_eq!(serial, threaded2, "1 vs 2 workers");
    assert_eq!(serial, threaded3, "1 vs 3 workers");
    // Structure: root span + after-region on the auto lane, 2 records per
    // task lane; root (epoch 0) sorts before the region's task lanes
    // (epoch 1)? No — root *closes* after the region, so it carries the
    // post-region epoch. Verify the actual invariants instead:
    assert_eq!(serial.len(), 14);
    for rank in 1..=6u64 {
        let lane_records: Vec<_> = serial.iter().filter(|r| r.lane == rank).collect();
        assert_eq!(lane_records.len(), 2, "lane {rank}");
        assert_eq!(lane_records[0].name, "task");
        assert_eq!(lane_records[0].epoch, 1);
        assert_eq!(lane_records[0].seq, 0);
        assert_eq!(lane_records[1].name, "tick");
        // Virtual clock restarted for the lane activation.
        assert_eq!(
            lane_records[0].kind,
            RecordKind::Span {
                start_ns: 1_000,
                end_ns: 3_000
            }
        );
    }
    let after = serial.iter().find(|r| r.name == "after-region").unwrap();
    assert_eq!(after.epoch, 2, "epoch bumped again when the region closed");

    // --- Region/lane guards restore the previous thread state. ---
    trace::install(TraceConfig::deterministic());
    {
        let _a = trace::span!("before");
        drop(_a);
        {
            let region = trace::region();
            let _lane = trace::lane(region.epoch(), 7);
            let _t = trace::span!("in-lane");
        }
        let _b = trace::span!("after");
    }
    let records = trace::drain();
    let before = records.iter().find(|r| r.name == "before").unwrap();
    let after = records.iter().find(|r| r.name == "after").unwrap();
    assert_eq!(
        before.lane, after.lane,
        "auto lane restored after lane guard"
    );
    assert_eq!(after.seq, before.seq + 1, "seq continues after lane guard");
    assert_eq!(
        records.iter().find(|r| r.name == "in-lane").unwrap().lane,
        7
    );

    // --- Manual spans: reserved seq sorts parent before children. ---
    trace::install(TraceConfig::deterministic());
    {
        let req = trace::manual_span("request");
        assert!(req.live());
        req.child("parse", 100, 200);
        req.child_with("queue", 200, 250, trace::fields!(depth = 3usize));
        req.finish(100, 400, trace::fields!(id = 42u64, hit = false));
    }
    let records = trace::drain();
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].name, "request");
    assert_eq!(
        records[0].kind,
        RecordKind::Span {
            start_ns: 100,
            end_ns: 400
        }
    );
    assert_eq!(records[1].name, "parse");
    assert_eq!(records[1].parent, Some(records[0].seq));
    assert_eq!(records[2].field("depth"), Some(&FieldValue::U64(3)));

    // --- Sampling: 0 records nothing while enabled. ---
    trace::install(TraceConfig {
        clock: trace::ClockMode::Sim,
        sample: 0,
    });
    assert!(trace::enabled());
    {
        let _g = trace::span!("unsampled");
        trace::event!("unsampled");
    }
    assert!(trace::drain().is_empty());

    // --- Sampling: 1-in-N keeps every Nth candidate. ---
    trace::install(TraceConfig {
        clock: trace::ClockMode::Sim,
        sample: 3,
    });
    for _ in 0..9 {
        trace::event!("e");
    }
    assert_eq!(trace::drain().len(), 3);

    // --- Mono clock: timestamps are real but structure is unchanged. ---
    trace::install(TraceConfig::default());
    assert!(!trace::clock_is_virtual());
    {
        let _g = trace::span!("real");
    }
    let records = trace::drain();
    assert_eq!(records.len(), 1);
    let r = &records[0];
    assert!(r.end_ns() >= r.start_ns());
    assert_eq!(
        r.zeroed_time().kind,
        RecordKind::Span {
            start_ns: 0,
            end_ns: 0
        }
    );
}
