//! The Section 3 PHY-rate investigation, interactive.
//!
//! ```text
//! cargo run --release --example rate_control_lab [-- <distance-m> <speed-mps>]
//! ```
//!
//! Reproduces the paper's fixed-vs-auto rate methodology at one point of
//! the parameter space: run every fixed MCS plus both auto-rate
//! controllers on the airplane channel at the chosen distance and
//! relative speed, and report median goodput with bootstrap confidence
//! intervals — the microscope behind Figure 6.

use skyferry::net::campaign::{measure_throughput_replicated, CampaignConfig, ControllerKind};
use skyferry::net::profile::MotionProfile;
use skyferry::phy::mcs::Mcs;
use skyferry::phy::presets::ChannelPreset;
use skyferry::sim::prelude::*;
use skyferry::stats::bootstrap::median_ci;
use skyferry::stats::quantile::median;
use skyferry_units::MetersPerSec;

fn main() {
    let mut args = std::env::args().skip(1);
    let distance: f64 = args
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(120.0)
        .clamp(10.0, 400.0);
    let speed: f64 = args
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(20.0)
        .clamp(0.0, 30.0);

    let preset = ChannelPreset::airplane(MetersPerSec::new(speed));
    println!(
        "rate-control lab — airplane channel at d = {distance:.0} m, v = {speed:.0} m/s (mean SNR {:.1} dB)\n",
        preset.mean_snr(skyferry_units::Meters::new(distance)).get()
    );

    let mut configs: Vec<(String, ControllerKind)> = vec![
        ("autorate (ARF-class)".into(), ControllerKind::Arf),
        ("minstrel-ht".into(), ControllerKind::MinstrelHt),
    ];
    for mcs in [0u8, 1, 2, 3, 8] {
        configs.push((
            format!("fixed MCS{mcs}"),
            ControllerKind::Fixed(Mcs::new(mcs)),
        ));
    }

    println!(
        "{:<22} {:>10} {:>18}",
        "controller", "median", "95% CI (Mb/s)"
    );
    println!("{}", "-".repeat(52));
    let mut best: Option<(String, f64)> = None;
    let mut auto_median = 0.0;
    for (label, kind) in configs {
        let cfg = CampaignConfig {
            preset,
            controller: kind,
            duration: SimDuration::from_secs(20),
            seed: 0xAB5E,
        };
        let samples = measure_throughput_replicated(&cfg, MotionProfile::hover(distance), 6);
        let med = median(&samples).expect("non-empty");
        let ci = median_ci(&samples, 0.95, 500, 7).expect("non-empty");
        println!("{label:<22} {med:>8.1}  [{:>6.1}, {:>6.1}]", ci.lo, ci.hi);
        if label.starts_with("autorate") {
            auto_median = med;
        }
        if label.starts_with("fixed") && best.as_ref().is_none_or(|(_, b)| med > *b) {
            best = Some((label, med));
        }
    }

    if let Some((label, med)) = best {
        println!(
            "\nbest fixed rate: {label} at {med:.1} Mb/s — {:.2}x the auto rate ({auto_median:.1} Mb/s)",
            if auto_median > 0.1 { med / auto_median } else { f64::INFINITY }
        );
        println!("(the paper's Figure 6 reports '100% or more' gains from fixing the rate)");
    }
}
