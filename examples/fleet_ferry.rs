//! A fleet of scanners ferrying data through one relay.
//!
//! ```text
//! cargo run --release --example fleet_ferry [-- <num-scanners>]
//! ```
//!
//! The paper's vision (Section 6): "the scarce number of UAVs flying in
//! the area requires that any mission-oriented UAV can become a ferry."
//! This example partitions a large area into per-UAV sectors, has each
//! scanner collect its batch, and then lets the central planner sequence
//! deliveries to a shared hovering relay — each scanner applying the
//! delayed-gratification rendezvous rule, with its failure rate derived
//! live from its battery state.

use skyferry::control::message::{Command, Telemetry, UavId};
use skyferry::control::planner::CentralPlanner;
use skyferry::core::prelude::*;
use skyferry::geo::camera::CameraModel;
use skyferry::geo::sector::Sector;
use skyferry::geo::vector::Vec3;
use skyferry::net::campaign::{run_transfer, CampaignConfig, ControllerKind};
use skyferry::net::profile::MotionProfile;
use skyferry::phy::presets::ChannelPreset;
use skyferry::sim::prelude::*;
use skyferry::uav::battery::Battery;
use skyferry::uav::failure::FailureProcess;
use skyferry::uav::platform::PlatformSpec;
use skyferry_units::{Meters, MetersPerSec};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .clamp(1, 16);
    println!("skyferry fleet ferry — {n} scanners, 1 relay\n");

    let seeds = SeedStream::new(77);
    let spec = PlatformSpec::quadrocopter();
    let camera = CameraModel::paper_default();

    // Partition a 200 m × 200 m area into sectors, one per scanner.
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let area = Sector::new(Vec3::ZERO, 200.0, 200.0);
    let sectors = area.grid(cols, rows);
    let relay_pos = Vec3::new(100.0, 100.0, 10.0);

    let engine = DecisionEngine::from_scenario(&Scenario::quadrocopter_baseline());
    let mut planner = CentralPlanner::new(engine, spec);
    let now = SimTime::from_secs(600);

    // Each scanner finished its sweep somewhere in its sector with a
    // battery state depending on how much it flew.
    let mut carriers = Vec::new();
    for (i, sector) in sectors.iter().take(n).enumerate() {
        let id = UavId(i as u16 + 1);
        let plan = sector.lawnmower_plan(&camera, 10.0);
        let scan_path = plan.path_length_m();
        let mdata = camera.mdata_bytes(sector.area_m2(), 10.0);
        let mut battery = Battery::full(&spec);
        battery.drain(
            SimDuration::from_secs_f64(scan_path / spec.cruise_speed_mps),
            true,
        );
        let position = sector.center(10.0);
        planner.ingest(
            now,
            Telemetry {
                uav: id,
                position,
                speed_mps: 0.0,
                battery_fraction: battery.remaining_fraction(),
                data_ready_bytes: mdata as u64,
            },
        );
        carriers.push((id, position, mdata, battery));
        println!(
            "UAV{} scanned {:.0} m² ({:.0} m path): {:.1} MB ready, battery {:.0} %",
            id.0,
            sector.area_m2(),
            scan_path,
            mdata / 1e6,
            battery.remaining_fraction() * 100.0
        );
    }
    planner.ingest(
        now,
        Telemetry {
            uav: UavId(0),
            position: relay_pos,
            speed_mps: 0.0,
            battery_fraction: 1.0,
            data_ready_bytes: 0,
        },
    );

    // The planner sequences the deliveries; we fly each on the full stack.
    println!("\ndeliveries:");
    let mut total_delay = 0.0;
    let mut delivered_mb = 0.0;
    let mut failures = 0;
    for (i, (id, position, mdata, battery)) in carriers.iter().enumerate() {
        let Some(order) = planner.plan_transfer(now, *id, UavId(0)) else {
            println!("UAV{}: no order (insufficient data?)", id.0);
            continue;
        };
        let d0 = position.distance(relay_pos);
        let (profile, target_d) = match order.command {
            Command::Transmit { .. } => (MotionProfile::hover(d0.max(20.0)), d0),
            Command::GotoThenTransmit { target, .. } => {
                let d_t = target.distance(relay_pos).max(20.0);
                (
                    MotionProfile::approach(d0.max(d_t), spec.cruise_speed_mps, d_t),
                    d_t,
                )
            }
            Command::Goto { .. } => unreachable!(),
        };

        // Sample whether the airframe survives the repositioning leg.
        let rho = 1.0
            / battery
                .remaining_range(skyferry_units::MetersPerSec::new(spec.cruise_speed_mps))
                .get();
        let mut failure = FailureProcess::sample(rho, &mut seeds.rng_indexed("failure", i as u64));
        let leg = (d0 - target_d).max(0.0);
        if !failure.travel(Meters::new(leg)) {
            println!(
                "UAV{}: LOST after {:.0} m of the {:.0} m repositioning leg",
                id.0,
                failure.travelled().get().min(leg),
                leg
            );
            failures += 1;
            continue;
        }

        let campaign = CampaignConfig {
            preset: ChannelPreset::quadrocopter(MetersPerSec::new(0.0)),
            controller: ControllerKind::Arf,
            duration: SimDuration::from_secs(900),
            seed: seeds.derive_indexed("ferry", i as u64),
        };
        let out = run_transfer(&campaign, profile, *mdata as u64, true, "ferry", 0);
        match out.completion {
            Some(t) => {
                println!(
                    "UAV{}: d0 = {:.0} m → transmit at {:.0} m, delivered {:.1} MB in {:.1} s",
                    id.0,
                    d0,
                    target_d,
                    *mdata / 1e6,
                    t.as_secs_f64()
                );
                total_delay += t.as_secs_f64();
                delivered_mb += *mdata / 1e6;
            }
            None => println!("UAV{}: transfer did not finish in time", id.0),
        }
    }

    println!(
        "\nfleet summary: {delivered_mb:.1} MB delivered, {failures} airframe(s) lost, {:.0} s total communication delay",
        total_delay
    );
}
