//! Sweep the strategy space: where is the sweet spot?
//!
//! ```text
//! cargo run --example strategy_sweep [-- <Mdata-MB> <speed-mps>]
//! ```
//!
//! Reproduces the reasoning behind Figures 8 and 9 interactively: prints
//! the optimal rendezvous distance across batch sizes, speeds and failure
//! rates for the airplane scenario, plus a side-by-side evaluation of the
//! concrete strategies for one chosen parameter point.

use skyferry::core::prelude::*;
use skyferry::core::strategy::{evaluate_panel, EvalConfig};
use skyferry::core::sweep::{gratification_sweep, paper_grid, paper_rhos, rho_sweep};
use skyferry::stats::table::{Column, Table, Value};

fn main() {
    let mut args = std::env::args().skip(1);
    let mdata_mb: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(15.0);
    let speed: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10.0);

    println!("skyferry strategy sweep (airplane scenario)\n");

    // --- Figure 8: how risk moves the optimum. --------------------------
    let base = Scenario::airplane_baseline()
        .with_mdata_mb(mdata_mb)
        .with_speed(speed);
    let mut t = Table::new(vec![
        Column::sci("rho (1/m)", 2).left(),
        Column::float("dopt (m)", 1),
        Column::float("U(dopt)", 4),
        Column::float("ship (s)", 1),
        Column::float("tx (s)", 1),
    ]);
    for c in rho_sweep(&base, &paper_rhos::AIRPLANE, 2) {
        t.push(vec![
            Value::Num(c.rho_per_m),
            c.optimum.d_opt.into(),
            c.optimum.utility.into(),
            c.optimum.ship_s.into(),
            c.optimum.tx_s.into(),
        ]);
    }
    println!("risk sweep for Mdata = {mdata_mb} MB, v = {speed} m/s:");
    println!("{}", t.render_text());

    // --- Figure 9: the Mdata × v landscape. ------------------------------
    let grid = gratification_sweep(
        &Scenario::airplane_baseline(),
        &paper_grid::MDATA_MB,
        &paper_grid::SPEEDS_MPS,
    );
    let mut g = Table::new(vec![
        Column::text("Mdata \\ v"),
        Column::int("3"),
        Column::int("5"),
        Column::int("10"),
        Column::int("15"),
        Column::int("20  (dopt in m)"),
    ]);
    for row in &grid {
        let cells: Vec<f64> = row.iter().map(|p| p.optimum.d_opt).collect();
        g.row_f64(&format!("{:.0} MB", row[0].mdata_mb), &cells);
    }
    println!("optimal rendezvous distance across the Figure 9 grid:");
    println!("{}", g.render_text());

    // --- Concrete strategies at the chosen point. ------------------------
    let mut s = Table::new(vec![
        Column::text("strategy"),
        Column::float("completion (s)", 1),
        Column::float("survival", 4),
        Column::float("utility", 5),
    ]);
    for e in evaluate_panel(
        &base,
        &[20.0, 60.0, 120.0, base.d0_m],
        &EvalConfig::default(),
    ) {
        s.push(vec![
            Value::from(e.label.as_str()),
            e.completion_s.into(),
            e.survival.into(),
            e.utility.into(),
        ]);
    }
    println!("strategy panel at Mdata = {mdata_mb} MB, v = {speed} m/s:");
    println!("{}", s.render_text());

    let opt = base.optimize();
    println!(
        "=> solve Eq. (2): wait until d = {:.1} m, expected delivery in {:.1} s",
        opt.d_opt,
        opt.cdelay_s()
    );
}
