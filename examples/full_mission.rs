//! The flagship integration: a complete multi-UAV mission in one
//! deterministic event loop.
//!
//! ```text
//! cargo run --release --example full_mission [-- <scanners> <area-side-m> <seed>]
//! ```
//!
//! Every subsystem of the workspace runs together: autopilots fly
//! lawnmower scans through wind, cameras accumulate the paper's Mdata,
//! 1 Hz telemetry crosses the lossy XBee channel, the central planner
//! issues delayed-gratification rendezvous orders, and real 802.11n
//! TXOPs carry the batches to the relay.

use skyferry::control::mission::{run_mission, MissionConfig};
use skyferry::uav::wind::WindConfig;
use skyferry_units::MetersPerSec;

fn main() {
    let mut args = std::env::args().skip(1);
    let scanners: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .clamp(1, 12);
    let side: f64 = args
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(90.0)
        .clamp(30.0, 300.0);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let mut cfg = MissionConfig::quadrocopter_fleet(scanners, side, seed);
    cfg.wind = WindConfig::steady(270.0, MetersPerSec::new(1.5));

    println!(
        "skyferry full mission — {scanners} scanner(s) over {side:.0} m × {side:.0} m (seed {seed})\n"
    );
    let report = run_mission(&cfg);

    println!("UAV  collected (MB)  delivered (MB)  done at (s)  battery  status");
    println!("------------------------------------------------------------------");
    for u in &report.uavs {
        println!(
            "{:>3}  {:>14.1}  {:>14.1}  {:>11}  {:>6.0}%  {}",
            u.id.0,
            u.collected_bytes as f64 / 1e6,
            u.delivered_bytes as f64 / 1e6,
            u.completed_s
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "-".into()),
            u.battery_remaining * 100.0,
            if u.failed {
                "LOST"
            } else if u.completed_s.is_some() {
                "delivered"
            } else {
                "incomplete"
            }
        );
    }
    println!(
        "\nmission ended at {:.0} s: {}/{} deliveries, {:.1} MB total",
        report.ended_s,
        report.completions(),
        report.uavs.len(),
        report.total_delivered() as f64 / 1e6
    );
    println!(
        "control channel: {}/{} telemetry frames delivered ({:.1} % loss)",
        report.telemetry_delivered,
        report.telemetry_sent,
        (1.0 - report.telemetry_delivered as f64 / report.telemetry_sent.max(1) as f64) * 100.0
    );
}
