//! Quickstart: solve the paper's delayed-gratification problem.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Given a UAV that just came into range at `d0` carrying `Mdata`, should
//! it transmit now or fly closer first? This example evaluates Eq. (1)
//! over the feasible distances, solves Eq. (2) for both of the paper's
//! baseline scenarios, and prints the decision an on-board planner would
//! receive.

use skyferry::core::prelude::*;
use skyferry::core::utility::utility_breakdown;
use skyferry_units::Meters;

fn show(scenario: &Scenario) {
    println!("scenario: {}", scenario.name);
    println!(
        "  d0 = {:.0} m, v = {:.1} m/s, Mdata = {:.1} MB",
        scenario.d0_m,
        scenario.v_mps,
        scenario.mdata_bytes / 1e6
    );

    // A few sample points of U(d) — the curve of Figure 8.
    println!("  U(d) samples:");
    let n = 5;
    for i in 0..n {
        let d = scenario.d_min_m + (scenario.d0_m - scenario.d_min_m) * i as f64 / (n - 1) as f64;
        let b = utility_breakdown(scenario, Meters::new(d));
        println!(
            "    d = {d:>5.1} m   ship {:>6.1} s + tx {:>6.1} s   survival {:.4}   U = {:.5}",
            b.delay.ship_s(),
            b.delay.tx_s(),
            b.survival,
            b.utility
        );
    }

    // The optimum (Eq. 2).
    let opt = scenario.optimize();
    println!(
        "  optimum: transmit at d = {:.1} m (U = {:.5}, Cdelay = {:.1} s)",
        opt.d_opt,
        opt.utility,
        opt.cdelay_s()
    );

    // What the planner would tell the UAV.
    let engine = DecisionEngine::from_scenario(scenario);
    let (decision, _) = engine.decide(
        scenario.d0(),
        scenario.mdata(),
        match scenario.failure {
            skyferry::core::failure::FailureSpec::Exponential(e) => e.rho_per_m,
            _ => 0.0,
        },
    );
    match decision {
        TransferDecision::TransmitNow { expected_tx_s } => {
            println!("  decision: TRANSMIT NOW (expect {expected_tx_s:.1} s)");
        }
        TransferDecision::MoveThenTransmit {
            target_d_m,
            expected_ship_s,
            expected_tx_s,
        } => {
            println!(
                "  decision: MOVE to {target_d_m:.1} m ({expected_ship_s:.1} s), then transmit ({expected_tx_s:.1} s)"
            );
        }
    }
    println!();
}

fn main() {
    println!("skyferry quickstart — now or later?\n");
    show(&Scenario::airplane_baseline());
    show(&Scenario::quadrocopter_baseline());

    // A smaller batch changes the answer: with only 5 MB to deliver,
    // repositioning is not worth it.
    let light = Scenario::airplane_baseline().with_mdata_mb(5.0);
    show(&light);
}
