//! A full search-and-rescue mission, end to end.
//!
//! ```text
//! cargo run --release --example sar_mission
//! ```
//!
//! One quadrocopter scans a 100 m × 100 m sector at 10 m altitude,
//! photographing the ground (the paper's footnote-4 geometry) while a
//! second quadrocopter hovers as the relay. When the scan finishes, the
//! central planner — fed by XBee telemetry — runs the delayed
//! gratification decision and commands the scanner to reposition and
//! transmit. The example then simulates the full-stack transfer and
//! compares it against the naive transmit-immediately behaviour.

use skyferry::control::channel::ControlChannel;
use skyferry::control::message::{Command, Telemetry, UavId};
use skyferry::control::planner::CentralPlanner;
use skyferry::core::prelude::*;
use skyferry::geo::camera::CameraModel;
use skyferry::geo::sector::Sector;
use skyferry::geo::vector::Vec3;
use skyferry::net::campaign::{run_transfer, CampaignConfig, ControllerKind};
use skyferry::net::profile::MotionProfile;
use skyferry::phy::presets::ChannelPreset;
use skyferry::sim::prelude::*;
use skyferry::uav::autopilot::Autopilot;
use skyferry::uav::battery::Battery;
use skyferry::uav::kinematics::UavKinematics;
use skyferry::uav::platform::PlatformSpec;
use skyferry::uav::sensing::CameraProcess;
use skyferry_units::{Meters, MetersPerSec};

const DT: f64 = 0.1;

fn main() {
    println!("skyferry SAR mission\n");
    let seeds = SeedStream::new(2013);

    // --- Phase 1: scan the sector, accumulating image data. ------------
    let spec = PlatformSpec::quadrocopter();
    let sector = Sector::paper_quadrocopter();
    let camera = CameraModel::paper_default();
    let plan = sector.lawnmower_plan(&camera, 10.0);
    println!(
        "scan plan: {} waypoints, {:.0} m path",
        plan.len(),
        plan.path_length_m()
    );

    let mut scanner = UavKinematics::at(spec, Vec3::new(0.0, 0.0, 10.0));
    let mut autopilot = Autopilot::with_plan(plan);
    let mut sensor = CameraProcess::new(camera, Meters::new(10.0));
    let mut battery = Battery::full(&spec);
    let mut t = 0.0;
    while !autopilot.is_done() && t < 3600.0 {
        let cmd = autopilot.update(&scanner, DT);
        scanner.step(cmd, DT);
        sensor.observe(scanner.position);
        battery.drain(
            SimDuration::from_secs_f64(DT),
            scanner.ground_speed().get() > 0.5,
        );
        t += DT;
    }
    let mdata = sensor.data().get();
    println!(
        "scan done in {:.0} s: {} images, {:.1} MB collected, battery at {:.0} %\n",
        t,
        sensor.images_captured(),
        mdata / 1e6,
        battery.remaining_fraction() * 100.0
    );

    // --- Phase 2: telemetry to the planner over the XBee channel. ------
    // The relay hovers 80 m east of the scan area's far corner — the
    // scanner comes into range at roughly the Figure 1 geometry.
    let relay_pos = Vec3::new(180.0, 97.0, 10.0);
    let scanner_report = Telemetry {
        uav: UavId(1),
        position: scanner.position,
        speed_mps: scanner.ground_speed().get(),
        battery_fraction: battery.remaining_fraction(),
        data_ready_bytes: mdata as u64,
    };
    let relay_report = Telemetry {
        uav: UavId(2),
        position: relay_pos,
        speed_mps: 0.0,
        battery_fraction: 0.9,
        data_ready_bytes: 0,
    };

    let mut xbee = ControlChannel::xbee_pro(seeds.rng("xbee"));
    let ground_station = Vec3::new(-200.0, 0.0, 0.0);
    for report in [&scanner_report, &relay_report] {
        let wire = report.encode();
        let out = xbee.send(&wire, report.position.distance(ground_station));
        println!(
            "telemetry from UAV{}: {} bytes, {:.2} ms airtime, {}",
            report.uav.0,
            wire.len(),
            out.airtime.as_secs_f64() * 1e3,
            if out.delivered { "delivered" } else { "lost" }
        );
    }

    // --- Phase 3: the planner decides. ----------------------------------
    let engine = DecisionEngine::from_scenario(&Scenario::quadrocopter_baseline());
    let mut planner = CentralPlanner::new(engine, spec);
    let now = SimTime::from_secs_f64(t);
    planner.ingest(now, scanner_report);
    planner.ingest(now, relay_report);
    let order = planner
        .plan_transfer(now, UavId(1), UavId(2))
        .expect("planner must issue an order");
    let d0 = planner
        .distance_between(UavId(1), UavId(2))
        .expect("both tracked");
    println!("\nplanner: carrier at d0 = {d0:.0} m from relay");
    let (profile, label): (MotionProfile, &str) = match order.command {
        Command::Transmit { .. } => (MotionProfile::hover(d0), "transmit in place"),
        Command::GotoThenTransmit { target, .. } => {
            let d_target = target.distance(relay_pos);
            println!(
                "planner: move to ({:.0}, {:.0}) — separation {:.0} m — then transmit",
                target.x, target.y, d_target
            );
            (
                MotionProfile::approach(d0, spec.cruise_speed_mps, d_target),
                "move then transmit",
            )
        }
        Command::Goto { .. } => unreachable!("planner never issues bare goto here"),
    };

    // --- Phase 4: fly the transfer on the full stack. -------------------
    let campaign = CampaignConfig {
        preset: ChannelPreset::quadrocopter(MetersPerSec::new(0.0)),
        controller: ControllerKind::Arf,
        duration: SimDuration::from_secs(600),
        seed: seeds.derive("transfer"),
    };
    let planned = run_transfer(&campaign, profile, mdata as u64, true, label, 0);
    let naive = run_transfer(
        &campaign,
        MotionProfile::hover(d0),
        mdata as u64,
        false,
        "transmit immediately",
        0,
    );

    let fmt = |o: &skyferry::net::campaign::TransferOutcome| {
        o.completion
            .map(|t| format!("{:.1} s", t.as_secs_f64()))
            .unwrap_or_else(|| "did not finish".into())
    };
    println!("\nresults for {:.1} MB:", mdata / 1e6);
    println!("  planned  ({label}): {}", fmt(&planned));
    println!("  naive    (transmit at {d0:.0} m): {}", fmt(&naive));
    match (planned.completion, naive.completion) {
        (Some(p), Some(n)) if p < n => println!(
            "  delayed gratification saved {:.1} s ({:.0} %)",
            (n - p).as_secs_f64(),
            (n - p).as_secs_f64() / n.as_secs_f64() * 100.0
        ),
        _ => println!("  (no saving this run — try a different seed)"),
    }
}
