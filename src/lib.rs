//! # skyferry
//!
//! A production-quality reproduction of *"Now or Later? — Delaying Data
//! Transfer in Time-Critical Aerial Communication"* (Asadpour, Giustiniano,
//! Hummel, Heimlicher, Egli — CoNEXT 2013).
//!
//! Small unmanned aerial vehicles (UAVs) in search-and-rescue missions must
//! deliver large batches of image data over an unreliable 802.11n aerial
//! channel. Because UAV mobility is *controllable*, a UAV that comes into
//! radio range at distance `d0` can choose to fly closer before
//! transmitting. The paper models this choice as a **delayed gratification**
//! problem: the utility of transmitting at distance `d` is
//!
//! ```text
//! U(d) = exp(-rho * (d0 - d)) / Cdelay(d)
//! Cdelay(d) = (d0 - d) / v  +  Mdata / s(d)
//! ```
//!
//! where `rho` is the failure rate per metre flown, `v` the cruise speed,
//! `Mdata` the batch size and `s(d)` the (empirically fitted) throughput at
//! distance `d`. The optimal rendezvous distance `dopt` maximises `U`.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `skyferry-sim` | deterministic discrete-event engine |
//! | [`stats`] | `skyferry-stats` | quantiles, boxplots, regression fits |
//! | [`geo`] | `skyferry-geo` | geodesy, waypoints, camera geometry |
//! | [`phy`] | `skyferry-phy` | 802.11n PHY, aerial channel models |
//! | [`mac`] | `skyferry-mac` | A-MPDU/block-ACK MAC, rate control |
//! | [`net`] | `skyferry-net` | traffic generation, throughput metering |
//! | [`uav`] | `skyferry-uav` | platforms, autopilot, failure processes |
//! | [`control`] | `skyferry-control` | telemetry channel, central planner |
//! | [`core`] | `skyferry-core` | the delayed-gratification model itself |
//! | [`serve`] | `skyferry-serve` | `skyferryd` decision server + load generator |
//!
//! ## Quickstart
//!
//! ```
//! use skyferry::core::prelude::*;
//!
//! // The paper's quadrocopter baseline scenario (Section 4), with a
//! // moderate 10 MB batch: the optimum is strictly interior — flying
//! // somewhat closer pays off, closing to the 20 m safety minimum
//! // does not.
//! let scenario = Scenario::quadrocopter_baseline().with_mdata_mb(10.0);
//! let outcome = scenario.optimize();
//! assert!(outcome.d_opt > scenario.d_min_m && outcome.d_opt < scenario.d0_m);
//!
//! // The full 56.2 MB baseline batch pulls the rendezvous all the way
//! // to the 20 m constraint.
//! let outcome = Scenario::quadrocopter_baseline().optimize();
//! assert!((outcome.d_opt - 20.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]

pub use skyferry_control as control;
pub use skyferry_core as core;
pub use skyferry_fleet as fleet;
pub use skyferry_geo as geo;
pub use skyferry_mac as mac;
pub use skyferry_net as net;
pub use skyferry_phy as phy;
pub use skyferry_serve as serve;
pub use skyferry_sim as sim;
pub use skyferry_stats as stats;
pub use skyferry_trace as trace;
pub use skyferry_uav as uav;
